"""Multi-table extensions: median and virtual-bucket estimators (§B.2.1).

A production LSH index keeps ``ℓ > 1`` tables.  Two ways to use them:

* **Median estimator** — run a single-table estimator on each table
  independently and report the median estimate.  By the standard Chernoff
  argument, the probability that the median deviates by more than the
  single-table error bound drops to ``2^{−ℓ/2}``.
* **Virtual-bucket estimator** — declare a pair "in the same bucket" if
  it collides in *any* of the ``ℓ`` tables.  This enlarges stratum H,
  which helps when the pre-built index uses a larger ``k`` than the
  estimation problem would like.
"""

from __future__ import annotations

import statistics
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.core.lsh_ss import (
    Dampening,
    default_answer_threshold,
    default_sample_size,
    sample_stratum_h,
    sample_stratum_l,
)
from repro.errors import ValidationError
from repro.lsh.index import LSHIndex
from repro.lsh.table import LSHTable, sample_uniform_pairs
from repro.rng import RandomState, ensure_rng, spawn
from repro.vectors.similarity import cosine_pairs

EstimatorFactory = Callable[[LSHTable], SimilarityJoinSizeEstimator]


class MedianEstimator(SimilarityJoinSizeEstimator):
    """Median of per-table estimates (§B.2.1, "median estimator").

    Parameters
    ----------
    index:
        LSH index with ``ℓ ≥ 1`` tables.
    estimator_factory:
        Callable building a single-table estimator from an
        :class:`~repro.lsh.table.LSHTable`; e.g.
        ``lambda table: LSHSSEstimator(table)``.

    ``details`` keys: ``per_table_estimates``.
    """

    name = "LSH-SS(median)"

    def __init__(self, index: LSHIndex, estimator_factory: EstimatorFactory, *, name: Optional[str] = None) -> None:
        self.index = index
        self.estimators: List[SimilarityJoinSizeEstimator] = [
            estimator_factory(table) for table in index.tables
        ]
        if not self.estimators:
            raise ValidationError("the LSH index must contain at least one table")
        if name is not None:
            self.name = name

    @property
    def total_pairs(self) -> int:
        return self.index.collection.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        child_rngs = spawn(rng, len(self.estimators))
        values = [
            estimator.estimate(threshold, random_state=child).value
            for estimator, child in zip(self.estimators, child_rngs)
        ]
        return Estimate(
            value=float(statistics.median(values)),
            estimator=self.name,
            threshold=threshold,
            details={"per_table_estimates": values},
        )


class VirtualBucketEstimator(SimilarityJoinSizeEstimator):
    """Stratified sampling over virtual buckets formed by ``ℓ`` tables.

    A pair belongs to the virtual stratum H when it collides in at least
    one of the index's tables.  The virtual stratum is enumerated once at
    construction (its size is bounded by ``Σ_i N_H(table_i)``), so SampleH
    becomes uniform sampling from an explicit pair list and SampleL
    rejects pairs colliding in any table.

    Parameters mirror :class:`repro.core.lsh_ss.LSHSSEstimator`.

    ``details`` keys: as for LSH-SS plus ``num_virtual_collision_pairs``.
    """

    name = "LSH-SS(virtual)"

    def __init__(
        self,
        index: LSHIndex,
        *,
        sample_size_h: Optional[int] = None,
        sample_size_l: Optional[int] = None,
        answer_threshold: Optional[int] = None,
        dampening: Dampening = None,
        max_virtual_pairs: int = 5_000_000,
    ) -> None:
        self.index = index
        self.collection = index.collection
        n = self.collection.size
        self.sample_size_h = sample_size_h or default_sample_size(n)
        self.sample_size_l = sample_size_l or default_sample_size(n)
        self.answer_threshold = answer_threshold or default_answer_threshold(n)
        self.dampening = dampening
        left, right = index.virtual_collision_pairs(max_pairs=max_virtual_pairs)
        self._virtual_left = left
        self._virtual_right = right

    @property
    def total_pairs(self) -> int:
        return self.collection.total_pairs

    @property
    def num_virtual_collision_pairs(self) -> int:
        """Size of the virtual stratum H."""
        return int(self._virtual_left.size)

    # ------------------------------------------------------------------
    def _similarities(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return cosine_pairs(self.collection, left, right)

    def _sample_virtual_h(
        self, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        positions = rng.integers(0, self._virtual_left.size, size=size)
        return self._virtual_left[positions], self._virtual_right[positions]

    def _sample_virtual_l(
        self, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        lefts = []
        rights = []
        remaining = size
        # Rejection sampling; the virtual stratum H is a vanishing fraction
        # of all pairs so acceptance is near 1.
        while remaining > 0:
            left, right = sample_uniform_pairs(self.collection.size, max(remaining, 16), rng)
            keep = ~self.index.same_bucket_any_many(left, right)
            lefts.append(left[keep][:remaining])
            rights.append(right[keep][:remaining])
            remaining -= lefts[-1].size
        return np.concatenate(lefts), np.concatenate(rights)

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        num_virtual = self.num_virtual_collision_pairs
        stratum_h = sample_stratum_h(
            num_virtual,
            self._sample_virtual_h,
            self._similarities,
            threshold,
            self.sample_size_h,
            rng,
        )
        stratum_l = sample_stratum_l(
            self.collection.total_pairs - num_virtual,
            self._sample_virtual_l,
            self._similarities,
            threshold,
            self.answer_threshold,
            self.sample_size_l,
            self.dampening,
            rng,
        )
        return Estimate(
            value=stratum_h.estimate + stratum_l.estimate,
            estimator=self.name,
            threshold=threshold,
            details={
                "stratum_h": stratum_h.estimate,
                "stratum_l": stratum_l.estimate,
                "true_in_sample_h": stratum_h.true_in_sample,
                "true_in_sample_l": stratum_l.true_in_sample,
                "samples_taken_l": stratum_l.samples_taken,
                "reached_answer_threshold": stratum_l.reached_answer_threshold,
                "dampening_used": stratum_l.dampening_used,
                "num_virtual_collision_pairs": num_virtual,
            },
        )


__all__ = ["MedianEstimator", "VirtualBucketEstimator", "EstimatorFactory"]
