"""Non-self joins: the general VSJ problem (Definition 5, §B.2.2).

For a join between two collections ``U`` and ``V`` the same hash
functions ``g`` build two tables ``D_g`` (on ``U``) and ``E_g`` (on ``V``).
A pair ``(u, v)`` belongs to stratum H when the two buckets share the same
``g`` value; the number of such pairs is ``N_H = Σ_j b_j · c_j`` over
matching buckets.  SampleH draws a matching bucket pair weighted by
``b_j · c_j`` and one vector from each side; SampleL draws uniform cross
pairs and rejects colliding ones.  Everything else — adaptive sampling,
the safe lower bound, dampening — is shared with the self-join estimator.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.core.lsh_ss import (
    Dampening,
    default_answer_threshold,
    default_sample_size,
    sample_stratum_h,
    sample_stratum_l,
)
from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh.families import LSHFamily
from repro.lsh.signatures import signature_keys
from repro.rng import RandomState, ensure_rng
from repro.vectors.collection import VectorCollection
from repro.vectors.similarity import cosine_pairs


class PairedLSHTable:
    """Two LSH tables over different collections sharing the same ``g``.

    Parameters
    ----------
    family:
        The hash-function family instance (its random functions are shared
        by both sides, which is what makes bucket keys comparable).
    left, right:
        The two vector collections ``U`` and ``V``.
    """

    def __init__(self, family: LSHFamily, left: VectorCollection, right: VectorCollection) -> None:
        if left.dimension != right.dimension:
            raise ValidationError("both collections must share a dimension")
        self.family = family
        self.left = left
        self.right = right
        left_signatures = family.hash_collection(left)
        right_signatures = family.hash_collection(right)
        self._left_keys = signature_keys(left_signatures)
        self._right_keys = signature_keys(right_signatures)
        self._build_buckets()

    def _build_buckets(self) -> None:
        left_groups: Dict[bytes, list] = {}
        for vector_id, key in enumerate(self._left_keys):
            left_groups.setdefault(key, []).append(vector_id)
        right_groups: Dict[bytes, list] = {}
        for vector_id, key in enumerate(self._right_keys):
            right_groups.setdefault(key, []).append(vector_id)
        self._left_groups = {key: np.asarray(ids, dtype=np.int64) for key, ids in left_groups.items()}
        self._right_groups = {key: np.asarray(ids, dtype=np.int64) for key, ids in right_groups.items()}
        matched = sorted(set(self._left_groups) & set(self._right_groups))
        self._matched_keys = matched
        self._matched_left = [self._left_groups[key] for key in matched]
        self._matched_right = [self._right_groups[key] for key in matched]
        weights = np.asarray(
            [left.size * right.size for left, right in zip(self._matched_left, self._matched_right)],
            dtype=np.float64,
        )
        self._matched_weights = weights
        self._num_collision_pairs = int(weights.sum())
        self._left_key_index = {key: index for index, key in enumerate(matched)}

    # ------------------------------------------------------------------
    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def total_pairs(self) -> int:
        """``M = |U| · |V|``."""
        return self.left.size * self.right.size

    @property
    def num_collision_pairs(self) -> int:
        """``N_H = Σ b_j · c_j`` over matching buckets."""
        return self._num_collision_pairs

    @property
    def num_non_collision_pairs(self) -> int:
        return self.total_pairs - self._num_collision_pairs

    def same_bucket(self, left_id: int, right_id: int) -> bool:
        """True iff ``g(u) = g(v)`` for ``u`` from the left and ``v`` from the right."""
        return self._left_keys[left_id] == self._right_keys[right_id]

    def same_bucket_many(self, left_ids: np.ndarray, right_ids: np.ndarray) -> np.ndarray:
        return np.asarray(
            [
                self._left_keys[int(left_id)] == self._right_keys[int(right_id)]
                for left_id, right_id in zip(left_ids, right_ids)
            ],
            dtype=bool,
        )

    # ------------------------------------------------------------------
    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from stratum H (matching-bucket cross products)."""
        if self._num_collision_pairs == 0:
            raise InsufficientSampleError("no bucket key is shared by both collections")
        rng = ensure_rng(random_state)
        probabilities = self._matched_weights / self._matched_weights.sum()
        chosen = rng.choice(len(self._matched_keys), size=sample_size, p=probabilities)
        left_ids = np.empty(sample_size, dtype=np.int64)
        right_ids = np.empty(sample_size, dtype=np.int64)
        for position, bucket in enumerate(chosen):
            left_members = self._matched_left[bucket]
            right_members = self._matched_right[bucket]
            left_ids[position] = left_members[rng.integers(0, left_members.size)]
            right_ids[position] = right_members[rng.integers(0, right_members.size)]
        return left_ids, right_ids

    def sample_non_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None, max_attempts: int = 64
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from stratum L (cross pairs not sharing a bucket key)."""
        if self.num_non_collision_pairs == 0:
            raise InsufficientSampleError("every cross pair shares a bucket key")
        rng = ensure_rng(random_state)
        lefts = []
        rights = []
        remaining = sample_size
        for _attempt in range(max_attempts):
            batch = max(remaining, 16)
            left_ids = rng.integers(0, self.left.size, size=batch)
            right_ids = rng.integers(0, self.right.size, size=batch)
            keep = ~self.same_bucket_many(left_ids, right_ids)
            lefts.append(left_ids[keep][:remaining])
            rights.append(right_ids[keep][:remaining])
            remaining -= lefts[-1].size
            if remaining <= 0:
                return (
                    np.concatenate(lefts).astype(np.int64),
                    np.concatenate(rights).astype(np.int64),
                )
        raise InsufficientSampleError("could not sample enough stratum-L cross pairs")


class GeneralRandomPairSampling(SimilarityJoinSizeEstimator):
    """RS(pop) for a join between two collections: uniform cross pairs."""

    name = "RS(pop)-general"

    def __init__(
        self,
        left: VectorCollection,
        right: VectorCollection,
        *,
        sample_size: Optional[int] = None,
    ) -> None:
        if left.dimension != right.dimension:
            raise ValidationError("both collections must share a dimension")
        self.left = left
        self.right = right
        default = max(1, int(round(1.5 * max(left.size, right.size))))
        self.sample_size = sample_size or default

    @property
    def total_pairs(self) -> int:
        return self.left.size * self.right.size

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        left_ids = rng.integers(0, self.left.size, size=self.sample_size)
        right_ids = rng.integers(0, self.right.size, size=self.sample_size)
        similarities = cosine_pairs(self.left, left_ids, right_ids, other=self.right)
        true_in_sample = int(np.count_nonzero(similarities >= threshold))
        value = true_in_sample * (self.total_pairs / self.sample_size)
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={"sample_size": self.sample_size, "true_in_sample": true_in_sample},
        )


class GeneralLSHSSEstimator(SimilarityJoinSizeEstimator):
    """LSH-SS for the general (non-self) VSJ problem (§B.2.2).

    Parameters mirror :class:`repro.core.lsh_ss.LSHSSEstimator`; sample
    sizes default to ``max(|U|, |V|)`` pairs per stratum.

    ``details`` keys: as for LSH-SS.
    """

    name = "LSH-SS-general"

    def __init__(
        self,
        paired_table: PairedLSHTable,
        *,
        sample_size_h: Optional[int] = None,
        sample_size_l: Optional[int] = None,
        answer_threshold: Optional[int] = None,
        dampening: Dampening = None,
    ) -> None:
        self.paired_table = paired_table
        n = max(paired_table.left.size, paired_table.right.size)
        self.sample_size_h = sample_size_h or default_sample_size(n)
        self.sample_size_l = sample_size_l or default_sample_size(n)
        self.answer_threshold = answer_threshold or default_answer_threshold(n)
        self.dampening = dampening
        if dampening is not None:
            self.name = "LSH-SS(D)-general"

    @property
    def total_pairs(self) -> int:
        return self.paired_table.total_pairs

    def _similarities(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return cosine_pairs(
            self.paired_table.left, left, right, other=self.paired_table.right
        )

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        stratum_h = sample_stratum_h(
            self.paired_table.num_collision_pairs,
            lambda size, generator: self.paired_table.sample_collision_pairs(
                size, random_state=generator
            ),
            self._similarities,
            threshold,
            self.sample_size_h,
            rng,
        )
        stratum_l = sample_stratum_l(
            self.paired_table.num_non_collision_pairs,
            lambda size, generator: self.paired_table.sample_non_collision_pairs(
                size, random_state=generator
            ),
            self._similarities,
            threshold,
            self.answer_threshold,
            self.sample_size_l,
            self.dampening,
            rng,
        )
        return Estimate(
            value=stratum_h.estimate + stratum_l.estimate,
            estimator=self.name,
            threshold=threshold,
            details={
                "stratum_h": stratum_h.estimate,
                "stratum_l": stratum_l.estimate,
                "true_in_sample_h": stratum_h.true_in_sample,
                "true_in_sample_l": stratum_l.true_in_sample,
                "samples_taken_l": stratum_l.samples_taken,
                "reached_answer_threshold": stratum_l.reached_answer_threshold,
                "dampening_used": stratum_l.dampening_used,
                "num_collision_pairs": self.paired_table.num_collision_pairs,
            },
        )


__all__ = ["PairedLSHTable", "GeneralRandomPairSampling", "GeneralLSHSSEstimator"]
