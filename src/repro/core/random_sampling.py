"""Baseline estimators: uniform random pair sampling and cross sampling (§3.1).

Both baselines ignore the LSH index entirely.  They are accurate at low
thresholds (where true pairs are plentiful) but fluctuate wildly at high
thresholds — the behaviour Figures 2 and 3 of the paper demonstrate and
the motivation for LSH-SS.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.errors import ValidationError
from repro.rng import RandomState, ensure_rng
from repro.sampling.pairs import CrossPairSampler, UniformPairSampler
from repro.vectors.collection import VectorCollection
from repro.vectors.similarity import cosine_pairs


def default_random_sampling_size(num_vectors: int) -> int:
    """The paper's RS budget ``m_R = 1.5 · n`` pairs."""
    return max(1, int(round(1.5 * num_vectors)))


class RandomPairSampling(SimilarityJoinSizeEstimator):
    """RS(pop): sample ``m`` pairs uniformly from the cross product.

    The estimate is the number of sampled pairs satisfying ``τ`` scaled up
    by ``M / m``.

    Parameters
    ----------
    collection:
        The vectors to self-join.
    sample_size:
        Pair budget ``m``; defaults to ``1.5 n`` as in §6.1.

    ``details`` keys: ``sample_size``, ``true_in_sample``.
    """

    name = "RS(pop)"

    def __init__(
        self,
        collection: VectorCollection,
        *,
        sample_size: Optional[int] = None,
    ) -> None:
        if sample_size is not None and sample_size < 1:
            raise ValidationError(f"sample_size must be >= 1, got {sample_size}")
        self.collection = collection
        self.sample_size = sample_size or default_random_sampling_size(collection.size)
        self._sampler = UniformPairSampler(collection)

    @property
    def total_pairs(self) -> int:
        return self.collection.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        left, right = self._sampler.sample(self.sample_size, random_state=rng)
        similarities = cosine_pairs(self.collection, left, right)
        true_in_sample = int(np.count_nonzero(similarities >= threshold))
        value = true_in_sample * (self.total_pairs / self.sample_size)
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={
                "sample_size": self.sample_size,
                "true_in_sample": true_in_sample,
            },
        )


class CrossSampling(SimilarityJoinSizeEstimator):
    """RS(cross): sample ``⌈√m⌉`` vectors and compare all pairs among them.

    Cross sampling [Haas et al. 1993] spends the same pair budget but
    reuses each sampled vector in many pairs, which reduces vector-access
    cost at the price of correlated pairs.

    ``details`` keys: ``pair_budget``, ``pairs_considered``, ``true_in_sample``.
    """

    name = "RS(cross)"

    def __init__(
        self,
        collection: VectorCollection,
        *,
        sample_size: Optional[int] = None,
    ) -> None:
        if sample_size is not None and sample_size < 1:
            raise ValidationError(f"sample_size must be >= 1, got {sample_size}")
        self.collection = collection
        self.sample_size = sample_size or default_random_sampling_size(collection.size)
        self._sampler = CrossPairSampler(collection)

    @property
    def total_pairs(self) -> int:
        return self.collection.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        left, right, pairs_considered = self._sampler.sample(self.sample_size, random_state=rng)
        similarities = cosine_pairs(self.collection, left, right)
        true_in_sample = int(np.count_nonzero(similarities >= threshold))
        value = true_in_sample * (self.total_pairs / pairs_considered)
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={
                "pair_budget": self.sample_size,
                "pairs_considered": pairs_considered,
                "true_in_sample": true_in_sample,
            },
        )


__all__ = ["RandomPairSampling", "CrossSampling", "default_random_sampling_size"]
