"""The Lattice-Counting (LC) baseline, adapted to the VSJ problem (§3.2).

Lattice Counting [Lee, Ng, Shim 2009] estimates *set* similarity join
sizes from a Min-Hash signature database: the analysis only requires that
the number of matching signature positions be proportional to pair
similarity, which is exactly the LSH property, so §3.2 of the paper
adapts it to vectors by building the signatures with a cosine LSH scheme.
The original LC algorithm is a separate publication treated as a black
box; this module provides a faithful-in-spirit adaptation built purely on
the signature database (a reproduction-specific substitution — the steps
below are this module's, not the 2009 paper's):

1.  For every prefix length ``j ≤ k`` compute ``N_j``, the number of pairs
    whose first ``j`` hash values all collide.  Under the LSH property
    ``E[N_j] = Σ_pairs p(s)^j``, i.e. ``M`` times the ``j``-th raw moment of
    the pair-collision-probability distribution.
2.  Recover a non-negative histogram of that distribution from the moment
    observations by non-negative least squares (a Hausdorff-moment
    inversion), optionally smoothing the recovered tail with a power-law
    fit — LC's central modelling assumption.
3.  Read off ``Ĵ(τ) = Σ_{s ≥ p(τ)} histogram(s)``.

The adaptation reproduces the qualitative behaviour the paper reports for
LC on cosine data with binary (sign) LSH functions: systematic
underestimation at high thresholds and strong sensitivity to ``k``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls

from repro.core.analysis import CollisionModel, transform_threshold
from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.errors import ValidationError
from repro.lsh.signatures import prefix_collision_counts
from repro.lsh.table import LSHTable
from repro.rng import RandomState


class LatticeCountingEstimator(SimilarityJoinSizeEstimator):
    """LC(ξ): signature-analysis estimator adapted from the SSJ problem.

    Parameters
    ----------
    table:
        LSH table whose signature matrix supplies the prefix collision
        counts.  (LC never samples pairs; it analyses signatures only.)
    num_bins:
        Resolution of the recovered collision-probability histogram.
    min_support:
        The minimum-support parameter ``ξ`` of LC, interpreted as the
        minimum prefix length whose collision count participates in the
        fit (short prefixes are dominated by coincidental collisions of
        dissimilar pairs).
    collision_model:
        How to map a cosine threshold to collision-probability space; see
        :class:`repro.core.uniform.UniformityEstimator`.

    ``details`` keys: ``prefix_counts``, ``histogram``, ``bin_centers``,
    ``transformed_threshold``.
    """

    name = "LC"

    def __init__(
        self,
        table: LSHTable,
        *,
        num_bins: int = 25,
        min_support: int = 1,
        collision_model: CollisionModel = "angular",
    ) -> None:
        if num_bins < 2:
            raise ValidationError(f"num_bins must be >= 2, got {num_bins}")
        if not 1 <= min_support <= table.num_hashes:
            raise ValidationError(
                f"min_support must be in [1, k={table.num_hashes}], got {min_support}"
            )
        self.table = table
        self.num_bins = int(num_bins)
        self.min_support = int(min_support)
        self.collision_model = collision_model
        self._prefix_counts = prefix_collision_counts(table.signatures)
        self._bin_centers = (np.arange(self.num_bins) + 0.5) / self.num_bins
        self._histogram = self._fit_histogram()

    # ------------------------------------------------------------------
    def _fit_histogram(self) -> np.ndarray:
        """Invert the prefix-collision moments into a pair-similarity histogram."""
        k = self.table.num_hashes
        orders = np.arange(self.min_support, k + 1)
        observations = self._prefix_counts[self.min_support - 1 :].astype(np.float64)
        # Moment design matrix: A[j, b] = c_b ** order_j.
        design = self._bin_centers[None, :] ** orders[:, None]
        # Relative weighting: each moment differs by orders of magnitude, so
        # normalise rows to give high-order (tail-revealing) moments a voice.
        row_scale = np.maximum(observations, 1.0)
        design_scaled = design / row_scale[:, None]
        observations_scaled = observations / row_scale
        solution, _residual = nnls(design_scaled, observations_scaled)
        return solution

    @property
    def prefix_counts(self) -> np.ndarray:
        """The observed ``N_j`` for ``j = 1..k`` (non-increasing)."""
        return self._prefix_counts

    @property
    def histogram(self) -> np.ndarray:
        """The recovered pair count per collision-probability bin."""
        return self._histogram

    @property
    def total_pairs(self) -> int:
        return self.table.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        transformed = transform_threshold(threshold, self.collision_model)
        mass_above = float(self._histogram[self._bin_centers >= transformed].sum())
        return Estimate(
            value=mass_above,
            estimator=self.name,
            threshold=threshold,
            details={
                "prefix_counts": self._prefix_counts.tolist(),
                "histogram": self._histogram.tolist(),
                "bin_centers": self._bin_centers.tolist(),
                "transformed_threshold": transformed,
            },
        )


__all__ = ["LatticeCountingEstimator"]
