"""LSH-S: sample-weighted conditional probabilities in Eq. (1) (§4.3).

LSH-S removes the uniformity assumption of J_U by estimating the
conditional probabilities ``P(H|T)`` and ``P(H|F)`` from a uniform random
sample of pairs: every sampled similarity ``s`` contributes its collision
probability ``f(s) = s^k`` weighted by its frequency in the sample
(Eqs. 5–6), and the weighted probabilities are plugged into Eq. (1).

The paper observes (§6.2) that LSH-S degrades at high thresholds because
the sample rarely contains any true pair, so ``P(H|T)`` cannot be
estimated reliably.  This implementation reproduces that behaviour; when
the sample contains no true (resp. false) pair it falls back to the
closed-form conditional of Eq. (8) (resp. Eq. (9)), which is the
uniformity-assumption value — the degradation the paper reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.analysis import (
    CollisionModel,
    conditional_collision_probabilities,
    estimate_from_conditionals,
    transform_similarities,
    transform_threshold,
)
from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.errors import ValidationError
from repro.lsh.table import LSHTable
from repro.rng import RandomState, ensure_rng
from repro.sampling.pairs import UniformPairSampler
from repro.vectors.similarity import cosine_pairs


class LSHSEstimator(SimilarityJoinSizeEstimator):
    """The LSH-S estimator (§4.3).

    Parameters
    ----------
    table:
        Extended LSH table over the collection (provides ``N_H``, ``k``).
    sample_size:
        Number of uniformly sampled pairs used to weight the conditional
        probabilities; defaults to ``n`` (the paper's budget).
    collision_model:
        See :class:`repro.core.uniform.UniformityEstimator`.

    ``details`` keys: ``sample_size``, ``true_in_sample``,
    ``probability_h_given_t``, ``probability_h_given_f``,
    ``used_fallback_h_given_t``, ``used_fallback_h_given_f``.
    """

    name = "LSH-S"

    def __init__(
        self,
        table: LSHTable,
        *,
        sample_size: Optional[int] = None,
        collision_model: CollisionModel = "angular",
    ) -> None:
        if sample_size is not None and sample_size < 1:
            raise ValidationError(f"sample_size must be >= 1, got {sample_size}")
        self.table = table
        self.collection = table.collection
        self.sample_size = sample_size or self.collection.size
        self.collision_model = collision_model
        self._sampler = UniformPairSampler(self.collection)

    @property
    def total_pairs(self) -> int:
        return self.table.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)
        left, right = self._sampler.sample(self.sample_size, random_state=rng)
        similarities = cosine_pairs(self.collection, left, right)
        collision_similarities = transform_similarities(similarities, self.collision_model)
        num_hashes = self.table.num_hashes
        bucket_probabilities = collision_similarities**num_hashes

        is_true = similarities >= threshold
        true_in_sample = int(np.count_nonzero(is_true))
        false_in_sample = int(is_true.size - true_in_sample)

        transformed_threshold = transform_threshold(threshold, self.collision_model)
        fallback = conditional_collision_probabilities(transformed_threshold, num_hashes)

        used_fallback_t = true_in_sample == 0
        used_fallback_f = false_in_sample == 0
        if used_fallback_t:
            probability_h_given_t = fallback["P(H|T)"]
        else:
            probability_h_given_t = float(np.mean(bucket_probabilities[is_true]))
        if used_fallback_f:
            probability_h_given_f = fallback["P(H|F)"]
        else:
            probability_h_given_f = float(np.mean(bucket_probabilities[~is_true]))

        value = estimate_from_conditionals(
            self.table.num_collision_pairs,
            self.table.total_pairs,
            probability_h_given_t,
            probability_h_given_f,
        )
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={
                "sample_size": self.sample_size,
                "true_in_sample": true_in_sample,
                "probability_h_given_t": probability_h_given_t,
                "probability_h_given_f": probability_h_given_f,
                "used_fallback_h_given_t": used_fallback_t,
                "used_fallback_h_given_f": used_fallback_f,
            },
        )


__all__ = ["LSHSEstimator"]
