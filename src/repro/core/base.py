"""Estimator interface and result type shared by every estimator."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import ValidationError
from repro.rng import RandomState


@dataclass
class Estimate:
    """The outcome of one size-estimation call.

    Attributes
    ----------
    value:
        The estimated join size ``Ĵ`` (never negative).
    estimator:
        Name of the estimator that produced the value.
    threshold:
        The similarity threshold ``τ`` the estimate is for.
    details:
        Estimator-specific diagnostics (per-stratum contributions, sample
        counts, whether adaptive sampling terminated reliably, …).  Keys
        are stable per estimator and documented on the estimator class.
    """

    value: float
    estimator: str
    threshold: float
    details: Dict[str, Any] = field(default_factory=dict)

    def relative_error(self, true_size: float) -> float:
        """Signed relative error ``(Ĵ − J) / J`` against a known true size.

        Positive values are overestimations, negative values
        underestimations (bounded below by −1).  A true size of zero with
        a zero estimate is defined as zero error; a positive estimate of
        an empty join returns ``inf``.
        """
        if true_size < 0:
            raise ValidationError("true_size must be non-negative")
        if true_size == 0:
            return 0.0 if self.value == 0 else float("inf")
        return (self.value - true_size) / true_size

    def __float__(self) -> float:
        return float(self.value)


class SimilarityJoinSizeEstimator(abc.ABC):
    """Base class of every join-size estimator.

    Subclasses implement :meth:`_estimate`; the public :meth:`estimate`
    validates the threshold, clamps the result to the feasible range
    ``[0, M]`` (for every subclass — the clamp lives only here) and wraps
    it into an :class:`Estimate`.
    """

    #: Human-readable estimator name used in reports (e.g. ``"LSH-SS"``).
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def total_pairs(self) -> int:
        """The number of candidate pairs ``M`` of the underlying join."""

    @abc.abstractmethod
    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        """Produce the raw estimate for a validated ``threshold``."""

    def estimate(
        self, threshold: float, *, random_state: RandomState = None, **options: Any
    ) -> Estimate:
        """Estimate the join size at similarity threshold ``threshold``.

        Parameters
        ----------
        threshold:
            Similarity threshold ``τ`` in ``(0, 1]``.
        random_state:
            Seed or generator for the stochastic estimators; deterministic
            estimators ignore it.
        **options:
            Forwarded to the subclass's :meth:`_estimate` (e.g. the
            streaming estimators' ``mode``); subclasses that take options
            validate them before delegating here.

        This is the single enforcement point of the feasible range: every
        estimator — static, streaming, or sharded — has its raw value
        clamped to ``[0, M]`` here, so no subclass can return a negative
        or ``> total_pairs`` estimate.
        """
        self.validate_threshold(threshold)
        estimate = self._estimate(float(threshold), random_state=random_state, **options)
        estimate.value = float(min(max(estimate.value, 0.0), float(self.total_pairs)))
        return estimate

    @staticmethod
    def validate_threshold(threshold: float) -> None:
        """Raise :class:`ValidationError` unless ``threshold ∈ (0, 1]``."""
        if not 0.0 < threshold <= 1.0:
            raise ValidationError(
                f"similarity threshold must be in (0, 1], got {threshold}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["Estimate", "SimilarityJoinSizeEstimator"]
