"""J_U — the closed-form estimator under the uniformity assumption (§4.2).

Given the extended LSH table (bucket counts → ``N_H``) and the LSH
function analysis of Figure 1, Eq. (4) yields a join-size estimate with
*no sampling at all*:

    Ĵ_U = ((k + 1)·N_H − τ^k·M) / Σ_{i=0}^{k−1} τ^i

The estimator implicitly assumes pair similarities are uniform on
``[0, 1]``, which real data violates badly (§4.2) — it is included as the
stepping stone to LSH-S and as a baseline for tests.
"""

from __future__ import annotations

from repro.core.analysis import CollisionModel, transform_threshold, uniformity_estimate
from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.lsh.table import LSHTable
from repro.rng import RandomState


class UniformityEstimator(SimilarityJoinSizeEstimator):
    """The J_U estimator of Eq. (4).

    Parameters
    ----------
    table:
        The extended LSH table (provides ``N_H``, ``M`` and ``k``).
    collision_model:
        ``"angular"`` (default) converts cosine thresholds into the
        sign-random-projection collision probability before applying the
        closed form; ``"ideal"`` uses the threshold as-is (appropriate for
        MinHash/Jaccard where Definition 3 holds exactly).

    ``details`` keys: ``num_collision_pairs``, ``transformed_threshold``.
    """

    name = "J_U"

    def __init__(self, table: LSHTable, *, collision_model: CollisionModel = "angular") -> None:
        self.table = table
        self.collision_model = collision_model

    @property
    def total_pairs(self) -> int:
        return self.table.total_pairs

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        transformed = transform_threshold(threshold, self.collision_model)
        value = uniformity_estimate(
            self.table.num_collision_pairs,
            self.table.total_pairs,
            transformed,
            self.table.num_hashes,
        )
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={
                "num_collision_pairs": self.table.num_collision_pairs,
                "transformed_threshold": transformed,
            },
        )


__all__ = ["UniformityEstimator"]
