"""LSH-SS: stratified sampling over the LSH-induced strata (Algorithm 1, §5).

The LSH table partitions all ``M`` pairs into

* **stratum H** — pairs that share a bucket (``N_H`` of them), where true
  pairs are comparatively easy to hit (``P(T|H)`` stays a few percent even
  at τ = 0.9), and
* **stratum L** — the remaining ``N_L = M − N_H`` pairs, where true pairs
  are plentiful only at low thresholds.

LSH-SS estimates the two strata independently and adds the estimates
(Eq. 7):

* ``SampleH`` — plain uniform random sampling of bucket pairs, scaled up
  by ``N_H / m_H``.
* ``SampleL`` — Lipton adaptive sampling with answer threshold ``δ``; if
  ``δ`` true pairs are found within the budget ``m_L`` the scaled-up
  estimate is used, otherwise the safe lower bound ``n_L`` (or the
  dampened scale-up ``n_L · c_s · N_L / m_L`` for LSH-SS(D)).

The default parameters follow §5.1: ``m_H = m_L = n`` and ``δ = log2 n``;
LSH-SS(D) uses ``c_s = n_L / δ`` (§6.1).

The module also exposes :func:`sample_stratum_h` / :func:`sample_stratum_l`
as reusable building blocks for the virtual-bucket and general-join
estimators, which differ only in how pairs are drawn from each stratum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Literal, Optional, Tuple, Union

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.errors import ValidationError
from repro.lsh.table import LSHTable
from repro.rng import RandomState, ensure_rng
from repro.sampling.adaptive import AdaptiveSampleResult, adaptive_sample
from repro.vectors.similarity import cosine_pairs

PairSource = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]
SimilarityEvaluator = Callable[[np.ndarray, np.ndarray], np.ndarray]

Dampening = Union[None, float, Literal["auto"]]
"""``None`` → plain LSH-SS (safe lower bound).  A float in (0, 1] → fixed
``c_s``.  ``"auto"`` → the paper's LSH-SS(D) choice ``c_s = n_L / δ``."""


def default_sample_size(num_vectors: int) -> int:
    """The paper's per-stratum budget: ``n`` pairs."""
    return max(1, int(num_vectors))


def default_answer_threshold(num_vectors: int) -> int:
    """The paper's ``δ = log2 n`` (at least 1)."""
    return max(1, int(round(math.log2(max(num_vectors, 2)))))


@dataclass(frozen=True)
class StratumHResult:
    """Outcome of the SampleH subroutine."""

    estimate: float
    true_in_sample: int
    sample_size: int
    stratum_size: int


@dataclass(frozen=True)
class StratumLResult:
    """Outcome of the SampleL subroutine."""

    estimate: float
    true_in_sample: int
    samples_taken: int
    stratum_size: int
    reached_answer_threshold: bool
    dampening_used: Optional[float]


def sample_stratum_h(
    stratum_size: int,
    pair_source: PairSource,
    similarity_evaluator: SimilarityEvaluator,
    threshold: float,
    sample_size: int,
    rng: np.random.Generator,
) -> StratumHResult:
    """SampleH: uniform random sampling within stratum H, scaled up.

    ``pair_source`` must return uniform pairs *from stratum H*; for the
    single-table estimator that is weighted-bucket sampling, for the
    virtual-bucket estimator it is uniform sampling from the enumerated
    virtual pairs.
    """
    if stratum_size <= 0:
        return StratumHResult(estimate=0.0, true_in_sample=0, sample_size=0, stratum_size=0)
    if sample_size < 1:
        raise ValidationError(f"sample_size (m_H) must be >= 1, got {sample_size}")
    left, right = pair_source(sample_size, rng)
    similarities = similarity_evaluator(left, right)
    true_in_sample = int(np.count_nonzero(np.asarray(similarities) >= threshold))
    estimate = true_in_sample * (stratum_size / sample_size)
    return StratumHResult(
        estimate=float(estimate),
        true_in_sample=true_in_sample,
        sample_size=sample_size,
        stratum_size=stratum_size,
    )


def sample_stratum_l(
    stratum_size: int,
    pair_source: PairSource,
    similarity_evaluator: SimilarityEvaluator,
    threshold: float,
    answer_threshold: int,
    max_samples: int,
    dampening: Dampening,
    rng: np.random.Generator,
) -> StratumLResult:
    """SampleL: adaptive sampling within stratum L with safe fallback.

    When the adaptive run terminates by reaching ``δ`` true pairs the
    scaled-up estimate ``n_L · N_L / i`` is returned.  Otherwise the safe
    lower bound ``n_L`` is returned, or the dampened scale-up when a
    dampening factor is configured (LSH-SS(D)).
    """
    if stratum_size <= 0:
        return StratumLResult(
            estimate=0.0,
            true_in_sample=0,
            samples_taken=0,
            stratum_size=0,
            reached_answer_threshold=True,
            dampening_used=None,
        )
    result: AdaptiveSampleResult = adaptive_sample(
        pair_source,
        similarity_evaluator,
        threshold,
        answer_threshold=answer_threshold,
        max_samples=max_samples,
        random_state=rng,
    )
    dampening_value: Optional[float] = None
    if not result.reached_answer_threshold and dampening is not None:
        if dampening == "auto":
            if result.true_count > 0:
                dampening_value = min(result.true_count / answer_threshold, 1.0)
        else:
            dampening_value = float(dampening)
            if not 0.0 < dampening_value <= 1.0:
                raise ValidationError(
                    f"dampening factor must lie in (0, 1], got {dampening_value}"
                )
    estimate = result.estimate(stratum_size, dampening=dampening_value)
    return StratumLResult(
        estimate=float(estimate),
        true_in_sample=result.true_count,
        samples_taken=result.samples_taken,
        stratum_size=stratum_size,
        reached_answer_threshold=result.reached_answer_threshold,
        dampening_used=dampening_value,
    )


class LSHSSEstimator(SimilarityJoinSizeEstimator):
    """LSH-SS / LSH-SS(D): the paper's main estimator (Algorithm 1).

    Parameters
    ----------
    table:
        The extended LSH table over the collection.
    sample_size_h:
        ``m_H`` — pairs sampled from stratum H; defaults to ``n``.
    sample_size_l:
        ``m_L`` — maximum pairs examined in stratum L; defaults to ``n``.
    answer_threshold:
        ``δ`` — number of true pairs at which SampleL's estimate is
        considered reliable; defaults to ``log2 n``.
    dampening:
        ``None`` (plain LSH-SS), a fixed ``c_s ∈ (0, 1]``, or ``"auto"``
        for the paper's LSH-SS(D) choice ``c_s = n_L / δ``.

    ``details`` keys: ``stratum_h`` / ``stratum_l`` (their estimates),
    ``true_in_sample_h`` / ``true_in_sample_l``, ``samples_taken_l``,
    ``reached_answer_threshold``, ``dampening_used``,
    ``num_collision_pairs``, ``num_non_collision_pairs``.
    """

    name = "LSH-SS"

    def __init__(
        self,
        table: LSHTable,
        *,
        sample_size_h: Optional[int] = None,
        sample_size_l: Optional[int] = None,
        answer_threshold: Optional[int] = None,
        dampening: Dampening = None,
    ) -> None:
        self.table = table
        self.collection = table.collection
        n = self.collection.size
        for name, value in (
            ("sample_size_h (m_H)", sample_size_h),
            ("sample_size_l (m_L)", sample_size_l),
            ("answer_threshold (δ)", answer_threshold),
        ):
            if value is not None and value < 1:
                raise ValidationError(f"{name} must be >= 1, got {value}")
        self.sample_size_h = sample_size_h if sample_size_h is not None else default_sample_size(n)
        self.sample_size_l = sample_size_l if sample_size_l is not None else default_sample_size(n)
        self.answer_threshold = (
            answer_threshold if answer_threshold is not None else default_answer_threshold(n)
        )
        self.dampening: Dampening = dampening
        if dampening is not None and dampening != "auto":
            if not 0.0 < float(dampening) <= 1.0:
                raise ValidationError(f"dampening must be in (0, 1] or 'auto', got {dampening}")
        if dampening is not None:
            self.name = "LSH-SS(D)"

    @property
    def total_pairs(self) -> int:
        return self.table.total_pairs

    # ------------------------------------------------------------------
    def _similarities(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return cosine_pairs(self.collection, left, right)

    def _estimate(self, threshold: float, *, random_state: RandomState = None) -> Estimate:
        rng = ensure_rng(random_state)

        stratum_h = sample_stratum_h(
            self.table.num_collision_pairs,
            lambda size, generator: self.table.sample_collision_pairs(
                size, random_state=generator
            ),
            self._similarities,
            threshold,
            self.sample_size_h,
            rng,
        )
        stratum_l = sample_stratum_l(
            self.table.num_non_collision_pairs,
            lambda size, generator: self.table.sample_non_collision_pairs(
                size, random_state=generator
            ),
            self._similarities,
            threshold,
            self.answer_threshold,
            self.sample_size_l,
            self.dampening,
            rng,
        )
        value = stratum_h.estimate + stratum_l.estimate
        return Estimate(
            value=value,
            estimator=self.name,
            threshold=threshold,
            details={
                "stratum_h": stratum_h.estimate,
                "stratum_l": stratum_l.estimate,
                "true_in_sample_h": stratum_h.true_in_sample,
                "true_in_sample_l": stratum_l.true_in_sample,
                "samples_taken_l": stratum_l.samples_taken,
                "reached_answer_threshold": stratum_l.reached_answer_threshold,
                "dampening_used": stratum_l.dampening_used,
                "num_collision_pairs": self.table.num_collision_pairs,
                "num_non_collision_pairs": self.table.num_non_collision_pairs,
            },
        )


__all__ = [
    "LSHSSEstimator",
    "StratumHResult",
    "StratumLResult",
    "sample_stratum_h",
    "sample_stratum_l",
    "default_sample_size",
    "default_answer_threshold",
    "Dampening",
]
