"""Closed-form LSH collision analysis (Figure 1, Appendix A.1, §B.1).

Under the idealised LSH property of Definition 3 the per-hash collision
probability equals the pair similarity ``s``, so the probability that a
pair lands in the same bucket of a ``k``-hash table is ``f(s) = s^k``.
Treating the similarity of a random pair as uniform on ``[0, 1]`` (the
"uniformity assumption" of §4.2) the four joint probabilities of Figure 1
are simple integrals, giving the conditional probabilities of Eqs. (8)–(9)
and the closed-form estimator J_U of Eq. (4).

For cosine similarity with Charikar's sign-random-projection family the
idealised property holds for the *angular* similarity
``1 − arccos(cos)/π``; :func:`transform_threshold` maps cosine thresholds
into that space before applying the formulas
(``benchmarks/bench_ablation_collision_model.py`` quantifies how much the
correction matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.vectors.similarity import cosine_to_angular_collision

CollisionModel = Literal["ideal", "angular"]
"""``"ideal"``: Definition 3 holds for the raw similarity.  ``"angular"``:
the similarity is cosine and the family is sign-random-projection, so the
per-hash collision probability is ``1 − arccos(s)/π``."""


def transform_threshold(threshold: float, collision_model: CollisionModel = "angular") -> float:
    """Map a similarity threshold into per-hash collision-probability space."""
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    if collision_model == "ideal":
        return float(threshold)
    if collision_model == "angular":
        return float(cosine_to_angular_collision(threshold))
    raise ValidationError(
        f"collision_model must be 'ideal' or 'angular', got {collision_model!r}"
    )


def transform_similarities(
    similarities: np.ndarray, collision_model: CollisionModel = "angular"
) -> np.ndarray:
    """Vectorised :func:`transform_threshold` for sampled pair similarities."""
    if collision_model == "ideal":
        return np.clip(np.asarray(similarities, dtype=np.float64), 0.0, 1.0)
    if collision_model == "angular":
        return np.asarray(cosine_to_angular_collision(np.asarray(similarities)), dtype=np.float64)
    raise ValidationError(
        f"collision_model must be 'ideal' or 'angular', got {collision_model!r}"
    )


@dataclass(frozen=True)
class CollisionJointProbabilities:
    """The four areas of Figure 1 for a threshold ``τ`` and ``k`` hashes."""

    same_bucket_false: float  #: P(H ∩ F) — false pairs that collide
    same_bucket_true: float  #: P(H ∩ T) — true pairs that collide
    different_bucket_false: float  #: P(L ∩ F)
    different_bucket_true: float  #: P(L ∩ T)

    def as_dict(self) -> Dict[str, float]:
        return {
            "P(H∩F)": self.same_bucket_false,
            "P(H∩T)": self.same_bucket_true,
            "P(L∩F)": self.different_bucket_false,
            "P(L∩T)": self.different_bucket_true,
        }


def collision_joint_probabilities(threshold: float, num_hashes: int) -> CollisionJointProbabilities:
    """Appendix A.1: the four areas under/over ``f(s) = s^k`` split at ``τ``.

    ``threshold`` must already be expressed in collision-probability space
    (apply :func:`transform_threshold` first for cosine thresholds).
    """
    _validate_inputs(threshold, num_hashes)
    tau = float(threshold)
    k = int(num_hashes)
    tau_power = tau ** (k + 1)
    same_false = tau_power / (k + 1)
    same_true = (1.0 - tau_power) / (k + 1)
    different_false = tau - same_false
    different_true = (1.0 - tau) - same_true
    return CollisionJointProbabilities(
        same_bucket_false=same_false,
        same_bucket_true=same_true,
        different_bucket_false=max(different_false, 0.0),
        different_bucket_true=max(different_true, 0.0),
    )


def conditional_collision_probabilities(threshold: float, num_hashes: int) -> Dict[str, float]:
    """Eqs. (8) and (9): ``P(H|T)`` and ``P(H|F)`` under the uniformity assumption.

    ``P(H|T) = Σ_{i=0}^{k} τ^i / (k + 1)`` and ``P(H|F) = τ^k / (k + 1)``.
    """
    _validate_inputs(threshold, num_hashes)
    tau = float(threshold)
    k = int(num_hashes)
    powers = tau ** np.arange(0, k + 1)
    probability_h_given_t = float(powers.sum() / (k + 1))
    probability_h_given_f = float(tau**k / (k + 1))
    return {"P(H|T)": probability_h_given_t, "P(H|F)": probability_h_given_f}


def estimate_from_conditionals(
    num_collision_pairs: float,
    total_pairs: float,
    probability_h_given_t: float,
    probability_h_given_f: float,
) -> float:
    """Equation (1): ``N̂_T = (N_H − M·P(H|F)) / (P(H|T) − P(H|F))``.

    The result is clamped to ``[0, M]``; a non-positive denominator (the
    bucket structure carries no signal) returns 0.
    """
    if total_pairs < 0 or num_collision_pairs < 0:
        raise ValidationError("pair counts must be non-negative")
    denominator = probability_h_given_t - probability_h_given_f
    if denominator <= 0.0:
        return 0.0
    value = (num_collision_pairs - total_pairs * probability_h_given_f) / denominator
    return float(min(max(value, 0.0), total_pairs))


def uniformity_estimate(
    num_collision_pairs: float, total_pairs: float, threshold: float, num_hashes: int
) -> float:
    """Equation (4): the closed-form J_U estimator.

    ``Ĵ_U = ((k + 1)·N_H − τ^k·M) / Σ_{i=0}^{k−1} τ^i`` with the result
    clamped to the feasible range ``[0, M]``.
    """
    _validate_inputs(threshold, num_hashes)
    tau = float(threshold)
    k = int(num_hashes)
    denominator = float((tau ** np.arange(0, k)).sum())
    if denominator <= 0.0:
        return 0.0
    value = ((k + 1) * num_collision_pairs - (tau**k) * total_pairs) / denominator
    return float(min(max(value, 0.0), total_pairs))


def empirical_precision(
    similarities: np.ndarray,
    threshold: float,
    num_hashes: int,
) -> float:
    """``P(T|H)`` implied by a sample/bank of pair similarities.

    Given pair similarities ``s`` (in collision-probability space), each
    pair lands in the same bucket with probability ``s^k``; the precision
    of the bucket stratum is therefore
    ``Σ_{s ≥ τ} s^k / Σ_all s^k`` — the quantity the Optimal-k problem
    (Definition 4) constrains.
    """
    _validate_inputs(threshold, num_hashes)
    values = np.clip(np.asarray(similarities, dtype=np.float64), 0.0, 1.0)
    if values.size == 0:
        raise ValidationError("at least one similarity value is required")
    weights = values ** int(num_hashes)
    total = float(weights.sum())
    if total <= 0.0:
        return 0.0
    return float(weights[values >= threshold].sum() / total)


def optimal_num_hashes(
    similarities: Sequence[float] | np.ndarray,
    threshold: float,
    *,
    target_precision: float = 0.1,
    max_hashes: int = 64,
) -> Optional[int]:
    """The Optimal-k problem (Definition 4, §B.1).

    Find the smallest ``k`` such that the implied ``P(T|H)`` reaches
    ``target_precision`` for the given (sampled or exact) similarity
    distribution.  Returns ``None`` when no ``k ≤ max_hashes`` reaches the
    target — e.g. when there are no true pairs at all.

    Smaller ``k`` increases recall ``P(H|T)`` and shrinks hashing cost, so
    the minimiser is the cheapest table that is still precise enough.
    """
    if not 0.0 < target_precision <= 1.0:
        raise ValidationError("target_precision must be in (0, 1]")
    if max_hashes < 1:
        raise ValidationError("max_hashes must be >= 1")
    for num_hashes in range(1, max_hashes + 1):
        if empirical_precision(np.asarray(similarities), threshold, num_hashes) >= target_precision:
            return num_hashes
    return None


def _validate_inputs(threshold: float, num_hashes: int) -> None:
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    if num_hashes < 1:
        raise ValidationError(f"num_hashes (k) must be >= 1, got {num_hashes}")


__all__ = [
    "CollisionModel",
    "CollisionJointProbabilities",
    "transform_threshold",
    "transform_similarities",
    "collision_joint_probabilities",
    "conditional_collision_probabilities",
    "estimate_from_conditionals",
    "uniformity_estimate",
    "empirical_precision",
    "optimal_num_hashes",
]
