"""The paper's contribution: similarity-join size estimators.

Estimators (all implement :class:`~repro.core.base.SimilarityJoinSizeEstimator`):

* :class:`~repro.core.random_sampling.RandomPairSampling` — RS(pop), §3.1.
* :class:`~repro.core.random_sampling.CrossSampling` — RS(cross), §3.1.
* :class:`~repro.core.uniform.UniformityEstimator` — J_U, the closed-form
  estimator under the uniformity assumption (Eq. 4, §4.2).
* :class:`~repro.core.lsh_s.LSHSEstimator` — LSH-S, which replaces the
  uniformity assumption with sample-weighted conditional probabilities
  (Eqs. 5–6, §4.3).
* :class:`~repro.core.lsh_ss.LSHSSEstimator` — LSH-SS, the stratified
  sampling estimator (Algorithm 1, §5), including the dampened variant
  LSH-SS(D).
* :class:`~repro.core.lattice_counting.LatticeCountingEstimator` — the
  Lattice-Counting adaptation (§3.2).
* :class:`~repro.core.multi_table.MedianEstimator` and
  :class:`~repro.core.multi_table.VirtualBucketEstimator` — multi-table
  extensions (§B.2.1).
* :mod:`~repro.core.general_join` — non-self-join variants (§B.2.2).
"""

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.core.analysis import (
    collision_joint_probabilities,
    conditional_collision_probabilities,
    optimal_num_hashes,
    transform_threshold,
    uniformity_estimate,
)
from repro.core.random_sampling import CrossSampling, RandomPairSampling
from repro.core.uniform import UniformityEstimator
from repro.core.lsh_s import LSHSEstimator
from repro.core.lsh_ss import LSHSSEstimator
from repro.core.lattice_counting import LatticeCountingEstimator
from repro.core.multi_table import MedianEstimator, VirtualBucketEstimator
from repro.core.general_join import (
    GeneralLSHSSEstimator,
    GeneralRandomPairSampling,
    PairedLSHTable,
)

__all__ = [
    "Estimate",
    "SimilarityJoinSizeEstimator",
    "collision_joint_probabilities",
    "conditional_collision_probabilities",
    "transform_threshold",
    "uniformity_estimate",
    "optimal_num_hashes",
    "RandomPairSampling",
    "CrossSampling",
    "UniformityEstimator",
    "LSHSEstimator",
    "LSHSSEstimator",
    "LatticeCountingEstimator",
    "MedianEstimator",
    "VirtualBucketEstimator",
    "PairedLSHTable",
    "GeneralLSHSSEstimator",
    "GeneralRandomPairSampling",
]
