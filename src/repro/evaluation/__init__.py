"""Evaluation harness: metrics, probability tables, trial runner, reports.

The paper evaluates estimators by average relative error split into
overestimations and underestimations, the standard deviation of the
estimates across 100 trials, and the runtime (§6.1).  This subpackage
reproduces that methodology and renders the same tables/series the
figures report.
"""

from repro.evaluation.metrics import (
    TrialSummary,
    mean_overestimation_error,
    mean_underestimation_error,
    signed_relative_error,
    summarize_trials,
)
from repro.evaluation.probabilities import (
    StratumProbabilities,
    alpha_beta_table,
    empirical_stratum_probabilities,
)
from repro.evaluation.runner import ExperimentRunner, SweepRecord
from repro.evaluation.report import format_table, records_to_markdown, series_table

__all__ = [
    "signed_relative_error",
    "mean_overestimation_error",
    "mean_underestimation_error",
    "summarize_trials",
    "TrialSummary",
    "StratumProbabilities",
    "empirical_stratum_probabilities",
    "alpha_beta_table",
    "ExperimentRunner",
    "SweepRecord",
    "format_table",
    "series_table",
    "records_to_markdown",
]
