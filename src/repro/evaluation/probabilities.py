"""Empirical stratum probabilities: Tables 1 and 2 of the paper.

Given an LSH table and the exact join oracle, this module computes the
probabilities the paper tabulates to motivate stratified sampling:

* ``P(T)`` — probability a random pair is a true pair (``J / M``),
* ``P(T|H)`` = α — probability a co-bucket pair is true,
* ``P(H|T)`` — probability a true pair shares a bucket,
* ``P(T|L)`` = β — probability a non-co-bucket pair is true,

plus the theoretical regime boundaries ``log n / n`` and ``1 / n`` used by
the analysis in §5.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.join.histogram import SimilarityHistogram
from repro.lsh.table import LSHTable
from repro.vectors.similarity import cosine_pairs


@dataclass(frozen=True)
class StratumProbabilities:
    """The probabilities of Table 1 for one threshold."""

    threshold: float
    probability_true: float  #: P(T) = J / M
    probability_true_given_h: float  #: α = P(T|H)
    probability_h_given_true: float  #: P(H|T)
    probability_true_given_l: float  #: β = P(T|L)
    join_size: int
    num_collision_pairs: int
    true_collision_pairs: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "tau": self.threshold,
            "P(T)": self.probability_true,
            "P(T|H)": self.probability_true_given_h,
            "P(H|T)": self.probability_h_given_true,
            "P(T|L)": self.probability_true_given_l,
            "J": float(self.join_size),
            "N_H": float(self.num_collision_pairs),
            "J_H": float(self.true_collision_pairs),
        }


def _collision_pair_similarities(table: LSHTable) -> np.ndarray:
    """Similarities of every pair that shares a bucket (exact, |SH| values)."""
    lefts: List[int] = []
    rights: List[int] = []
    for left, right in table.iter_collision_pairs():
        lefts.append(left)
        rights.append(right)
    if not lefts:
        return np.zeros(0, dtype=np.float64)
    return cosine_pairs(
        table.collection, np.asarray(lefts, dtype=np.int64), np.asarray(rights, dtype=np.int64)
    )


def empirical_stratum_probabilities(
    table: LSHTable,
    thresholds: Sequence[float],
    *,
    histogram: Optional[SimilarityHistogram] = None,
) -> List[StratumProbabilities]:
    """Compute Table 1 exactly for a threshold grid.

    Parameters
    ----------
    table:
        The extended LSH table.
    thresholds:
        Similarity thresholds (each in ``(0, 1]``).
    histogram:
        Optional pre-computed exact similarity histogram (reused across
        many calls in the benchmarks); built on demand otherwise.
    """
    for threshold in thresholds:
        if not 0.0 < threshold <= 1.0:
            raise ValidationError(f"thresholds must be in (0, 1], got {threshold}")
    if histogram is None:
        histogram = SimilarityHistogram(table.collection)
    collision_similarities = _collision_pair_similarities(table)
    total_pairs = table.total_pairs
    num_collision_pairs = table.num_collision_pairs
    num_non_collision_pairs = table.num_non_collision_pairs

    results: List[StratumProbabilities] = []
    for threshold in thresholds:
        join_size = histogram.join_size(float(threshold))
        true_collision = int(np.count_nonzero(collision_similarities >= threshold))
        true_non_collision = max(join_size - true_collision, 0)
        probability_true = join_size / total_pairs if total_pairs else 0.0
        alpha = true_collision / num_collision_pairs if num_collision_pairs else 0.0
        h_given_t = true_collision / join_size if join_size else 0.0
        beta = (
            true_non_collision / num_non_collision_pairs if num_non_collision_pairs else 0.0
        )
        results.append(
            StratumProbabilities(
                threshold=float(threshold),
                probability_true=probability_true,
                probability_true_given_h=alpha,
                probability_h_given_true=h_given_t,
                probability_true_given_l=beta,
                join_size=int(join_size),
                num_collision_pairs=int(num_collision_pairs),
                true_collision_pairs=true_collision,
            )
        )
    return results


def regime_boundaries(num_vectors: int) -> Dict[str, float]:
    """The α/β boundaries of §5.2: ``log n / n`` (high/low-threshold α and
    low-threshold β) and ``1 / n`` (high-threshold β)."""
    if num_vectors < 2:
        raise ValidationError("num_vectors must be >= 2")
    return {
        "alpha_threshold": math.log2(num_vectors) / num_vectors,
        "beta_high_threshold": 1.0 / num_vectors,
        "beta_low_threshold": math.log2(num_vectors) / num_vectors,
    }


def alpha_beta_table(
    table: LSHTable,
    thresholds: Sequence[float],
    *,
    histogram: Optional[SimilarityHistogram] = None,
) -> Dict[str, object]:
    """Table 2: α and β per threshold plus the theoretical regime boundaries."""
    probabilities = empirical_stratum_probabilities(table, thresholds, histogram=histogram)
    boundaries = regime_boundaries(table.num_vectors)
    rows = [
        {
            "tau": item.threshold,
            "alpha": item.probability_true_given_h,
            "beta": item.probability_true_given_l,
        }
        for item in probabilities
    ]
    return {"rows": rows, "boundaries": boundaries}


__all__ = [
    "StratumProbabilities",
    "empirical_stratum_probabilities",
    "alpha_beta_table",
    "regime_boundaries",
]
