"""Accuracy and reliability metrics matching the paper's evaluation (§6.1).

The paper reports, per estimator and threshold:

* the average relative error of *overestimations* (as a percentage),
* the average relative error of *underestimations* (bounded by −100 %),
* the standard deviation of the estimates across trials (reliability).

``signed_relative_error`` follows the convention of
:meth:`repro.core.base.Estimate.relative_error`: ``(Ĵ − J)/J``, positive
for overestimation, negative for underestimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError


def signed_relative_error(estimate: float, true_size: float) -> float:
    """Signed relative error ``(Ĵ − J) / J``.

    A true size of zero returns 0.0 for a zero estimate and ``inf`` for a
    positive estimate (the join is empty; any positive estimate is an
    unbounded overestimate).
    """
    if true_size < 0:
        raise ValidationError("true_size must be non-negative")
    if true_size == 0:
        return 0.0 if estimate == 0 else float("inf")
    return (estimate - true_size) / true_size


def _finite_errors(estimates: Sequence[float], true_size: float) -> np.ndarray:
    errors = np.asarray(
        [signed_relative_error(float(estimate), true_size) for estimate in estimates],
        dtype=np.float64,
    )
    return errors


def mean_overestimation_error(estimates: Sequence[float], true_size: float) -> float:
    """Average positive relative error over the trials that overestimated.

    Returns 0.0 when no trial overestimated (matching how the paper's
    overestimation plots bottom out at zero).  Infinite errors (positive
    estimates of an empty join) are excluded from the mean but noted by
    the caller via :func:`summarize_trials`.
    """
    errors = _finite_errors(estimates, true_size)
    positive = errors[np.isfinite(errors) & (errors > 0)]
    if positive.size == 0:
        return 0.0
    return float(positive.mean())


def mean_underestimation_error(estimates: Sequence[float], true_size: float) -> float:
    """Average negative relative error over the trials that underestimated.

    Returns 0.0 when no trial underestimated.  The value is bounded below
    by −1 (an estimate of 0 for a non-empty join).
    """
    errors = _finite_errors(estimates, true_size)
    negative = errors[np.isfinite(errors) & (errors < 0)]
    if negative.size == 0:
        return 0.0
    return float(negative.mean())


@dataclass(frozen=True)
class TrialSummary:
    """Summary of repeated estimates of one (estimator, threshold) cell."""

    true_size: float
    num_trials: int
    mean_estimate: float
    std_estimate: float
    mean_overestimation: float  #: average of positive relative errors (0 if none)
    mean_underestimation: float  #: average of negative relative errors (0 if none)
    mean_absolute_relative_error: float
    num_overestimates: int
    num_underestimates: int
    num_unbounded: int  #: positive estimates of an empty join

    def as_dict(self) -> dict:
        return {
            "true_size": self.true_size,
            "num_trials": self.num_trials,
            "mean_estimate": self.mean_estimate,
            "std_estimate": self.std_estimate,
            "mean_overestimation": self.mean_overestimation,
            "mean_underestimation": self.mean_underestimation,
            "mean_absolute_relative_error": self.mean_absolute_relative_error,
            "num_overestimates": self.num_overestimates,
            "num_underestimates": self.num_underestimates,
            "num_unbounded": self.num_unbounded,
        }


def summarize_trials(estimates: Sequence[float], true_size: float) -> TrialSummary:
    """Aggregate repeated estimates into the paper's reporting quantities."""
    values = np.asarray([float(estimate) for estimate in estimates], dtype=np.float64)
    if values.size == 0:
        raise ValidationError("at least one trial estimate is required")
    errors = _finite_errors(values, true_size)
    finite = errors[np.isfinite(errors)]
    num_unbounded = int(np.count_nonzero(~np.isfinite(errors)))
    mean_absolute = float(np.abs(finite).mean()) if finite.size else float("inf")
    return TrialSummary(
        true_size=float(true_size),
        num_trials=int(values.size),
        mean_estimate=float(values.mean()),
        std_estimate=float(values.std(ddof=0)),
        mean_overestimation=mean_overestimation_error(values, true_size),
        mean_underestimation=mean_underestimation_error(values, true_size),
        mean_absolute_relative_error=mean_absolute,
        num_overestimates=int(np.count_nonzero(finite > 0) + num_unbounded),
        num_underestimates=int(np.count_nonzero(finite < 0)),
        num_unbounded=num_unbounded,
    )


def count_large_errors(
    estimates: Sequence[float], true_size: float, *, factor: float = 10.0
) -> dict:
    """Count trials that are off by at least ``factor`` in either direction.

    Reproduces the "number of τ values with big errors" metric of
    Figures 6 and 8 (``Ĵ/J ≥ 10`` or ``J/Ĵ ≥ 10``).
    """
    if factor <= 1.0:
        raise ValidationError("factor must exceed 1")
    values = np.asarray([float(estimate) for estimate in estimates], dtype=np.float64)
    overestimates = 0
    underestimates = 0
    for value in values:
        if true_size == 0:
            if value > 0:
                overestimates += 1
            continue
        if value / true_size >= factor:
            overestimates += 1
        elif value == 0 or true_size / max(value, np.finfo(float).tiny) >= factor:
            underestimates += 1
    return {"overestimates": overestimates, "underestimates": underestimates}


__all__ = [
    "signed_relative_error",
    "mean_overestimation_error",
    "mean_underestimation_error",
    "summarize_trials",
    "count_large_errors",
    "TrialSummary",
]
