"""Plain-text / markdown rendering of experiment results.

The benchmarks print the same rows and series the paper's tables and
figures report; these helpers keep the formatting in one place so every
benchmark output looks alike and the markdown reports persisted under
``benchmarks/results/`` can embed the tables verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation.runner import SweepRecord, records_by_estimator


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def records_to_markdown(records: Sequence[SweepRecord], *, title: Optional[str] = None) -> str:
    """Render sweep records as a GitHub-flavoured markdown table."""
    headers = [
        "estimator",
        "tau",
        "true J",
        "mean est.",
        "overest. %",
        "underest. %",
        "STD",
        "runtime (ms)",
    ]
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for record in records:
        summary = record.summary
        lines.append(
            "| {estimator} | {tau:.1f} | {true} | {mean:.4g} | {over:.1f} | {under:.1f} | {std:.4g} | {runtime:.1f} |".format(
                estimator=record.estimator,
                tau=record.threshold,
                true=record.true_size,
                mean=summary.mean_estimate,
                over=summary.mean_overestimation * 100.0,
                under=summary.mean_underestimation * 100.0,
                std=summary.std_estimate,
                runtime=record.mean_runtime_seconds * 1000.0,
            )
        )
    return "\n".join(lines)


def series_table(records: Sequence[SweepRecord], *, title: Optional[str] = None) -> str:
    """Render sweep records as the paper's figure series (one row per τ).

    Columns mirror Figures 2/3/9: overestimation error, underestimation
    error and standard deviation per estimator and threshold.
    """
    grouped = records_by_estimator(records)
    headers = ["tau", "true J"]
    estimator_names = list(grouped)
    for name in estimator_names:
        headers.extend([f"{name} over%", f"{name} under%", f"{name} STD"])
    thresholds = sorted({record.threshold for record in records})
    true_by_threshold: Dict[float, int] = {
        record.threshold: record.true_size for record in records
    }
    rows: List[List[object]] = []
    for threshold in thresholds:
        row: List[object] = [f"{threshold:.1f}", true_by_threshold.get(threshold, 0)]
        for name in estimator_names:
            match = next(
                (record for record in grouped[name] if record.threshold == threshold), None
            )
            if match is None:
                row.extend(["-", "-", "-"])
            else:
                row.extend(
                    [
                        match.summary.mean_overestimation * 100.0,
                        match.summary.mean_underestimation * 100.0,
                        match.summary.std_estimate,
                    ]
                )
        rows.append(row)
    return format_table(headers, rows, title=title, float_format="{:.3g}")


__all__ = ["format_table", "records_to_markdown", "series_table"]
