"""Experiment runner: repeated trials over threshold grids with timing.

The paper runs every estimator 100 times per threshold and reports the
error/variance statistics of :mod:`repro.evaluation.metrics`.  The runner
owns the trial loop, the deterministic per-trial seeding, and the wiring
to the exact ground-truth oracle so every benchmark is a few lines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.base import SimilarityJoinSizeEstimator
from repro.errors import ValidationError
from repro.evaluation.metrics import TrialSummary, summarize_trials
from repro.join.histogram import SimilarityHistogram
from repro.rng import RandomState, ensure_rng
from repro.vectors.collection import VectorCollection


@dataclass
class SweepRecord:
    """Result of one (estimator, threshold) cell of a sweep."""

    estimator: str
    threshold: float
    true_size: int
    estimates: List[float]
    mean_runtime_seconds: float
    summary: TrialSummary = field(init=False)

    def __post_init__(self) -> None:
        self.summary = summarize_trials(self.estimates, self.true_size)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "estimator": self.estimator,
            "threshold": self.threshold,
            "true_size": self.true_size,
            "mean_runtime_seconds": self.mean_runtime_seconds,
        }
        row.update(self.summary.as_dict())
        return row


class ExperimentRunner:
    """Run estimators over a threshold grid with repeated trials.

    Parameters
    ----------
    collection:
        The vector collection under evaluation (used to build the exact
        ground truth once).
    thresholds:
        The similarity thresholds to sweep.
    num_trials:
        Trials per (estimator, threshold) cell; the paper uses 100.
    histogram:
        Optional pre-built :class:`SimilarityHistogram`; built lazily
        otherwise.
    random_state:
        Master seed; trial ``t`` of every estimator uses seed
        ``master + t`` so different estimators see different randomness
        but the whole sweep is reproducible.
    """

    def __init__(
        self,
        collection: VectorCollection,
        thresholds: Sequence[float],
        *,
        num_trials: int = 20,
        histogram: Optional[SimilarityHistogram] = None,
        random_state: RandomState = 0,
    ):
        if num_trials < 1:
            raise ValidationError("num_trials must be >= 1")
        if not thresholds:
            raise ValidationError("at least one threshold is required")
        self.collection = collection
        self.thresholds = [float(t) for t in thresholds]
        self.num_trials = int(num_trials)
        self._histogram = histogram
        self._master_seed = int(ensure_rng(random_state).integers(0, 2**31 - 1))

    # ------------------------------------------------------------------
    @property
    def histogram(self) -> SimilarityHistogram:
        """The exact ground-truth oracle (built lazily, then cached)."""
        if self._histogram is None:
            self._histogram = SimilarityHistogram(self.collection)
        return self._histogram

    def true_sizes(self) -> Dict[float, int]:
        """Exact ``J(τ)`` for every threshold in the sweep."""
        return {threshold: self.histogram.join_size(threshold) for threshold in self.thresholds}

    # ------------------------------------------------------------------
    def run_estimator(
        self,
        estimator: SimilarityJoinSizeEstimator,
        *,
        thresholds: Optional[Sequence[float]] = None,
        num_trials: Optional[int] = None,
    ) -> List[SweepRecord]:
        """Sweep one estimator; returns one record per threshold."""
        thresholds = [float(t) for t in (thresholds or self.thresholds)]
        num_trials = int(num_trials or self.num_trials)
        records: List[SweepRecord] = []
        for threshold in thresholds:
            true_size = self.histogram.join_size(threshold)
            estimates: List[float] = []
            elapsed = 0.0
            for trial in range(num_trials):
                seed = self._master_seed + trial
                start = time.perf_counter()
                estimate = estimator.estimate(threshold, random_state=seed)
                elapsed += time.perf_counter() - start
                estimates.append(estimate.value)
            records.append(
                SweepRecord(
                    estimator=estimator.name,
                    threshold=threshold,
                    true_size=int(true_size),
                    estimates=estimates,
                    mean_runtime_seconds=elapsed / num_trials,
                )
            )
        return records

    def run(
        self,
        estimators: Sequence[SimilarityJoinSizeEstimator]
        | Mapping[str, SimilarityJoinSizeEstimator],
        *,
        num_trials: Optional[int] = None,
    ) -> List[SweepRecord]:
        """Sweep several estimators over the full threshold grid."""
        if isinstance(estimators, Mapping):
            items = list(estimators.values())
        else:
            items = list(estimators)
        if not items:
            raise ValidationError("at least one estimator is required")
        records: List[SweepRecord] = []
        for estimator in items:
            records.extend(self.run_estimator(estimator, num_trials=num_trials))
        return records


def records_by_estimator(records: Sequence[SweepRecord]) -> Dict[str, List[SweepRecord]]:
    """Group sweep records by estimator name, preserving threshold order."""
    grouped: Dict[str, List[SweepRecord]] = {}
    for record in records:
        grouped.setdefault(record.estimator, []).append(record)
    return grouped


__all__ = ["ExperimentRunner", "SweepRecord", "records_by_estimator"]
