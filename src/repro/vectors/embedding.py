"""Vector → multiset embedding used to adapt set-based SSJ techniques.

Section 1 of the paper notes that a vector can be embedded into a set
space "by treating a dimension as an element and repeating the element as
many times as the dimension value, using standard rounding techniques if
values are not integral".  This module implements exactly that embedding
so the set-similarity-join substrate (and the Lattice-Counting baseline)
can be exercised on vector inputs, and so tests can quantify the accuracy
loss the paper warns about.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.vectors.collection import VectorCollection

Multiset = Dict[Tuple[int, int], int]
"""A multiset is encoded as ``{(dimension, copy_index): 1}`` elements.

Using ``(dimension, copy)`` tuples keeps every repeated copy a distinct
set element, which is the standard trick for reducing multiset semantics
to plain sets.
"""


def vector_to_multiset(values: Dict[int, float], *, scale: float = 1.0) -> Multiset:
    """Embed one sparse vector (``{dim: value}``) into a multiset of elements.

    Parameters
    ----------
    values:
        Sparse vector as a dimension → value mapping.
    scale:
        Values are multiplied by ``scale`` before rounding; use a larger
        scale to preserve more resolution of fractional weights (at the
        cost of larger sets — the resource blow-up the paper warns about).

    Returns
    -------
    dict
        ``{(dimension, copy_index): 1}`` — the keys form the embedded set.
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    multiset: Multiset = {}
    for dimension, value in values.items():
        copies = int(round(abs(value) * scale))
        for copy_index in range(copies):
            multiset[(int(dimension), copy_index)] = 1
    return multiset


def collection_to_multisets(
    collection: VectorCollection, *, scale: float = 1.0
) -> List[Multiset]:
    """Embed every vector of ``collection`` via :func:`vector_to_multiset`."""
    return [
        vector_to_multiset(collection.row_dict(index), scale=scale)
        for index in range(collection.size)
    ]


def multiset_jaccard(a: Multiset, b: Multiset) -> float:
    """Jaccard similarity between two embedded multisets."""
    keys_a = set(a)
    keys_b = set(b)
    if not keys_a and not keys_b:
        return 0.0
    return len(keys_a & keys_b) / len(keys_a | keys_b)


def embedding_size(multisets: List[Multiset]) -> int:
    """Total number of set elements produced by the embedding.

    This quantifies the resource blow-up of embedding TF-IDF vectors into
    sets (§1: "this embedding can have adverse effects on performance,
    accuracy or required resources").
    """
    return int(np.sum([len(multiset) for multiset in multisets]))


__all__ = [
    "Multiset",
    "vector_to_multiset",
    "collection_to_multisets",
    "multiset_jaccard",
    "embedding_size",
]
