"""Sparse-vector substrate: collections, similarities, TF-IDF, embeddings.

The paper's VSJ problem is defined over a collection of real-valued
vectors with cosine similarity.  This subpackage provides the vector
representation used throughout the library:

* :class:`~repro.vectors.collection.VectorCollection` — an immutable,
  CSR-backed collection of sparse vectors with cached norms.
* :mod:`~repro.vectors.similarity` — cosine / Jaccard / dot / overlap
  similarities, both pairwise and vectorised over index pairs.
* :mod:`~repro.vectors.tfidf` — a small TF-IDF pipeline used by the
  synthetic NYT-like and PUBMED-like corpora.
* :mod:`~repro.vectors.embedding` — the vector → multiset embedding the
  paper discusses for adapting set-similarity-join techniques (§1).
"""

from repro.vectors.collection import VectorCollection
from repro.vectors.similarity import (
    cosine_pairs,
    cosine_similarity,
    cosine_similarity_matrix,
    dot_pairs,
    jaccard_pairs,
    jaccard_similarity,
    overlap_similarity,
)
from repro.vectors.tfidf import TfidfVectorizer, Tokenizer, Vocabulary
from repro.vectors.embedding import vector_to_multiset, collection_to_multisets

__all__ = [
    "VectorCollection",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "cosine_pairs",
    "dot_pairs",
    "jaccard_similarity",
    "jaccard_pairs",
    "overlap_similarity",
    "TfidfVectorizer",
    "Tokenizer",
    "Vocabulary",
    "vector_to_multiset",
    "collection_to_multisets",
]
