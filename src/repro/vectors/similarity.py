"""Similarity measures used by the VSJ / SSJ problems.

The paper evaluates cosine similarity; Jaccard similarity appears through
the Lattice-Counting adaptation (Min-Hashing) and the set-similarity-join
substrate.  All functions accept either dense 1-D arrays, sparse rows, or
``(collection, index)`` pairs via the vectorised helpers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Union

import numpy as np
from scipy import sparse

from repro.errors import DimensionMismatchError, ValidationError
from repro.vectors.collection import VectorCollection

VectorLike = Union[np.ndarray, Sequence[float], sparse.spmatrix]


def _as_dense(vector: VectorLike) -> np.ndarray:
    if sparse.issparse(vector):
        dense = np.asarray(vector.todense()).ravel()
    else:
        dense = np.asarray(vector, dtype=np.float64).ravel()
    return dense


def cosine_similarity(u: VectorLike, v: VectorLike) -> float:
    """Cosine similarity ``u·v / (‖u‖‖v‖)`` between two vectors.

    Returns 0.0 when either vector has zero norm (the convention used by
    the exact join so that empty documents never join with anything).
    """
    u_dense = _as_dense(u)
    v_dense = _as_dense(v)
    if u_dense.shape != v_dense.shape:
        raise DimensionMismatchError(
            f"cosine_similarity requires equal-length vectors, got {u_dense.shape} and {v_dense.shape}"
        )
    norm_u = float(np.linalg.norm(u_dense))
    norm_v = float(np.linalg.norm(v_dense))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    value = float(np.dot(u_dense, v_dense) / (norm_u * norm_v))
    return float(np.clip(value, -1.0, 1.0))


def dot_pairs(
    collection: VectorCollection,
    left_indices: Sequence[int],
    right_indices: Sequence[int],
    *,
    other: Optional[VectorCollection] = None,
) -> np.ndarray:
    """Dot products ``<collection[left_i], other[right_i]>`` for index pairs.

    ``other`` defaults to ``collection`` (self-join case).  This is the
    vectorised primitive the samplers use: it touches only the sampled
    rows, never the full ``n × n`` product.
    """
    other = collection if other is None else other
    left = np.asarray(left_indices, dtype=np.int64)
    right = np.asarray(right_indices, dtype=np.int64)
    if left.shape != right.shape:
        raise ValidationError("left and right index arrays must have the same length")
    if left.size == 0:
        return np.zeros(0, dtype=np.float64)
    rows_left = collection.matrix[left]
    rows_right = other.matrix[right]
    products = rows_left.multiply(rows_right).sum(axis=1)
    return np.asarray(products).ravel()


def cosine_pairs(
    collection: VectorCollection,
    left_indices: Sequence[int],
    right_indices: Sequence[int],
    *,
    other: Optional[VectorCollection] = None,
) -> np.ndarray:
    """Cosine similarities for many ``(left, right)`` index pairs at once.

    The workhorse of every sampling-based estimator: given ``m`` sampled
    pairs it returns an ``(m,)`` array of similarities in one sparse
    operation.
    """
    other = collection if other is None else other
    left = np.asarray(left_indices, dtype=np.int64)
    right = np.asarray(right_indices, dtype=np.int64)
    if left.shape != right.shape:
        raise ValidationError("left and right index arrays must have the same length")
    if left.size == 0:
        return np.zeros(0, dtype=np.float64)
    rows_left = collection.normalized_matrix[left]
    rows_right = other.normalized_matrix[right]
    products = rows_left.multiply(rows_right).sum(axis=1)
    return np.clip(np.asarray(products).ravel(), -1.0, 1.0)


def cosine_similarity_matrix(
    collection: VectorCollection,
    other: Optional[VectorCollection] = None,
    *,
    dense: bool = True,
) -> Union[np.ndarray, sparse.csr_matrix]:
    """Full cosine similarity matrix between two (small) collections.

    This is intended for tests and small examples; the exact-join module
    (:mod:`repro.join.exact`) provides the block-wise variant that scales
    to the benchmark collections without materialising ``n × n`` floats.
    """
    other = collection if other is None else other
    if other.dimension != collection.dimension:
        raise DimensionMismatchError(
            "collections must share a dimension to compute a similarity matrix"
        )
    product = collection.normalized_matrix @ other.normalized_matrix.T
    if dense:
        return np.clip(np.asarray(product.todense()), -1.0, 1.0)
    return product.tocsr()


def jaccard_similarity(a: Union[Set[int], Iterable[int]], b: Union[Set[int], Iterable[int]]) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` between two sets.

    Empty-vs-empty is defined as 0.0 (no join contribution), matching the
    convention of the SSJ literature.
    """
    set_a = set(a)
    set_b = set(b)
    if not set_a and not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    union = len(set_a | set_b)
    return intersection / union


def jaccard_pairs(
    collection: VectorCollection,
    left_indices: Sequence[int],
    right_indices: Sequence[int],
    *,
    other: Optional[VectorCollection] = None,
) -> np.ndarray:
    """Jaccard similarity of the *supports* of vector pairs.

    Vectors are treated as sets of their non-zero dimensions, which is the
    standard embedding used when applying set-similarity techniques to a
    binary vector collection.
    """
    other = collection if other is None else other
    left = np.asarray(left_indices, dtype=np.int64)
    right = np.asarray(right_indices, dtype=np.int64)
    if left.shape != right.shape:
        raise ValidationError("left and right index arrays must have the same length")
    result = np.zeros(left.size, dtype=np.float64)
    for position, (i, j) in enumerate(zip(left, right)):
        support_i = collection.row_support(int(i))
        support_j = other.row_support(int(j))
        result[position] = jaccard_similarity(support_i.tolist(), support_j.tolist())
    return result


def overlap_similarity(a: Union[Set[int], Iterable[int]], b: Union[Set[int], Iterable[int]]) -> float:
    """Overlap (intersection) size normalised by the smaller set.

    Used by the All-Pairs prefix-filter join when converting a cosine
    threshold into an overlap bound.
    """
    set_a = set(a)
    set_b = set(b)
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def cosine_to_angular_collision(similarity: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Map cosine similarity to the sign-random-projection collision probability.

    Charikar's hyperplane LSH has ``P[h(u) = h(v)] = 1 − θ(u, v) / π`` with
    ``θ = arccos(cos(u, v))``.  The analytical estimators (J_U, LSH-S) use
    this transform so that the idealised LSH property of Definition 3
    (``P = sim``) holds for the *transformed* similarity.
    """
    clipped = np.clip(similarity, -1.0, 1.0)
    collision = 1.0 - np.arccos(clipped) / np.pi
    if np.isscalar(similarity):
        return float(collision)
    return collision


def angular_collision_to_cosine(collision: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Inverse of :func:`cosine_to_angular_collision`."""
    clipped = np.clip(collision, 0.0, 1.0)
    cosine = np.cos((1.0 - clipped) * np.pi)
    if np.isscalar(collision):
        return float(cosine)
    return cosine


__all__ = [
    "cosine_similarity",
    "cosine_pairs",
    "dot_pairs",
    "cosine_similarity_matrix",
    "jaccard_similarity",
    "jaccard_pairs",
    "overlap_similarity",
    "cosine_to_angular_collision",
    "angular_collision_to_cosine",
]
