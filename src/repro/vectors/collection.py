"""The :class:`VectorCollection` container used by every other subsystem.

A collection is an immutable set of ``n`` sparse vectors over a common
``dimension``-dimensional space, stored as a ``scipy.sparse.csr_matrix``.
The class caches row norms and the L2-normalised matrix because cosine
similarity, the LSH signature computation, and the exact-join ground
truth all need them repeatedly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from repro.errors import DimensionMismatchError, EmptyCollectionError, ValidationError

ArrayLike = Union[np.ndarray, Sequence[Sequence[float]]]


class VectorCollection:
    """An immutable collection of sparse real-valued vectors.

    Parameters
    ----------
    matrix:
        A ``(n, dimension)`` sparse or dense matrix.  Rows are vectors.
    copy:
        When true (default) the input matrix is copied so later mutation
        of the caller's matrix cannot corrupt the collection.

    Notes
    -----
    The collection is conceptually immutable: none of the public methods
    mutates ``matrix`` after construction, and derived quantities (norms,
    normalised rows) are cached lazily.
    """

    def __init__(self, matrix: Union[sparse.spmatrix, ArrayLike], *, copy: bool = True) -> None:
        csr = self._coerce_matrix(matrix, copy=copy)
        if csr.shape[0] == 0:
            raise EmptyCollectionError("a VectorCollection must contain at least one vector")
        if csr.shape[1] == 0:
            raise ValidationError("vectors must have at least one dimension")
        if not np.all(np.isfinite(csr.data)):
            raise ValidationError("vector values must be finite (no NaN / inf)")
        self._matrix = csr
        self._norms: Optional[np.ndarray] = None
        self._normalized: Optional[sparse.csr_matrix] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_matrix(matrix: Union[sparse.spmatrix, ArrayLike], *, copy: bool) -> sparse.csr_matrix:
        if sparse.issparse(matrix):
            csr = matrix.tocsr(copy=copy)
        else:
            array = np.asarray(matrix, dtype=np.float64)
            if array.ndim != 2:
                raise ValidationError(
                    f"expected a 2-dimensional matrix of vectors, got ndim={array.ndim}"
                )
            csr = sparse.csr_matrix(array)
        csr = csr.astype(np.float64)
        csr.eliminate_zeros()
        csr.sort_indices()
        return csr

    @classmethod
    def from_dense(cls, array: ArrayLike) -> "VectorCollection":
        """Build a collection from a dense ``(n, d)`` array."""
        return cls(np.asarray(array, dtype=np.float64))

    @classmethod
    def from_sparse(cls, matrix: sparse.spmatrix, *, copy: bool = True) -> "VectorCollection":
        """Build a collection from any scipy sparse matrix."""
        return cls(matrix, copy=copy)

    @classmethod
    def from_dicts(
        cls,
        vectors: Sequence[Mapping[int, float]],
        *,
        dimension: Optional[int] = None,
    ) -> "VectorCollection":
        """Build a collection from ``{dimension_index: value}`` mappings.

        Parameters
        ----------
        vectors:
            One mapping per vector.  Keys are non-negative dimension
            indices, values are the (float) weights.
        dimension:
            Total dimensionality.  When omitted it is inferred as
            ``max(index) + 1`` across all vectors.
        """
        if not vectors:
            raise EmptyCollectionError("cannot build a collection from an empty sequence")
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        max_index = -1
        for row_id, mapping in enumerate(vectors):
            for index, value in mapping.items():
                index = int(index)
                if index < 0:
                    raise ValidationError(f"dimension indices must be >= 0, got {index}")
                max_index = max(max_index, index)
                rows.append(row_id)
                cols.append(index)
                data.append(float(value))
        inferred = max_index + 1 if max_index >= 0 else 1
        if dimension is None:
            dimension = inferred
        elif dimension < inferred:
            raise DimensionMismatchError(
                f"dimension={dimension} is smaller than the largest index + 1 ({inferred})"
            )
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(vectors), dimension), dtype=np.float64
        )
        return cls(matrix, copy=False)

    @classmethod
    def from_token_sets(
        cls,
        token_sets: Sequence[Iterable[int]],
        *,
        dimension: Optional[int] = None,
    ) -> "VectorCollection":
        """Build a binary collection from sets of integer token ids.

        Every vector gets value 1.0 at each listed dimension.  This is the
        representation used for the DBLP-like binary data set.
        """
        dicts = [{int(token): 1.0 for token in tokens} for tokens in token_sets]
        return cls.from_dicts(dicts, dimension=dimension)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> sparse.csr_matrix:
        """The underlying ``(n, dimension)`` CSR matrix (do not mutate)."""
        return self._matrix

    @property
    def size(self) -> int:
        """Number of vectors ``n`` in the collection."""
        return self._matrix.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of the vector space."""
        return self._matrix.shape[1]

    @property
    def total_pairs(self) -> int:
        """``M = n * (n - 1) / 2``, the number of unordered distinct pairs."""
        n = self.size
        return n * (n - 1) // 2

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"VectorCollection(n={self.size}, dimension={self.dimension}, "
            f"nnz={self._matrix.nnz})"
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def norms(self) -> np.ndarray:
        """Per-vector L2 norms, shape ``(n,)`` (cached)."""
        if self._norms is None:
            squared = np.asarray(self._matrix.multiply(self._matrix).sum(axis=1)).ravel()
            self._norms = np.sqrt(squared)
        return self._norms

    @property
    def normalized_matrix(self) -> sparse.csr_matrix:
        """Row-normalised CSR matrix (zero rows stay zero), cached."""
        if self._normalized is None:
            norms = self.norms.copy()
            norms[norms == 0.0] = 1.0
            inverse = sparse.diags(1.0 / norms)
            normalized = (inverse @ self._matrix).tocsr()
            normalized.sort_indices()
            self._normalized = normalized
        return self._normalized

    @property
    def nnz_per_row(self) -> np.ndarray:
        """Number of non-zero features per vector (vector "length")."""
        return np.diff(self._matrix.indptr)

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def row(self, index: int) -> sparse.csr_matrix:
        """Return vector ``index`` as a ``(1, dimension)`` CSR row."""
        self._check_index(index)
        return self._matrix.getrow(index)

    def row_dense(self, index: int) -> np.ndarray:
        """Return vector ``index`` as a dense 1-D array."""
        return np.asarray(self.row(index).todense()).ravel()

    def row_dict(self, index: int) -> Dict[int, float]:
        """Return vector ``index`` as a ``{dimension: value}`` dict."""
        row = self.row(index)
        return {int(i): float(v) for i, v in zip(row.indices, row.data)}

    def row_support(self, index: int) -> np.ndarray:
        """Return the non-zero dimension indices of vector ``index``."""
        self._check_index(index)
        start, stop = self._matrix.indptr[index], self._matrix.indptr[index + 1]
        return self._matrix.indices[start:stop].copy()

    def subset(self, indices: Sequence[int]) -> "VectorCollection":
        """Return a new collection restricted to ``indices`` (in order)."""
        index_array = np.asarray(indices, dtype=np.int64)
        if index_array.ndim != 1 or index_array.size == 0:
            raise ValidationError("subset requires a non-empty 1-D index sequence")
        if index_array.min() < 0 or index_array.max() >= self.size:
            raise ValidationError("subset indices out of range")
        return VectorCollection(self._matrix[index_array], copy=False)

    def concat(self, other: "VectorCollection") -> "VectorCollection":
        """Concatenate two collections over the same dimensionality."""
        if other.dimension != self.dimension:
            raise DimensionMismatchError(
                f"cannot concat collections with dimensions {self.dimension} and {other.dimension}"
            )
        stacked = sparse.vstack([self._matrix, other.matrix], format="csr")
        return VectorCollection(stacked, copy=False)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise ValidationError(f"vector index {index} out of range [0, {self.size})")


__all__ = ["VectorCollection"]
