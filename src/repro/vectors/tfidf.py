"""A small TF-IDF pipeline for building weighted vector collections.

The NYT and PUBMED data sets in the paper are TF-IDF-weighted word
vectors.  The synthetic analogues in :mod:`repro.datasets` generate token
documents and run them through this pipeline, so the weighting scheme the
estimators see matches the paper's setting (real-valued, highly sparse,
power-law dimension usage).

The pipeline is intentionally dependency-free: a regex tokeniser, an
explicit vocabulary and the standard ``tf * log((1 + n) / (1 + df)) + 1``
smooth-idf weighting with L2 normalisation optional.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.vectors.collection import VectorCollection

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9_]+")


class Tokenizer:
    """Lower-cases text and extracts word tokens.

    Parameters
    ----------
    lowercase:
        Whether to lower-case before matching (default true).
    min_token_length:
        Tokens shorter than this are dropped.
    """

    def __init__(self, *, lowercase: bool = True, min_token_length: int = 1) -> None:
        if min_token_length < 1:
            raise ValidationError("min_token_length must be >= 1")
        self.lowercase = lowercase
        self.min_token_length = min_token_length

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into tokens."""
        if self.lowercase:
            text = text.lower()
        return [
            token
            for token in _TOKEN_PATTERN.findall(text)
            if len(token) >= self.min_token_length
        ]

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)


@dataclass
class Vocabulary:
    """Bidirectional token ↔ integer-id mapping.

    The vocabulary is append-only; building it over a corpus and then
    transforming unseen documents simply drops out-of-vocabulary tokens.
    """

    token_to_id: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.token_to_id)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def add(self, token: str) -> int:
        """Return the id of ``token``, adding it if unseen."""
        if token not in self.token_to_id:
            self.token_to_id[token] = len(self.token_to_id)
        return self.token_to_id[token]

    def get(self, token: str) -> Optional[int]:
        """Return the id of ``token`` or ``None`` if out of vocabulary."""
        return self.token_to_id.get(token)

    def id_to_token(self) -> Dict[int, str]:
        """Return the inverse mapping (id → token)."""
        return {index: token for token, index in self.token_to_id.items()}

    @classmethod
    def from_documents(cls, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build a vocabulary covering every token in ``documents``."""
        vocabulary = cls()
        for document in documents:
            for token in document:
                vocabulary.add(token)
        return vocabulary


class TfidfVectorizer:
    """Fit/transform token documents into a TF-IDF :class:`VectorCollection`.

    Parameters
    ----------
    tokenizer:
        Used when documents are given as raw strings.  Token-list
        documents bypass it.
    use_idf:
        When false the output is raw term-frequency vectors.
    sublinear_tf:
        When true, term frequency ``tf`` is replaced by ``1 + log(tf)``.
    binary:
        When true, term frequencies are clamped to 1 (the DBLP-like binary
        representation).
    min_df:
        Tokens appearing in fewer than ``min_df`` documents are dropped.
    """

    def __init__(
        self,
        *,
        tokenizer: Optional[Tokenizer] = None,
        use_idf: bool = True,
        sublinear_tf: bool = False,
        binary: bool = False,
        min_df: int = 1,
    ) -> None:
        if min_df < 1:
            raise ValidationError("min_df must be >= 1")
        self.tokenizer = tokenizer or Tokenizer()
        self.use_idf = use_idf
        self.sublinear_tf = sublinear_tf
        self.binary = binary
        self.min_df = min_df
        self.vocabulary: Optional[Vocabulary] = None
        self.idf_: Optional[Dict[int, float]] = None
        self._document_count = 0

    # ------------------------------------------------------------------
    def _to_tokens(self, document: Union[str, Iterable[object]]) -> List[str]:
        if isinstance(document, str):
            return self.tokenizer.tokenize(document)
        return [str(token) for token in document]

    def fit(self, documents: Sequence) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        if not documents:
            raise ValidationError("fit requires at least one document")
        tokenized = [self._to_tokens(document) for document in documents]
        document_frequency: Counter = Counter()
        for tokens in tokenized:
            document_frequency.update(set(tokens))
        kept_tokens = sorted(
            token for token, frequency in document_frequency.items() if frequency >= self.min_df
        )
        vocabulary = Vocabulary()
        for token in kept_tokens:
            vocabulary.add(token)
        self.vocabulary = vocabulary
        self._document_count = len(tokenized)
        self.idf_ = {}
        for token in kept_tokens:
            token_id = vocabulary.get(token)
            assert token_id is not None
            frequency = document_frequency[token]
            self.idf_[token_id] = math.log((1 + self._document_count) / (1 + frequency)) + 1.0
        return self

    def transform(self, documents: Sequence) -> VectorCollection:
        """Transform ``documents`` into a :class:`VectorCollection`."""
        if self.vocabulary is None or self.idf_ is None:
            raise ValidationError("TfidfVectorizer must be fitted before transform")
        rows: List[Mapping[int, float]] = []
        for document in documents:
            tokens = self._to_tokens(document)
            counts: Counter = Counter()
            for token in tokens:
                token_id = self.vocabulary.get(token)
                if token_id is not None:
                    counts[token_id] += 1
            row: Dict[int, float] = {}
            for token_id, count in counts.items():
                tf = 1.0 if self.binary else float(count)
                if self.sublinear_tf and not self.binary:
                    tf = 1.0 + math.log(tf)
                weight = tf * self.idf_[token_id] if self.use_idf else tf
                row[token_id] = weight
            if not row:
                # Keep alignment between documents and rows; an all-zero row
                # is represented by a single zero-weight entry removed by CSR
                # construction, so give it an explicit epsilon on dimension 0.
                row[0] = 0.0
            rows.append(row)
        dimension = max(self.vocabulary.size, 1)
        collection = VectorCollection.from_dicts(rows, dimension=dimension)
        return collection

    def fit_transform(self, documents: Sequence) -> VectorCollection:
        """Equivalent to ``fit(documents)`` followed by ``transform(documents)``."""
        return self.fit(documents).transform(documents)


__all__ = ["Tokenizer", "Vocabulary", "TfidfVectorizer"]
