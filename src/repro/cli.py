"""Command-line interface for quick estimates and sweeps.

The CLI wraps the most common workflows so the library can be exercised
without writing code::

    python -m repro estimate --profile dblp --num-vectors 2000 --threshold 0.8
    python -m repro sweep    --profile nyt  --num-vectors 1500 --trials 5
    python -m repro probabilities --profile dblp --num-vectors 2000
    python -m repro stream --events updates.jsonl --threshold 0.8 --batch-size 50

Sub-commands
------------
``estimate``
    Build the chosen synthetic profile, index it, and print one estimate
    per requested estimator next to the exact join size.
``sweep``
    Run the full accuracy sweep (the Figure-2 methodology) over a
    threshold grid and print the error/variance table.
``probabilities``
    Print the Table-1 stratum probabilities for the chosen profile.
``stream``
    Replay a JSONL change log (see :mod:`repro.streaming.events` for the
    format) through a mutable index and print one incremental estimate
    after every batch of updates and at every checkpoint.
``shard``
    Replay the same JSONL format through a :class:`repro.shard.ShardRouter`
    over S bucket-key-partitioned shards, printing merged LSH-SS
    estimates (router → shards → merge) and the per-shard strata; the
    final cluster state can be checkpointed with ``--snapshot``.
``rebalance``
    Resize and/or re-partition a checkpointed cluster with minimal key
    movement (``repro.shard.rebalance``); without ``--output`` it is a
    dry run that only prints the migration plan.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core import (
    CrossSampling,
    LSHSEstimator,
    LSHSSEstimator,
    LatticeCountingEstimator,
    RandomPairSampling,
    SimilarityJoinSizeEstimator,
    UniformityEstimator,
)
from repro.datasets import make_dblp_like, make_nyt_like, make_pubmed_like
from repro.errors import ReproError, ValidationError
from repro.evaluation import ExperimentRunner, empirical_stratum_probabilities
from repro.evaluation.report import format_table, series_table
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex

_PROFILES = {
    "dblp": make_dblp_like,
    "nyt": make_nyt_like,
    "pubmed": make_pubmed_like,
}

_ESTIMATOR_CHOICES = ("lsh-ss", "lsh-ss-d", "lsh-s", "ju", "lc", "rs", "rs-cross")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity join size estimation using LSH (VLDB 2011 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--profile", choices=sorted(_PROFILES), default="dblp",
                         help="synthetic corpus profile (default: dblp)")
        sub.add_argument("--num-vectors", type=int, default=2000,
                         help="collection size n (default: 2000)")
        sub.add_argument("--num-hashes", type=int, default=20,
                         help="hash functions per LSH table, k (default: 20)")
        sub.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    estimate = subparsers.add_parser("estimate", help="one estimate per estimator at a threshold")
    add_common(estimate)
    estimate.add_argument("--threshold", type=float, required=True, help="similarity threshold τ")
    estimate.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=["lsh-ss", "rs"],
        help="estimators to run (default: lsh-ss rs)",
    )
    estimate.add_argument("--no-exact", action="store_true",
                          help="skip computing the exact join size")

    sweep = subparsers.add_parser("sweep", help="accuracy sweep over a threshold grid")
    add_common(sweep)
    sweep.add_argument("--thresholds", type=float, nargs="+",
                       default=[0.1, 0.3, 0.5, 0.7, 0.9])
    sweep.add_argument("--trials", type=int, default=5, help="trials per cell (default: 5)")
    sweep.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=["lsh-ss", "lsh-ss-d", "rs"],
    )

    probabilities = subparsers.add_parser(
        "probabilities", help="Table-1 stratum probabilities for a profile"
    )
    add_common(probabilities)
    probabilities.add_argument("--thresholds", type=float, nargs="+",
                               default=[0.1, 0.3, 0.5, 0.7, 0.9])

    stream = subparsers.add_parser(
        "stream", help="incremental estimates over a JSONL change log"
    )
    stream.add_argument("--events", required=True,
                        help="path to a JSONL change log (insert/delete/checkpoint events)")
    stream.add_argument("--threshold", type=float, default=0.8,
                        help="similarity threshold τ (default: 0.8)")
    stream.add_argument("--dimension", type=int, default=None,
                        help="vector dimensionality; inferred from the first dense "
                             "insert when omitted")
    stream.add_argument("--batch-size", type=int, default=100,
                        help="emit an estimate after this many insert/delete events "
                             "(default: 100); checkpoints always emit")
    stream.add_argument("--mode", choices=("auto", "exact", "reservoir"), default="auto",
                        help="estimation path: repaired reservoirs (auto/reservoir) "
                             "or fresh stratified sampling (exact)")
    stream.add_argument("--staleness-budget", type=float, default=0.25,
                        help="reservoir staleness fraction triggering partial "
                             "resampling (default: 0.25)")
    stream.add_argument("--num-hashes", type=int, default=20,
                        help="hash functions per LSH table, k (default: 20)")
    stream.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    shard = subparsers.add_parser(
        "shard", help="sharded incremental estimates over a JSONL change log"
    )
    shard.add_argument("--events", required=True,
                       help="path to a JSONL change log (insert/delete/checkpoint events)")
    shard.add_argument("--shards", type=int, default=4,
                       help="number of bucket-key-partitioned shards S (default: 4)")
    shard.add_argument("--threshold", type=float, default=0.8,
                       help="similarity threshold τ (default: 0.8)")
    shard.add_argument("--dimension", type=int, default=None,
                       help="vector dimensionality; inferred from the first dense "
                            "insert when omitted")
    shard.add_argument("--batch-size", type=int, default=100,
                       help="router ingest batch size; an estimate is emitted per "
                            "flushed batch (default: 100)")
    shard.add_argument("--mode", choices=("auto", "exact", "merged"), default="merged",
                       help="merge path: pooled per-shard reservoirs (auto/merged) "
                            "or merged-layout stratified sampling (exact, "
                            "bit-identical to the unsharded estimator)")
    shard.add_argument("--partitioner", choices=("modulo", "rendezvous"), default="modulo",
                       help="bucket-key → shard assignment; rendezvous enables "
                            "minimal-movement resizes via 'repro rebalance' "
                            "(default: modulo)")
    shard.add_argument("--workers", type=int, default=None,
                       help="ingest worker threads (default: one per shard)")
    shard.add_argument("--snapshot", default=None,
                       help="write the final cluster state to this file")
    shard.add_argument("--num-hashes", type=int, default=20,
                       help="hash functions per LSH table, k (default: 20)")
    shard.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    rebalance = subparsers.add_parser(
        "rebalance",
        help="resize / re-partition a checkpointed sharded cluster",
    )
    rebalance.add_argument("--snapshot", required=True,
                           help="cluster snapshot written by 'repro shard --snapshot'")
    rebalance.add_argument("--shards", type=int, default=None,
                           help="target shard count S' (default: keep the current S)")
    rebalance.add_argument("--partitioner", choices=("modulo", "rendezvous"), default=None,
                           help="target partitioner (default: keep the snapshot's; "
                                "rendezvous moves only ~1/S' of the keys on a resize)")
    rebalance.add_argument("--output", default=None,
                           help="write the rebalanced cluster snapshot here; omitted "
                                "= dry run, print the migration plan only")
    rebalance.add_argument("--threshold", type=float, default=None,
                           help="optionally print a merged exact-mode estimate at τ "
                                "before and after the rebalance")
    rebalance.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")
    return parser


def _build_collection(args: argparse.Namespace):
    factory = _PROFILES[args.profile]
    corpus = factory(num_vectors=args.num_vectors, random_state=args.seed)
    return corpus.collection


def _build_estimators(
    names: Sequence[str], collection, index: LSHIndex
) -> List[SimilarityJoinSizeEstimator]:
    table = index.primary_table
    registry: Dict[str, SimilarityJoinSizeEstimator] = {
        "lsh-ss": LSHSSEstimator(table),
        "lsh-ss-d": LSHSSEstimator(table, dampening="auto"),
        "lsh-s": LSHSEstimator(table),
        "ju": UniformityEstimator(table),
        "lc": LatticeCountingEstimator(table),
        "rs": RandomPairSampling(collection),
        "rs-cross": CrossSampling(collection),
    }
    missing = [name for name in names if name not in registry]
    if missing:
        raise ValidationError(f"unknown estimator name(s): {missing}")
    return [registry[name] for name in names]


def _command_estimate(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    estimators = _build_estimators(args.estimators, collection, index)
    rows = []
    for estimator in estimators:
        estimate = estimator.estimate(args.threshold, random_state=args.seed)
        rows.append([estimator.name, estimate.value])
    if not args.no_exact:
        from repro.join import exact_join_size

        rows.append(["exact join", float(exact_join_size(collection, args.threshold))])
    return format_table(
        ["method", f"estimated J(τ={args.threshold})"], rows, float_format="{:.1f}",
        title=f"{args.profile} profile, n={collection.size}, k={args.num_hashes}",
    )


def _command_sweep(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    estimators = _build_estimators(args.estimators, collection, index)
    runner = ExperimentRunner(
        collection,
        thresholds=args.thresholds,
        num_trials=args.trials,
        random_state=args.seed,
    )
    records = runner.run(estimators)
    return series_table(
        records,
        title=f"Accuracy sweep — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}, {args.trials} trials",
    )


def _command_probabilities(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    histogram = SimilarityHistogram(collection)
    rows = empirical_stratum_probabilities(
        index.primary_table, args.thresholds, histogram=histogram
    )
    return format_table(
        ["tau", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)", "J"],
        [
            [f"{row.threshold:.2f}", row.probability_true, row.probability_true_given_h,
             row.probability_h_given_true, row.probability_true_given_l, row.join_size]
            for row in rows
        ],
        title=f"Stratum probabilities — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}",
    )


def _command_stream(args: argparse.Namespace) -> str:
    from repro.streaming import ChangeLog, Checkpoint, Delete, Insert, MutableLSHIndex, StreamingEstimator

    if args.batch_size < 1:
        raise ValidationError(f"--batch-size must be >= 1, got {args.batch_size}")
    if not Path(args.events).is_file():
        raise ValidationError(f"event log not found: {args.events}")
    log = ChangeLog.from_jsonl(args.events)
    dimension = _infer_dimension(log, args.dimension)
    index = MutableLSHIndex(
        dimension, num_hashes=args.num_hashes, random_state=args.seed + 1
    )
    estimator = StreamingEstimator(
        index, staleness_budget=args.staleness_budget, random_state=args.seed + 2
    )
    rng_seed = args.seed

    rows = []
    inserts = deletes = pending = 0

    def emit_row(event_number: int, label: str) -> None:
        estimate = estimator.estimate(args.threshold, random_state=rng_seed + event_number, mode=args.mode)
        rows.append(
            [
                event_number,
                label,
                index.size,
                index.num_collision_pairs,
                index.num_non_collision_pairs,
                estimate.value,
            ]
        )

    for event_number, event in enumerate(log, 1):
        if isinstance(event, Insert):
            index.insert(event.vector)
            inserts += 1
            pending += 1
        elif isinstance(event, Delete):
            index.delete(event.vector_id)
            deletes += 1
            pending += 1
        elif isinstance(event, Checkpoint):
            emit_row(event_number, event.label or "checkpoint")
            pending = 0
        if pending >= args.batch_size:
            emit_row(event_number, f"batch of {pending}")
            pending = 0
    if pending:
        emit_row(len(log), f"final batch of {pending}")
    summary = (
        f"Streaming estimates — {args.events}: {inserts} inserts, {deletes} deletes, "
        f"τ={args.threshold}, k={args.num_hashes}, mode={args.mode}"
    )
    return format_table(
        ["event", "trigger", "n", "N_H", "N_L", f"estimate J(τ={args.threshold})"],
        rows,
        float_format="{:.1f}",
        title=summary,
    )


def _infer_dimension(log, explicit: Optional[int]) -> int:
    from repro.streaming import Insert

    if explicit is not None:
        return explicit
    for event in log:
        if isinstance(event, Insert) and not hasattr(event.vector, "items"):
            return len(event.vector)
    raise ValidationError(
        "--dimension is required when the log has no dense insert to infer it from"
    )


def _command_shard(args: argparse.Namespace) -> str:
    from repro.shard import ShardedMutableIndex, ShardedStreamingEstimator, ShardRouter
    from repro.streaming import ChangeLog, Checkpoint, Delete, Insert

    if args.batch_size < 1:
        raise ValidationError(f"--batch-size must be >= 1, got {args.batch_size}")
    if not Path(args.events).is_file():
        raise ValidationError(f"event log not found: {args.events}")
    log = ChangeLog.from_jsonl(args.events)
    dimension = _infer_dimension(log, args.dimension)
    index = ShardedMutableIndex(
        dimension,
        num_shards=args.shards,
        num_hashes=args.num_hashes,
        random_state=args.seed + 1,
        partitioner=args.partitioner,
        # the exact path never reads reservoirs: skip per-shard repair work
        shard_estimators=args.mode != "exact",
    )
    router = ShardRouter(index, batch_size=args.batch_size, max_workers=args.workers)
    # the router-aware estimator flushes buffered inserts before estimating
    estimator = ShardedStreamingEstimator(index, router=router)

    rows = []
    inserts = deletes = pending = 0

    def emit_row(event_number: int, label: str) -> None:
        estimate = estimator.estimate(
            args.threshold, random_state=args.seed + event_number, mode=args.mode
        )
        shard_sizes = "/".join(str(shard.size) for shard in index.shards)
        rows.append(
            [
                event_number,
                label,
                index.size,
                shard_sizes,
                index.num_collision_pairs,
                index.num_non_collision_pairs,
                estimate.value,
            ]
        )

    for event_number, event in enumerate(log, 1):
        if isinstance(event, Insert):
            router.insert(event.vector)
            inserts += 1
            pending += 1
        elif isinstance(event, Delete):
            router.delete(event.vector_id)
            deletes += 1
            pending += 1
        elif isinstance(event, Checkpoint):
            router.flush()
            emit_row(event_number, event.label or "checkpoint")
            pending = 0
        if pending >= args.batch_size:
            router.flush()
            emit_row(event_number, f"batch of {pending}")
            pending = 0
    router.close()
    if pending:
        emit_row(len(log), f"final batch of {pending}")
    if args.snapshot:
        index.snapshot(args.snapshot)
    summary = (
        f"Sharded streaming estimates — {args.events}: {inserts} inserts, "
        f"{deletes} deletes over {args.shards} shards "
        f"({args.partitioner} partitioner), τ={args.threshold}, "
        f"k={args.num_hashes}, mode={args.mode}"
        + (f"; snapshot → {args.snapshot}" if args.snapshot else "")
    )
    return format_table(
        ["event", "trigger", "n", "per-shard n", "N_H", "N_L",
         f"estimate J(τ={args.threshold})"],
        rows,
        float_format="{:.1f}",
        title=summary,
    )


def _command_rebalance(args: argparse.Namespace) -> str:
    from repro.shard import ShardedMutableIndex, ShardedStreamingEstimator
    from repro.shard.rebalance import plan_rebalance, rebalance_cluster

    if not Path(args.snapshot).is_file():
        raise ValidationError(f"cluster snapshot not found: {args.snapshot}")
    cluster = ShardedMutableIndex.restore(args.snapshot)
    current_shards = cluster.num_shards
    current_kind = cluster.partitioner.kind
    target_shards = current_shards if args.shards is None else args.shards
    target_kind = current_kind if args.partitioner is None else args.partitioner
    sizes_before = [shard.size for shard in cluster.shards]
    estimate_before = estimate_after = None
    if args.threshold is not None:
        estimate_before = ShardedStreamingEstimator(cluster).estimate(
            args.threshold, random_state=args.seed, mode="exact"
        )
    if args.output is None:
        # dry run: plan against the target assignment without touching state
        from repro.shard.partition import resolve_partitioner

        if target_shards > current_shards:
            cluster.add_shards(target_shards, estimator_seed=args.seed)
        plan = plan_rebalance(cluster, resolve_partitioner(target_kind, target_shards))
        applied = "dry run — no state was changed (pass --output to apply)"
        sizes_after = None
    else:
        plan = rebalance_cluster(
            cluster,
            num_shards=target_shards,
            partitioner=target_kind,
            estimator_seed=args.seed,
        )
        cluster.check_invariants()
        sizes_after = [shard.size for shard in cluster.shards]
        if args.threshold is not None:
            estimate_after = ShardedStreamingEstimator(cluster).estimate(
                args.threshold, random_state=args.seed, mode="exact"
            )
        cluster.snapshot(args.output)
        applied = f"rebalanced cluster written to {args.output}"
    rows = [
        ["shards", current_shards, target_shards],
        ["partitioner", current_kind, target_kind],
        ["bucket keys", plan.total_keys, plan.total_keys],
        ["keys moved", "", plan.moved_keys],
        ["moved fraction", "", f"{plan.moved_fraction:.4f}"],
        ["vectors moved", "", plan.moved_vectors if args.output else "(dry run)"],
    ]
    if sizes_after is not None:
        rows.append(["per-shard n", "/".join(map(str, sizes_before)),
                     "/".join(map(str, sizes_after))])
    if estimate_before is not None:
        after_value = estimate_after.value if estimate_after is not None else "(dry run)"
        rows.append([f"exact J(τ={args.threshold})", estimate_before.value, after_value])
    return format_table(
        ["", "before", "after"],
        rows,
        title=f"Rebalance — {args.snapshot}: {applied}",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "estimate":
            output = _command_estimate(args)
        elif args.command == "sweep":
            output = _command_sweep(args)
        elif args.command == "stream":
            output = _command_stream(args)
        elif args.command == "shard":
            output = _command_shard(args)
        elif args.command == "rebalance":
            output = _command_rebalance(args)
        else:
            output = _command_probabilities(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
