"""Command-line interface for quick estimates and sweeps.

The CLI wraps the most common workflows so the library can be exercised
without writing code::

    python -m repro estimate --profile dblp --num-vectors 2000 --threshold 0.8
    python -m repro estimate --config engine.json --threshold 0.8
    python -m repro sweep    --profile nyt  --num-vectors 1500 --trials 5
    python -m repro probabilities --profile dblp --num-vectors 2000
    python -m repro stream --events updates.jsonl --threshold 0.8 --batch-size 50

The serving commands (``estimate``, ``stream``, ``shard``,
``rebalance``) all construct a
:class:`~repro.engine.JoinEstimationEngine` — either from a declarative
``--config`` JSON file (an :class:`~repro.engine.EngineConfig`) or from
the legacy construction flags — so every deployment shape goes through
the same front door instead of four bespoke construction branches.

Sub-commands
------------
``estimate``
    Build the chosen synthetic profile, ingest it into an engine (any
    backend: static by default, or whatever ``--config`` declares), and
    print one estimate per requested estimator next to the exact join
    size.
``sweep``
    Run the full accuracy sweep (the Figure-2 methodology) over a
    threshold grid and print the error/variance table.
``probabilities``
    Print the Table-1 stratum probabilities for the chosen profile.
``stream``
    Replay a JSONL change log (see :mod:`repro.streaming.events` for the
    format) through a mutable engine backend and print one incremental
    estimate after every batch of updates and at every checkpoint.
``shard``
    Replay the same JSONL format through a sharded engine backend
    (router → shards → merge), printing merged LSH-SS estimates and the
    per-shard sizes; the final engine state can be checkpointed with
    ``--snapshot``.
``rebalance``
    Resize and/or re-partition a checkpointed engine (or raw cluster
    snapshot) with minimal key movement; without ``--output`` it is a
    dry run that only prints the migration plan.
``worker``
    Run one standalone shard worker of the multi-process cluster
    backend: listen on ``--listen host:port`` and serve coordinator
    sessions (a ``process``-backend engine with ``options.addresses``
    naming this endpoint).  ``repro shard --backend process`` runs the
    coordinator side with locally spawned workers.
``stats``
    Open an engine from ``--config`` (any backend), optionally drive
    some work through it (``--events`` replay for mutable backends, a
    synthetic profile ingest for ``static``, an estimate at
    ``--threshold``), and print the :mod:`repro.obs` stats surface:
    counters, latency histograms, and — for the ``process`` backend —
    per-worker rows gathered in one batched round trip.
``serve``
    Run the estimation daemon (:mod:`repro.serve`): listen on
    ``--listen host:port``, serve concurrent estimate requests while a
    single writer ingests, with copy-on-write epoch handoff, bounded
    queues, and graceful drain on SIGTERM/SIGINT.  Talk to it with
    :class:`repro.serve.ServeClient` (see
    ``examples/query_optimizer.py``).
``lint``
    Run reprolint (:mod:`repro.analysis`): the repo-specific static
    analysis enforcing the determinism, locking, and protocol contracts
    (seed discipline, lock-guard discipline, protocol op parity,
    exception chaining, the pickle boundary, ``__all__`` parity, broad
    excepts).  Exit code 0 means no un-pragma'd findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.datasets import make_dblp_like, make_nyt_like, make_pubmed_like
from repro.engine import EngineConfig, JoinEstimationEngine, StaticBackend
from repro.errors import ReproError, ValidationError
from repro.evaluation import ExperimentRunner, empirical_stratum_probabilities
from repro.evaluation.report import format_table, series_table
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex

_PROFILES = {
    "dblp": make_dblp_like,
    "nyt": make_nyt_like,
    "pubmed": make_pubmed_like,
}

# the static backend's registry is the single source of estimator flavors
_ESTIMATOR_CHOICES = StaticBackend.estimator_names()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity join size estimation using LSH (VLDB 2011 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--profile", choices=sorted(_PROFILES), default="dblp",
                         help="synthetic corpus profile (default: dblp)")
        sub.add_argument("--num-vectors", type=int, default=2000,
                         help="collection size n (default: 2000)")
        sub.add_argument("--num-hashes", type=int, default=20,
                         help="hash functions per LSH table, k (default: 20)")
        sub.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    def add_engine_config(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--config", default=None,
                         help="JSON EngineConfig file describing the engine "
                              "(backend kind + options); supersedes the "
                              "construction flags (--num-hashes, --seed, "
                              "backend-specific flags)")

    estimate = subparsers.add_parser("estimate", help="one estimate per estimator at a threshold")
    add_common(estimate)
    add_engine_config(estimate)
    estimate.add_argument("--threshold", type=float, required=True, help="similarity threshold τ")
    estimate.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=None,
        help="estimators to run (static backend only; default: lsh-ss rs)",
    )
    estimate.add_argument("--no-exact", action="store_true",
                          help="skip computing the exact join size")

    sweep = subparsers.add_parser("sweep", help="accuracy sweep over a threshold grid")
    add_common(sweep)
    sweep.add_argument("--thresholds", type=float, nargs="+",
                       default=[0.1, 0.3, 0.5, 0.7, 0.9])
    sweep.add_argument("--trials", type=int, default=5, help="trials per cell (default: 5)")
    sweep.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=["lsh-ss", "lsh-ss-d", "rs"],
    )

    probabilities = subparsers.add_parser(
        "probabilities", help="Table-1 stratum probabilities for a profile"
    )
    add_common(probabilities)
    probabilities.add_argument("--thresholds", type=float, nargs="+",
                               default=[0.1, 0.3, 0.5, 0.7, 0.9])

    stream = subparsers.add_parser(
        "stream", help="incremental estimates over a JSONL change log"
    )
    add_engine_config(stream)
    stream.add_argument("--events", required=True,
                        help="path to a JSONL change log (insert/delete/checkpoint events)")
    stream.add_argument("--threshold", type=float, default=0.8,
                        help="similarity threshold τ (default: 0.8)")
    stream.add_argument("--dimension", type=int, default=None,
                        help="vector dimensionality; inferred from the first dense "
                             "insert when omitted")
    stream.add_argument("--batch-size", type=int, default=100,
                        help="emit an estimate after this many insert/delete events "
                             "(default: 100); checkpoints always emit")
    stream.add_argument("--mode", choices=("auto", "exact", "reservoir"), default="auto",
                        help="estimation path: repaired reservoirs (auto/reservoir) "
                             "or fresh stratified sampling (exact)")
    stream.add_argument("--staleness-budget", type=float, default=0.25,
                        help="reservoir staleness fraction triggering partial "
                             "resampling (default: 0.25)")
    stream.add_argument("--num-hashes", type=int, default=20,
                        help="hash functions per LSH table, k (default: 20)")
    stream.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    shard = subparsers.add_parser(
        "shard", help="sharded incremental estimates over a JSONL change log"
    )
    add_engine_config(shard)
    shard.add_argument("--events", required=True,
                       help="path to a JSONL change log (insert/delete/checkpoint events)")
    shard.add_argument("--shards", type=int, default=4,
                       help="number of bucket-key-partitioned shards S (default: 4)")
    shard.add_argument("--threshold", type=float, default=0.8,
                       help="similarity threshold τ (default: 0.8)")
    shard.add_argument("--dimension", type=int, default=None,
                       help="vector dimensionality; inferred from the first dense "
                            "insert when omitted")
    shard.add_argument("--batch-size", type=int, default=100,
                       help="router ingest batch size; an estimate is emitted per "
                            "flushed batch (default: 100)")
    shard.add_argument("--mode", choices=("auto", "exact", "merged"), default="merged",
                       help="merge path: pooled per-shard reservoirs (auto/merged) "
                            "or merged-layout stratified sampling (exact, "
                            "bit-identical to the unsharded estimator)")
    shard.add_argument("--partitioner", choices=("modulo", "rendezvous"), default="modulo",
                       help="bucket-key → shard assignment; rendezvous enables "
                            "minimal-movement resizes via 'repro rebalance' "
                            "(default: modulo)")
    shard.add_argument("--backend", choices=("sharded", "process"), default="sharded",
                       help="in-process shards (default) or one worker process "
                            "per shard (the repro.cluster coordinator)")
    shard.add_argument("--workers", type=int, default=None,
                       help="ingest worker threads (default: one per shard for "
                            "the sharded backend; 0 for process — worker "
                            "processes already ingest in parallel)")
    shard.add_argument("--snapshot", default=None,
                       help="write the final engine state to this file")
    shard.add_argument("--num-hashes", type=int, default=20,
                       help="hash functions per LSH table, k (default: 20)")
    shard.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    rebalance = subparsers.add_parser(
        "rebalance",
        help="resize / re-partition a checkpointed sharded engine",
    )
    rebalance.add_argument("--snapshot", required=True,
                           help="engine snapshot written by 'repro shard --snapshot' "
                                "(raw cluster snapshots are also accepted)")
    rebalance.add_argument("--config", default=None,
                           help="JSON EngineConfig for restoring raw (pre-engine) "
                                "cluster snapshots; engine snapshots carry their own")
    rebalance.add_argument("--shards", type=int, default=None,
                           help="target shard count S' (default: keep the current S)")
    rebalance.add_argument("--partitioner", choices=("modulo", "rendezvous"), default=None,
                           help="target partitioner (default: keep the snapshot's; "
                                "rendezvous moves only ~1/S' of the keys on a resize)")
    rebalance.add_argument("--output", default=None,
                           help="write the rebalanced engine snapshot here; omitted "
                                "= dry run, print the migration plan only")
    rebalance.add_argument("--threshold", type=float, default=None,
                           help="optionally print a merged exact-mode estimate at τ "
                                "before and after the rebalance")
    rebalance.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    stats = subparsers.add_parser(
        "stats", help="observability snapshot of an engine (metrics + workers)"
    )
    stats.add_argument("--config", required=True,
                       help="JSON EngineConfig file describing the engine; any "
                            "backend (static/streaming/sharded/process)")
    stats.add_argument("--events", default=None,
                       help="JSONL change log to replay before collecting stats "
                            "(mutable backends only)")
    stats.add_argument("--threshold", type=float, default=None,
                       help="run one estimate at τ before collecting stats, so "
                            "the estimate-path instruments have samples")
    stats.add_argument("--dimension", type=int, default=None,
                       help="vector dimensionality when the config omits it and "
                            "there is no event log to infer it from")
    stats.add_argument("--batch-size", type=int, default=100,
                       help="replay batch size for --events (default: 100)")
    stats.add_argument("--profile", choices=sorted(_PROFILES), default="dblp",
                       help="synthetic corpus ingested for a 'static' engine "
                            "(default: dblp)")
    stats.add_argument("--num-vectors", type=int, default=500,
                       help="synthetic corpus size for a 'static' engine "
                            "(default: 500)")
    stats.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")
    stats.add_argument("--json", action="store_true",
                       help="dump the full stats dict as JSON instead of the "
                            "human-readable summary")

    serve = subparsers.add_parser(
        "serve",
        help="run the concurrent estimation daemon (repro.serve)",
    )
    serve.add_argument("--config", required=True,
                       help="JSON EngineConfig file describing the engine the "
                            "daemon wraps (any backend, including 'process')")
    serve.add_argument("--listen", default="127.0.0.1:0",
                       help="host:port to listen on; port 0 picks a free port "
                            "(printed in the readiness line; default: "
                            "127.0.0.1:0)")
    serve.add_argument("--token", default=None,
                       help="shared secret clients must present (recommended on "
                            "anything but localhost; the protocol is pickle — "
                            "trusted links only)")
    serve.add_argument("--dimension", type=int, default=None,
                       help="vector dimensionality when the config omits it")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="bound on queued-but-uncommitted write requests; a "
                            "full queue answers busy/retry-after (default: 256)")
    serve.add_argument("--max-estimates", type=int, default=16,
                       help="bound on in-flight estimate requests (default: 16)")
    serve.add_argument("--epoch-events", type=int, default=512,
                       help="soft cap on events batched into one epoch commit "
                            "(default: 512)")
    serve.add_argument("--grace-timeout", type=float, default=30.0,
                       help="writer-starvation bound: the longest the writer "
                            "waits for a reader to release a retired "
                            "generation (default: 30s)")

    worker = subparsers.add_parser(
        "worker",
        help="run one standalone shard worker for the 'process' cluster backend",
    )
    worker.add_argument("--listen", required=True,
                        help="host:port to listen on for coordinator sessions")
    worker.add_argument("--token", default=None,
                        help="shared secret a coordinator must present (recommended "
                             "on anything but localhost; the protocol is pickle — "
                             "trusted links only)")
    worker.add_argument("--once", action="store_true",
                        help="exit after the first coordinator session instead of "
                             "waiting for the next one")

    from repro.analysis import build_lint_parser

    lint = subparsers.add_parser(
        "lint",
        help="repo-specific static analysis (reprolint)",
        description="reprolint: enforce the determinism, locking, and "
                    "protocol contracts at parse time",
    )
    build_lint_parser(lint)

    from repro.analysis.lockdep import build_lockdep_report_parser

    lockdep_report = subparsers.add_parser(
        "lockdep-report",
        help="check an observed lock-order graph against the static model",
        description="lockdep: verify the graph observed by a "
                    "REPRO_LOCKDEP=1 test run is acyclic and a subgraph "
                    "of the static acquisition model",
    )
    build_lockdep_report_parser(lockdep_report)

    from repro.analysis.schema import build_schema_report_parser

    schema_report = subparsers.add_parser(
        "schema-report",
        help="check observed snapshot key-sets against the static schema "
             "model and emit the schema inventory",
        description="schema: verify the key-sets observed by a "
                    "REPRO_SCHEMA=1 test run are a subset of the static "
                    "snapshot-schema model, and write the versioned "
                    "schema-inventory JSON",
    )
    build_schema_report_parser(schema_report)
    return parser


# ----------------------------------------------------------------------
# engine construction (shared by estimate / stream / shard / rebalance)
# ----------------------------------------------------------------------
def _engine_config(
    args: argparse.Namespace,
    default_backend: str,
    *,
    dimension: Optional[int] = None,
    options: Optional[dict] = None,
) -> EngineConfig:
    """One EngineConfig for any serving command: ``--config`` file or flags."""
    if getattr(args, "config", None):
        config = EngineConfig.from_file(args.config)
        if config.dimension is None and dimension is not None:
            config = config.replace(dimension=dimension)
        return config
    return EngineConfig(
        backend=default_backend,
        num_hashes=args.num_hashes,
        seed=args.seed,
        dimension=dimension,
        options=options or {},
    )


def _build_collection(args: argparse.Namespace):
    factory = _PROFILES[args.profile]
    corpus = factory(num_vectors=args.num_vectors, random_state=args.seed)
    return corpus.collection


def _require_mutable(config: EngineConfig, command: str) -> None:
    if config.backend == "static":
        raise ValidationError(
            f"'repro {command}' replays mutations; the 'static' backend is "
            "immutable — use a 'streaming' or 'sharded' engine config"
        )


def _command_estimate(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    config = _engine_config(args, "static", dimension=collection.dimension)
    if config.backend != "static" and args.estimators is not None:
        raise ValidationError(
            f"--estimators selects flavors of the 'static' backend; the "
            f"{config.backend!r} backend serves a single estimator"
        )
    rows: List[List[object]] = []
    with JoinEstimationEngine(config) as engine:
        engine.ingest(collection)
        if config.backend == "static":
            # the static backend serves every estimator flavor of the paper;
            # with no explicit list, a config-declared default flavor wins
            # over the CLI's lsh-ss/rs pair (None = backend's own default)
            names = args.estimators
            if names is None:
                names = [None] if "estimator" in config.options else ["lsh-ss", "rs"]
            for name in names:
                result = engine.estimate(args.threshold, seed=args.seed, estimator=name)
                rows.append([result.estimator, result.value])
        else:
            result = engine.estimate(args.threshold, seed=args.seed)
            rows.append([result.estimator, result.value])
    if not args.no_exact:
        from repro.join import exact_join_size

        rows.append(["exact join", float(exact_join_size(collection, args.threshold))])
    return format_table(
        ["method", f"estimated J(τ={args.threshold})"], rows, float_format="{:.1f}",
        title=f"{args.profile} profile, n={collection.size}, k={config.num_hashes}, "
        f"backend={config.backend}",
    )


def _command_sweep(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    estimators = [
        StaticBackend.build_estimator(name, index.primary_table, collection)
        for name in args.estimators
    ]
    runner = ExperimentRunner(
        collection,
        thresholds=args.thresholds,
        num_trials=args.trials,
        random_state=args.seed,
    )
    records = runner.run(estimators)
    return series_table(
        records,
        title=f"Accuracy sweep — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}, {args.trials} trials",
    )


def _command_probabilities(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    histogram = SimilarityHistogram(collection)
    rows = empirical_stratum_probabilities(
        index.primary_table, args.thresholds, histogram=histogram
    )
    return format_table(
        ["tau", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)", "J"],
        [
            [f"{row.threshold:.2f}", row.probability_true, row.probability_true_given_h,
             row.probability_h_given_true, row.probability_true_given_l, row.join_size]
            for row in rows
        ],
        title=f"Stratum probabilities — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}",
    )


def _load_event_log(args: argparse.Namespace):
    from repro.streaming import ChangeLog

    if args.batch_size < 1:
        raise ValidationError(f"--batch-size must be >= 1, got {args.batch_size}")
    if not Path(args.events).is_file():
        raise ValidationError(f"event log not found: {args.events}")
    return ChangeLog.from_jsonl(args.events)


def _replay_log(engine: JoinEstimationEngine, log, batch_size: int, emit_row):
    """Drive a change log through an engine for the replay commands.

    Shared by ``stream`` and ``shard`` so checkpoint/batch semantics
    cannot diverge: checkpoints flush buffered writes and always emit
    (labelled), batches emit every ``batch_size`` mutations, and a final
    partial batch emits once at the end.  ``emit_row(event_number,
    label)`` renders one report row.  Returns ``(inserts, deletes)``.
    """
    from repro.streaming import Checkpoint, Delete, Insert

    inserts = deletes = pending = 0
    for event_number, event in enumerate(log, 1):
        if isinstance(event, Checkpoint):
            engine.flush()
            emit_row(event_number, event.label or "checkpoint")
            pending = 0
            continue
        engine.ingest(event)
        if isinstance(event, Insert):
            inserts += 1
        elif isinstance(event, Delete):
            deletes += 1
        pending += 1
        if pending >= batch_size:
            engine.flush()
            emit_row(event_number, f"batch of {pending}")
            pending = 0
    if pending:
        emit_row(len(log), f"final batch of {pending}")
    return inserts, deletes


def _command_stream(args: argparse.Namespace) -> str:
    log = _load_event_log(args)
    dimension = _infer_dimension(log, args.dimension)
    config = _engine_config(
        args, "streaming",
        dimension=dimension,
        options={"staleness_budget": args.staleness_budget},
    )
    _require_mutable(config, "stream")

    rows = []
    with JoinEstimationEngine(config) as engine:

        def emit_row(event_number: int, label: str) -> None:
            result = engine.estimate(
                args.threshold, seed=args.seed + event_number, mode=args.mode
            )
            stats = result.provenance.backend_details
            rows.append(
                [
                    event_number,
                    label,
                    stats["size"],
                    stats["num_collision_pairs"],
                    stats["num_non_collision_pairs"],
                    result.value,
                ]
            )

        inserts, deletes = _replay_log(engine, log, args.batch_size, emit_row)
    summary = (
        f"Streaming estimates — {args.events}: {inserts} inserts, {deletes} deletes, "
        f"τ={args.threshold}, k={config.num_hashes}, mode={args.mode}, "
        f"backend={config.backend}"
    )
    return format_table(
        ["event", "trigger", "n", "N_H", "N_L", f"estimate J(τ={args.threshold})"],
        rows,
        float_format="{:.1f}",
        title=summary,
    )


def _infer_dimension(log, explicit: Optional[int]) -> int:
    from repro.streaming import Insert

    if explicit is not None:
        return explicit
    for event in log:
        if isinstance(event, Insert) and not hasattr(event.vector, "items"):
            return len(event.vector)
    raise ValidationError(
        "--dimension is required when the log has no dense insert to infer it from"
    )


def _command_shard(args: argparse.Namespace) -> str:
    log = _load_event_log(args)
    dimension = _infer_dimension(log, args.dimension)
    config = _engine_config(
        args, args.backend,
        dimension=dimension,
        options={
            "num_shards": args.shards,
            "partitioner": args.partitioner,
            "batch_size": args.batch_size,
            "workers": args.workers,
            # the exact path never reads reservoirs: skip per-shard repair work
            "shard_estimators": args.mode != "exact",
        },
    )
    if config.backend not in ("sharded", "process"):
        raise ValidationError(
            f"'repro shard' needs a 'sharded' or 'process' engine config, "
            f"got {config.backend!r}"
        )

    rows = []
    with JoinEstimationEngine(config) as engine:

        def emit_row(event_number: int, label: str) -> None:
            result = engine.estimate(
                args.threshold, seed=args.seed + event_number, mode=args.mode
            )
            stats = result.provenance.backend_details
            rows.append(
                [
                    event_number,
                    label,
                    stats["size"],
                    "/".join(str(n) for n in stats["shard_sizes"]),
                    stats["num_collision_pairs"],
                    stats["num_non_collision_pairs"],
                    result.value,
                ]
            )

        inserts, deletes = _replay_log(engine, log, args.batch_size, emit_row)
        if args.snapshot:
            engine.snapshot(args.snapshot)
        num_shards = engine.backend.index.num_shards
        partitioner_kind = engine.backend.index.partitioner.kind
        worker_lines: List[str] = []
        if config.backend == "process":
            # one batched stats round trip: per-worker ingest seconds as
            # reported by the reply envelope, plus the coordinator-side
            # time spent blocked on worker replies
            cluster_stats = engine.backend.index.stats()
            worker_lines.append("worker timings (coordinator-observed):")
            for row in cluster_stats["workers"]:
                worker_lines.append(
                    f"  shard {row['shard_id']}: pid={row['pid']} "
                    f"size={row.get('size', '?')} "
                    f"ingest={row['worker_ingest_seconds']:.4f}s "
                    f"blocked={row['blocked_seconds']:.4f}s"
                )
    summary = (
        f"Sharded streaming estimates — {args.events}: {inserts} inserts, "
        f"{deletes} deletes over {num_shards} shards "
        f"({partitioner_kind} partitioner), τ={args.threshold}, "
        f"k={config.num_hashes}, mode={args.mode}"
        + (f"; snapshot → {args.snapshot}" if args.snapshot else "")
    )
    table = format_table(
        ["event", "trigger", "n", "per-shard n", "N_H", "N_L",
         f"estimate J(τ={args.threshold})"],
        rows,
        float_format="{:.1f}",
        title=summary,
    )
    if worker_lines:
        table += "\n" + "\n".join(worker_lines)
    return table


def _command_rebalance(args: argparse.Namespace) -> str:
    engine = JoinEstimationEngine.restore(args.snapshot, config=args.config)
    if engine.config.backend not in ("sharded", "process"):
        raise ValidationError(
            f"'repro rebalance' needs a sharded or process engine, "
            f"got {engine.config.backend!r}"
        )
    cluster = engine.backend.index
    current_shards = cluster.num_shards
    current_kind = cluster.partitioner.kind
    target_shards = current_shards if args.shards is None else args.shards
    target_kind = current_kind if args.partitioner is None else args.partitioner
    sizes_before = [shard.size for shard in cluster.shards]
    estimate_before = estimate_after = None
    if args.threshold is not None:
        estimate_before = engine.estimate(args.threshold, seed=args.seed, mode="exact")
    if args.output is None:
        # dry run: plan against the target assignment without migrating
        plan = engine.rebalance(
            num_shards=target_shards, partitioner=target_kind, dry_run=True
        )
        applied = "dry run — no state was changed (pass --output to apply)"
        sizes_after = None
    else:
        plan = engine.rebalance(num_shards=target_shards, partitioner=target_kind)
        cluster = engine.backend.index
        cluster.check_invariants()
        sizes_after = [shard.size for shard in cluster.shards]
        if args.threshold is not None:
            estimate_after = engine.estimate(args.threshold, seed=args.seed, mode="exact")
        engine.snapshot(args.output)
        applied = f"rebalanced engine written to {args.output}"
    engine.close()
    rows = [
        ["shards", current_shards, target_shards],
        ["partitioner", current_kind, target_kind],
        ["bucket keys", plan.total_keys, plan.total_keys],
        ["keys moved", "", plan.moved_keys],
        ["moved fraction", "", f"{plan.moved_fraction:.4f}"],
        ["vectors moved", "", plan.moved_vectors if args.output else "(dry run)"],
    ]
    if sizes_after is not None:
        rows.append(["per-shard n", "/".join(map(str, sizes_before)),
                     "/".join(map(str, sizes_after))])
    if estimate_before is not None:
        after_value = estimate_after.value if estimate_after is not None else "(dry run)"
        rows.append([f"exact J(τ={args.threshold})", estimate_before.value, after_value])
    return format_table(
        ["", "before", "after"],
        rows,
        title=f"Rebalance — {args.snapshot}: {applied}",
    )


def _render_metrics(metrics: dict) -> List[str]:
    """Human-readable lines for one ``MetricsSnapshot.to_dict()`` payload."""
    from repro.obs import format_metric_name, histogram_quantile

    def sort_key(entry):
        return (entry["name"], sorted(entry.get("labels", {}).items()))

    lines: List[str] = []
    for entry in sorted(metrics.get("counters", []), key=sort_key):
        name = format_metric_name(entry["name"], entry.get("labels", {}))
        lines.append(f"  {name} = {entry['value']:g}")
    for entry in sorted(metrics.get("gauges", []), key=sort_key):
        name = format_metric_name(entry["name"], entry.get("labels", {}))
        lines.append(f"  {name} = {entry['value']:g}")
    for entry in sorted(metrics.get("histograms", []), key=sort_key):
        name = format_metric_name(entry["name"], entry.get("labels", {}))
        if entry["count"]:
            bounds = tuple(entry["buckets"])
            mean = entry["sum"] / entry["count"]
            p50 = histogram_quantile(bounds, entry["counts"], 0.5)
            p99 = histogram_quantile(bounds, entry["counts"], 0.99)
            lines.append(
                f"  {name}: count={entry['count']} mean={mean * 1e3:.3f}ms "
                f"p50<={p50 * 1e3:.3f}ms p99<={p99 * 1e3:.3f}ms"
            )
        else:
            lines.append(f"  {name}: count=0")
    return lines


def _command_stats(args: argparse.Namespace) -> str:
    import json

    config = EngineConfig.from_file(args.config)
    log = collection = None
    if args.events:
        _require_mutable(config, "stats --events")
        log = _load_event_log(args)
        if config.dimension is None:
            config = config.replace(dimension=_infer_dimension(log, args.dimension))
    elif config.backend == "static":
        collection = _build_collection(args)
        if config.dimension is None:
            config = config.replace(dimension=collection.dimension)
    elif config.dimension is None and args.dimension is not None:
        config = config.replace(dimension=args.dimension)

    with JoinEstimationEngine(config) as engine:
        if log is not None:
            _replay_log(engine, log, args.batch_size, lambda _number, _label: None)
            engine.flush()
        elif collection is not None:
            engine.ingest(collection)
        if args.threshold is not None:
            engine.estimate(args.threshold, seed=args.seed)
        stats = engine.stats()
    if args.json:
        return json.dumps(stats, indent=2, sort_keys=True, default=str)

    lines = [f"Engine stats — {args.config}", f"backend: {stats['backend']}"]
    workers = stats.get("workers")
    if workers:
        lines.append("workers:")
        for row in workers:
            lines.append(
                f"  shard {row['shard_id']}: pid={row['pid']} "
                f"alive={row['alive']} size={row.get('size', '?')} "
                f"ingest={row['worker_ingest_seconds']:.4f}s "
                f"blocked={row['blocked_seconds']:.4f}s"
            )
    lines.append("metrics:")
    metric_lines = _render_metrics(stats.get("metrics", {}))
    lines.extend(metric_lines or ["  (no samples recorded)"])
    return "\n".join(lines)


def _command_serve(args: argparse.Namespace) -> str:
    import os
    import signal
    import threading

    from repro.serve import EstimationServer

    config = EngineConfig.from_file(args.config)
    if config.dimension is None and args.dimension is not None:
        config = config.replace(dimension=args.dimension)
    server = EstimationServer(
        config,
        listen=args.listen,
        token=args.token,
        queue_depth=args.queue_depth,
        max_estimates=args.max_estimates,
        epoch_events=args.epoch_events,
        grace_timeout=args.grace_timeout,
    ).start()
    stop = threading.Event()

    def handle_signal(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    host, port = server.address
    # parseable readiness line: clients / CI scripts wait for it
    print(f"serving on {host}:{port} pid={os.getpid()} "
          f"backend={config.backend}", flush=True)
    stop.wait()
    print("draining…", flush=True)
    server.shutdown()  # StrandedWritesError (exit 2) if a commit failed
    return (
        f"drained cleanly at epoch {server.epoch}: no stranded writes "
        "(every acknowledged write was committed)"
    )


def _command_worker(args: argparse.Namespace) -> str:
    from repro.cluster import parse_address, serve

    def on_ready(bound) -> None:
        # parseable readiness line: coordinators / scripts wait for it
        print(f"worker listening on {bound[0]}:{bound[1]}", flush=True)

    serve(parse_address(args.listen), token=args.token, once=args.once, on_ready=on_ready)
    return "worker: session ended"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        # lint owns its exit-code semantics (1 = findings, 2 = usage)
        from repro.analysis import run_lint_from_args

        return run_lint_from_args(args)
    if args.command == "lockdep-report":
        # same contract: 1 = cycle/unexplained edge, 2 = unreadable graph
        from repro.analysis.lockdep import run_lockdep_report_from_args

        return run_lockdep_report_from_args(args)
    if args.command == "schema-report":
        # same contract: 1 = unexplained key, 2 = unreadable observed file
        from repro.analysis.schema import run_schema_report_from_args

        return run_schema_report_from_args(args)
    try:
        if args.command == "estimate":
            output = _command_estimate(args)
        elif args.command == "sweep":
            output = _command_sweep(args)
        elif args.command == "stream":
            output = _command_stream(args)
        elif args.command == "shard":
            output = _command_shard(args)
        elif args.command == "rebalance":
            output = _command_rebalance(args)
        elif args.command == "serve":
            output = _command_serve(args)
        elif args.command == "worker":
            output = _command_worker(args)
        elif args.command == "stats":
            output = _command_stats(args)
        else:
            output = _command_probabilities(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
