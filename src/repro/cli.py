"""Command-line interface for quick estimates and sweeps.

The CLI wraps the most common workflows so the library can be exercised
without writing code::

    python -m repro estimate --profile dblp --num-vectors 2000 --threshold 0.8
    python -m repro sweep    --profile nyt  --num-vectors 1500 --trials 5
    python -m repro probabilities --profile dblp --num-vectors 2000

Sub-commands
------------
``estimate``
    Build the chosen synthetic profile, index it, and print one estimate
    per requested estimator next to the exact join size.
``sweep``
    Run the full accuracy sweep (the Figure-2 methodology) over a
    threshold grid and print the error/variance table.
``probabilities``
    Print the Table-1 stratum probabilities for the chosen profile.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.core import (
    CrossSampling,
    LSHSEstimator,
    LSHSSEstimator,
    LatticeCountingEstimator,
    RandomPairSampling,
    SimilarityJoinSizeEstimator,
    UniformityEstimator,
)
from repro.datasets import make_dblp_like, make_nyt_like, make_pubmed_like
from repro.errors import ValidationError
from repro.evaluation import ExperimentRunner, empirical_stratum_probabilities
from repro.evaluation.report import format_table, series_table
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex

_PROFILES = {
    "dblp": make_dblp_like,
    "nyt": make_nyt_like,
    "pubmed": make_pubmed_like,
}

_ESTIMATOR_CHOICES = ("lsh-ss", "lsh-ss-d", "lsh-s", "ju", "lc", "rs", "rs-cross")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity join size estimation using LSH (VLDB 2011 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--profile", choices=sorted(_PROFILES), default="dblp",
                         help="synthetic corpus profile (default: dblp)")
        sub.add_argument("--num-vectors", type=int, default=2000,
                         help="collection size n (default: 2000)")
        sub.add_argument("--num-hashes", type=int, default=20,
                         help="hash functions per LSH table, k (default: 20)")
        sub.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")

    estimate = subparsers.add_parser("estimate", help="one estimate per estimator at a threshold")
    add_common(estimate)
    estimate.add_argument("--threshold", type=float, required=True, help="similarity threshold τ")
    estimate.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=["lsh-ss", "rs"],
        help="estimators to run (default: lsh-ss rs)",
    )
    estimate.add_argument("--no-exact", action="store_true",
                          help="skip computing the exact join size")

    sweep = subparsers.add_parser("sweep", help="accuracy sweep over a threshold grid")
    add_common(sweep)
    sweep.add_argument("--thresholds", type=float, nargs="+",
                       default=[0.1, 0.3, 0.5, 0.7, 0.9])
    sweep.add_argument("--trials", type=int, default=5, help="trials per cell (default: 5)")
    sweep.add_argument(
        "--estimators",
        nargs="+",
        choices=_ESTIMATOR_CHOICES,
        default=["lsh-ss", "lsh-ss-d", "rs"],
    )

    probabilities = subparsers.add_parser(
        "probabilities", help="Table-1 stratum probabilities for a profile"
    )
    add_common(probabilities)
    probabilities.add_argument("--thresholds", type=float, nargs="+",
                               default=[0.1, 0.3, 0.5, 0.7, 0.9])
    return parser


def _build_collection(args: argparse.Namespace):
    factory = _PROFILES[args.profile]
    corpus = factory(num_vectors=args.num_vectors, random_state=args.seed)
    return corpus.collection


def _build_estimators(
    names: Sequence[str], collection, index: LSHIndex
) -> List[SimilarityJoinSizeEstimator]:
    table = index.primary_table
    registry: Dict[str, SimilarityJoinSizeEstimator] = {
        "lsh-ss": LSHSSEstimator(table),
        "lsh-ss-d": LSHSSEstimator(table, dampening="auto"),
        "lsh-s": LSHSEstimator(table),
        "ju": UniformityEstimator(table),
        "lc": LatticeCountingEstimator(table),
        "rs": RandomPairSampling(collection),
        "rs-cross": CrossSampling(collection),
    }
    missing = [name for name in names if name not in registry]
    if missing:
        raise ValidationError(f"unknown estimator name(s): {missing}")
    return [registry[name] for name in names]


def _command_estimate(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    estimators = _build_estimators(args.estimators, collection, index)
    rows = []
    for estimator in estimators:
        estimate = estimator.estimate(args.threshold, random_state=args.seed)
        rows.append([estimator.name, estimate.value])
    if not args.no_exact:
        from repro.join import exact_join_size

        rows.append(["exact join", float(exact_join_size(collection, args.threshold))])
    return format_table(
        ["method", f"estimated J(τ={args.threshold})"], rows, float_format="{:.1f}",
        title=f"{args.profile} profile, n={collection.size}, k={args.num_hashes}",
    )


def _command_sweep(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    estimators = _build_estimators(args.estimators, collection, index)
    runner = ExperimentRunner(
        collection,
        thresholds=args.thresholds,
        num_trials=args.trials,
        random_state=args.seed,
    )
    records = runner.run(estimators)
    return series_table(
        records,
        title=f"Accuracy sweep — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}, {args.trials} trials",
    )


def _command_probabilities(args: argparse.Namespace) -> str:
    collection = _build_collection(args)
    index = LSHIndex(collection, num_hashes=args.num_hashes, random_state=args.seed + 1)
    histogram = SimilarityHistogram(collection)
    rows = empirical_stratum_probabilities(
        index.primary_table, args.thresholds, histogram=histogram
    )
    return format_table(
        ["tau", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)", "J"],
        [
            [f"{row.threshold:.2f}", row.probability_true, row.probability_true_given_h,
             row.probability_h_given_true, row.probability_true_given_l, row.join_size]
            for row in rows
        ],
        title=f"Stratum probabilities — {args.profile} profile, n={collection.size}, "
        f"k={args.num_hashes}",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "estimate":
            output = _command_estimate(args)
        elif args.command == "sweep":
            output = _command_sweep(args)
        else:
            output = _command_probabilities(args)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
