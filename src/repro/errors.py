"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single type when they want to distinguish library
failures from programming errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """Raised when an argument fails validation (bad shape, range, type)."""


class EmptyCollectionError(ValidationError):
    """Raised when an operation requires a non-empty vector collection."""


class DimensionMismatchError(ValidationError):
    """Raised when two vectors or collections have incompatible dimensions."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce a meaningful estimate."""


class InsufficientSampleError(EstimationError):
    """Raised when a sampling procedure cannot draw the requested sample.

    For example, sampling a pair from stratum H when every LSH bucket
    contains a single vector, or cross-sampling more vectors than exist in
    the collection without replacement.
    """


class IndexNotBuiltError(ReproError):
    """Raised when an LSH-backed estimator is used before its index exists."""


class UnsupportedOperationError(ReproError):
    """Raised when an engine backend is asked for an operation it cannot do.

    For example, deleting from the immutable ``static`` backend, or
    rebalancing anything but the ``sharded`` backend.  Distinct from
    :class:`ValidationError` so callers can branch on "wrong deployment
    shape" separately from "malformed argument".
    """
