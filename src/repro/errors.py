"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single type when they want to distinguish library
failures from programming errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """Raised when an argument fails validation (bad shape, range, type)."""


class EmptyCollectionError(ValidationError):
    """Raised when an operation requires a non-empty vector collection."""


class DimensionMismatchError(ValidationError):
    """Raised when two vectors or collections have incompatible dimensions."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce a meaningful estimate."""


class InsufficientSampleError(EstimationError):
    """Raised when a sampling procedure cannot draw the requested sample.

    For example, sampling a pair from stratum H when every LSH bucket
    contains a single vector, or cross-sampling more vectors than exist in
    the collection without replacement.
    """


class IndexNotBuiltError(ReproError):
    """Raised when an LSH-backed estimator is used before its index exists."""


class UnsupportedOperationError(ReproError):
    """Raised when an engine backend is asked for an operation it cannot do.

    For example, deleting from the immutable ``static`` backend, or
    rebalancing anything but the ``sharded`` backend.  Distinct from
    :class:`ValidationError` so callers can branch on "wrong deployment
    shape" separately from "malformed argument".
    """


class StrandedWritesError(ReproError):
    """Raised when closing a writer would silently discard buffered writes.

    :meth:`repro.shard.router.ShardRouter.close` raises this after a
    partial batch-commit failure: the buffered inserts can be neither
    retried (some shard slices may already be applied) nor dropped
    without telling the caller.  The unapplied rows are attached as
    :attr:`pending_rows` (1×d CSR rows in arrival order) so callers can
    re-route them to a fresh cluster.
    """

    def __init__(self, message: str, pending_rows=()):
        super().__init__(message)
        #: buffered insert rows (1×d CSR) that were never applied
        self.pending_rows = list(pending_rows)


class ServeError(ReproError):
    """Raised for failures of the estimation server (repro.serve).

    Covers a server left unusable by an earlier commit failure, writer
    breakdown, and lifecycle misuse (requests after shutdown began).
    """


class ServerBusyError(ServeError):
    """Raised when the server rejects a request under backpressure.

    The server bounds its write queue and its in-flight estimate pool;
    rather than buffering without limit it answers ``busy`` with a
    retry hint.  The client raises this once its retry budget is
    exhausted, with the server's most recent hint in
    :attr:`retry_after` (seconds).
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        #: server-suggested delay in seconds before retrying
        self.retry_after = float(retry_after)


class ClusterError(ReproError):
    """Raised for failures of the multi-process cluster (repro.cluster).

    Covers coordinator/worker protocol violations, configuration
    problems, and a cluster left unusable by an earlier failure.
    """


class WorkerCrashError(ClusterError):
    """Raised when a shard worker process died or stopped responding.

    The coordinator raises this instead of hanging when a request cannot
    be completed because the worker's transport broke (process crash,
    connection reset) or timed out.
    """
