"""The reprolint engine: modules, pragmas, rule running, reporting.

The engine is deliberately small and dependency-free: it parses every
``.py`` file under the given paths with :mod:`ast`, attaches the raw
source lines (for pragma detection), and hands the result to each
enabled :class:`Rule`.  Rules come in two shapes:

* **per-module** rules override :meth:`Rule.check_module` and see one
  :class:`SourceModule` at a time (most rules);
* **project** rules override :meth:`Rule.check_project` and see the
  whole :class:`Project` at once — this is how the protocol-parity rule
  matches op senders in one file against op handlers in another.

Suppression is explicit and auditable.  A finding on line *L* is
suppressed when line *L* carries::

    # reprolint: disable=R001            (one rule)
    # reprolint: disable=R001,R004       (several)
    # reprolint: disable=R005 - trusted local snapshot file

(anything after the rule list is a free-text reason, encouraged), and a
whole file opts out of a rule with::

    # reprolint: disable-file=R002 - single-threaded by construction

on any line of the file.  Suppressed findings are counted in the
report so a build can still surface how much is being waived.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: pragma grammar: ``# reprolint: disable=R001,R002 [free-text reason]``
#: and ``disable-file=`` for file scope.  The rule list is the first
#: whitespace-free token after ``=``; everything after it is the reason.
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable|disable-file)=(?P<rules>[^\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to ``path:line:col``."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class SourceModule:
    """One parsed source file plus its pragma annotations."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number → rule ids disabled on that line ("*" = all)
        self.line_pragmas: Dict[int, Set[str]] = {}
        #: rule ids disabled for the whole file ("*" = all)
        self.file_pragmas: Set[str] = set()
        for lineno, line in enumerate(self.lines, 1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = {rule.strip() for rule in match.group("rules").split(",")}
            rules.discard("")
            if match.group("scope") == "disable-file":
                self.file_pragmas |= rules
            else:
                self.line_pragmas.setdefault(lineno, set()).update(rules)

    @property
    def basename(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_pragmas or "*" in self.file_pragmas:
            return True
        rules = self.line_pragmas.get(finding.line, ())
        return finding.rule in rules or "*" in rules


class Project:
    """Every module of one lint run, keyed by path."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self._by_path = {module.path: module for module in self.modules}

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def module(self, path: str) -> Optional[SourceModule]:
        return self._by_path.get(path.replace("\\", "/"))


class Rule:
    """Base class: one contract checked per module or across the project."""

    #: short stable identifier, e.g. ``"R001"`` (used by pragmas/--select)
    id: str = ""
    #: one-line human name shown by ``--list-rules``
    name: str = ""
    #: what the contract is and why it exists
    description: str = ""

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------
    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
            "parse_errors": [finding.to_dict() for finding in self.parse_errors],
            "suppressed": self.suppressed,
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.parse_errors]
        lines += [finding.render() for finding in self.findings]
        total = len(self.findings) + len(self.parse_errors)
        summary = (
            f"reprolint: {total} finding(s) in {self.files_scanned} file(s)"
            f" ({self.suppressed} suppressed by pragma)"
        )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# discovery + running
# ----------------------------------------------------------------------
def iter_source_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files taken verbatim)."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def load_project(paths: Sequence[str]) -> Tuple[Project, List[Finding]]:
    """Parse every source file; syntax errors become PARSE findings."""
    modules: List[SourceModule] = []
    errors: List[Finding] = []
    for path in iter_source_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            errors.append(
                Finding("PARSE", f"cannot read file: {error}", str(path), 1)
            )
            continue
        try:
            modules.append(SourceModule(str(path), source))
        except SyntaxError as error:
            errors.append(
                Finding(
                    "PARSE",
                    f"syntax error: {error.msg}",
                    str(path),
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                )
            )
    return Project(modules), errors


def resolve_rules(
    rules: Sequence[Rule],
    *,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Apply ``--select`` (whitelist) then ``--disable`` (blacklist)."""
    known = {rule.id for rule in rules}
    for requested in list(select or []) + list(disable or []):
        if requested not in known:
            raise ValueError(
                f"unknown rule {requested!r}; known rules: {', '.join(sorted(known))}"
            )
    chosen = list(rules)
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.id in wanted]
    if disable:
        dropped = set(disable)
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def run_rules(project: Project, rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    """Run every rule; returns (kept findings, suppressed count)."""
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        raw: List[Finding] = []
        for module in project:
            raw.extend(rule.check_module(module, project))
        raw.extend(rule.check_project(project))
        for finding in raw:
            module = project.module(finding.path)
            if module is not None and module.suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda finding: finding.sort_key)
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` with the (filtered) rule set; the one-call API."""
    from repro.analysis.rules import default_rules

    active = resolve_rules(
        list(rules) if rules is not None else default_rules(),
        select=select,
        disable=disable,
    )
    project, parse_errors = load_project(paths)
    findings, suppressed = run_rules(project, active)
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_scanned=len(project),
        parse_errors=parse_errors,
        rules_run=[rule.id for rule in active],
    )


__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceModule",
    "iter_source_files",
    "lint_paths",
    "load_project",
    "resolve_rules",
    "run_rules",
]
