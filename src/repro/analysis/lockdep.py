"""Runtime lockdep: instrumented locks that learn the acquisition graph.

The static half of the concurrency sanitizer
(:mod:`repro.analysis.concurrency`) predicts the lock-order graph from
the AST; this module *observes* it.  :func:`install` replaces the
``threading`` attribute of the serving-path modules with a facade whose
``Lock``/``RLock``/``Condition``/``BoundedSemaphore`` factories return
tracked wrappers.  Every wrapper records, at acquire time, an edge from
each lock the calling thread already holds to the one being acquired —
so a potential deadlock (two threads taking the same pair of locks in
opposite orders) is reported even on runs that never actually
deadlocked.  Held durations feed ``lockdep_held_seconds`` histograms in
the :mod:`repro.obs.metrics` registry.

The two halves cross-check each other: ``repro lockdep-report`` asserts
that every *observed* edge is present in the *static* model.  An
observed edge the static pass cannot derive means the model lost track
of an acquisition path — itself a finding.  Lock identities are
class-qualified (``ClassName.attr``, derived by inspecting the
constructing frame) so both halves speak the same names.

Usage (the whole test suite)::

    REPRO_LOCKDEP=1 pytest tests/test_serve.py    # conftest installs
    repro lockdep-report --graph lockdep_graph.json --src src

or programmatic::

    state = lockdep.install()
    try:
        ... exercise the serving stack ...
    finally:
        lockdep.uninstall()
    assert not state.cycles()

Non-goals: this is a development/CI harness, not production
instrumentation — wrappers cost a dict update per acquire and are never
installed unless asked for.
"""

from __future__ import annotations

import argparse
import importlib
import json
import linecache
import os
import re
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.concurrency import find_cycles

#: modules whose ``threading`` attribute :func:`install` replaces —
#: the concurrent serving path.  ``repro.obs.metrics`` is deliberately
#: absent: its registry lock guards engine-internal metric factories the
#: static model cannot see through, so tracking it would manufacture
#: observed edges with no static counterpart.
DEFAULT_MODULES: Tuple[str, ...] = (
    "repro.serve.server",
    "repro.serve.generations",
    "repro.shard.router",
    "repro.cluster.coordinator",
)

#: histogram buckets for held durations: locks here are held for
#: microseconds (queue handoff) up to whole estimates (~seconds)
HELD_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0,
)

_ASSIGN_RE = re.compile(r"self\.(\w+)\s*(?::[^=]+?)?=")


# ----------------------------------------------------------------------
# observed-graph state
# ----------------------------------------------------------------------
@dataclass
class EdgeStats:
    """How one (held → acquired) ordering was observed."""

    blocking: int = 0
    trylock: int = 0
    #: name of a thread that recorded the edge (first occurrence)
    example_thread: str = ""

    @property
    def count(self) -> int:
        return self.blocking + self.trylock

    def to_dict(self) -> Dict[str, Any]:
        return {
            "blocking": self.blocking,
            "trylock": self.trylock,
            "example_thread": self.example_thread,
        }


@dataclass
class _Held:
    """One entry of a thread's held-lock stack."""

    name: str
    since: float


class LockdepState:
    """The global order graph plus per-thread held-lock stacks.

    Edge recording happens at acquire-*attempt* time, before the real
    acquire can block — a genuine deadlock still leaves the inversion in
    the graph.  Reentrant acquires (RLock depth > 1) record no edge: a
    lock cannot order against itself.
    """

    def __init__(self, metrics: Optional[Any] = None) -> None:
        self._mutex = threading.Lock()
        #: thread ident → that thread's held stack.  A shared dict (not
        #: ``threading.local``) because semaphore slots are legitimately
        #: released by a *different* thread than the one that acquired
        #: them — a thread-local stack would keep the acquirer's entry
        #: forever and hang phantom edges off it.
        self._stacks: Dict[int, List[_Held]] = {}
        self._edges: Dict[Tuple[str, str], EdgeStats] = {}
        self._locks_seen: Set[str] = set()
        self._acquires = 0
        self._metrics = metrics

    # -- held-stack plumbing -------------------------------------------
    def _my_stack(self) -> List[_Held]:
        """The calling thread's stack; the mutex must be held."""
        return self._stacks.setdefault(threading.get_ident(), [])

    def held_names(self) -> List[str]:
        """The calling thread's currently held locks, outermost first."""
        with self._mutex:
            return [entry.name for entry in self._my_stack()]

    # -- recording ------------------------------------------------------
    def note_attempt(self, name: str, *, blocking: bool) -> None:
        with self._mutex:
            stack = self._my_stack()
            self._locks_seen.add(name)
            self._acquires += 1
            if any(entry.name == name for entry in stack):
                return  # reentrant: no self-ordering
            thread_name = threading.current_thread().name
            for entry in stack:
                stats = self._edges.setdefault((entry.name, name), EdgeStats())
                if blocking:
                    stats.blocking += 1
                else:
                    stats.trylock += 1
                if not stats.example_thread:
                    stats.example_thread = thread_name

    def note_acquired(self, name: str) -> None:
        with self._mutex:
            self._my_stack().append(_Held(name, time.monotonic()))

    def note_release(self, name: str) -> None:
        entry: Optional[_Held] = None
        with self._mutex:
            stack = self._my_stack()
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].name == name:
                    entry = stack.pop(index)
                    break
            else:
                # cross-thread release (a Timer returning a semaphore
                # slot, a hand-off protocol): retire the oldest matching
                # entry from whichever thread acquired it
                for other in self._stacks.values():
                    for index, candidate in enumerate(other):
                        if candidate.name == name:
                            entry = other.pop(index)
                            break
                    if entry is not None:
                        break
        if entry is not None:
            self._observe_held(name, time.monotonic() - entry.since)
        # no entry at all: released a primitive acquired before install()

    def note_wait(self, name: str) -> Optional[float]:
        """``Condition.wait`` releases the lock: pop it for the duration."""
        with self._mutex:
            stack = self._my_stack()
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].name == name:
                    entry = stack.pop(index)
                    break
            else:
                return None
        self._observe_held(name, time.monotonic() - entry.since)
        return entry.since

    def note_wait_done(self, name: str, token: Optional[float]) -> None:
        if token is not None:
            # re-acquired inside wait(): a fresh held segment begins
            with self._mutex:
                self._my_stack().append(_Held(name, time.monotonic()))

    def _observe_held(self, name: str, seconds: float) -> None:
        registry = self._metrics
        if registry is None:
            from repro.obs.metrics import get_global_registry

            registry = get_global_registry()
        registry.histogram(
            "lockdep_held_seconds", buckets=HELD_SECONDS_BUCKETS, lock=name
        ).observe(seconds)

    # -- queries --------------------------------------------------------
    def edges(self, *, include_trylock: bool = True) -> Dict[Tuple[str, str], EdgeStats]:
        with self._mutex:
            if include_trylock:
                return dict(self._edges)
            return {
                key: stats
                for key, stats in self._edges.items()
                if stats.blocking > 0
            }

    def cycles(self) -> List[List[str]]:
        """Potential-deadlock cycles among *blocking* edges.

        An edge recorded only by try-acquires cannot wedge (the failed
        path backs off), so trylock-only edges are excluded here — but
        they still count for the static-subgraph comparison.
        """
        return find_cycles(self.edges(include_trylock=False).keys())

    def graph(self) -> Dict[str, Any]:
        """JSON-able dump of everything observed so far."""
        with self._mutex:
            edges = sorted(self._edges.items())
            locks = sorted(self._locks_seen)
            acquires = self._acquires
        return {
            "locks": locks,
            "acquires": acquires,
            "edges": [
                {"source": source, "target": target, **stats.to_dict()}
                for (source, target), stats in edges
            ],
            "cycles": self.cycles(),
        }


# ----------------------------------------------------------------------
# tracked primitives
# ----------------------------------------------------------------------
def _looks_blocking(blocking: bool, timeout: Optional[float]) -> bool:
    return blocking and (timeout is None or timeout != 0)


class _TrackedBase:
    """Shared acquire/release bookkeeping for all tracked primitives."""

    def __init__(self, state: LockdepState, inner: Any, name: str) -> None:
        self._state = state
        self._inner = inner
        self.lockdep_name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        effective_timeout = None if timeout == -1 else timeout
        self._state.note_attempt(
            self.lockdep_name,
            blocking=_looks_blocking(blocking, effective_timeout),
        )
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._state.note_acquired(self.lockdep_name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._state.note_release(self.lockdep_name)

    def __enter__(self) -> "_TrackedBase":
        self.acquire()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<lockdep {type(self).__name__} {self.lockdep_name!r} of {self._inner!r}>"

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)


class TrackedLock(_TrackedBase):
    pass


class TrackedRLock(_TrackedBase):
    pass


class TrackedSemaphore(_TrackedBase):
    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        self._state.note_attempt(
            self.lockdep_name, blocking=_looks_blocking(blocking, timeout)
        )
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._state.note_acquired(self.lockdep_name)
        return acquired


class TrackedCondition(_TrackedBase):
    """Condition wrapper; ``wait`` un-holds the condition while parked.

    Waiting on the held condition is the one blocking-while-holding
    pattern that is *correct* (the wait releases the lock), so the
    held-set must not contain the condition during the wait — otherwise
    every lock acquired by the thread that eventually notifies would
    appear to order after this condition.
    """

    def wait(self, timeout: Optional[float] = None) -> bool:
        token = self._state.note_wait(self.lockdep_name)
        try:
            return bool(self._inner.wait(timeout))
        finally:
            self._state.note_wait_done(self.lockdep_name, token)

    def wait_for(self, predicate: Any, timeout: Optional[float] = None) -> Any:
        token = self._state.note_wait(self.lockdep_name)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._state.note_wait_done(self.lockdep_name, token)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


# ----------------------------------------------------------------------
# naming: which ``self.attr = threading.X()`` created this primitive?
# ----------------------------------------------------------------------
def _derive_name(kind: str) -> str:
    """Class-qualified name for the primitive being constructed.

    Walks out of this module's frames to the construction site, takes
    the class name from the caller's ``self``, and scans a few source
    lines upward from the call for the ``self.attr = …`` assignment
    target (upward because a multi-line initialiser, e.g. a conditional
    ``None if … else threading.Lock()``, reports the *last* line of the
    expression).  Falls back to ``file.py:lineno`` when the site is not
    an attribute assignment; those names still participate in the graph
    but cannot match the static model.
    """
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__file__") == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only with exotic embedding
        return f"<unknown {kind}>"
    self_obj = frame.f_locals.get("self")
    filename = frame.f_code.co_filename
    lineno = frame.f_lineno
    if self_obj is not None:
        for candidate in range(lineno, max(lineno - 6, 0), -1):
            match = _ASSIGN_RE.search(linecache.getline(filename, candidate))
            if match is not None:
                return f"{type(self_obj).__name__}.{match.group(1)}"
    return f"{os.path.basename(filename)}:{lineno}"


class ThreadingFacade:
    """Drop-in for a module's ``threading`` attribute.

    The four lock factories return tracked wrappers; everything else
    (``Thread``, ``Event``, ``local``, …) delegates to the real module,
    so patched modules behave identically apart from the bookkeeping.
    """

    def __init__(self, state: LockdepState) -> None:
        self._state = state

    def Lock(self) -> TrackedLock:  # noqa: N802 - mirrors threading's API
        return TrackedLock(self._state, threading.Lock(), _derive_name("Lock"))

    def RLock(self) -> TrackedRLock:  # noqa: N802
        return TrackedRLock(self._state, threading.RLock(), _derive_name("RLock"))

    def Condition(self, lock: Optional[Any] = None) -> TrackedCondition:  # noqa: N802
        if isinstance(lock, _TrackedBase):
            lock = lock._inner
        return TrackedCondition(
            self._state, threading.Condition(lock), _derive_name("Condition")
        )

    def Semaphore(self, value: int = 1) -> TrackedSemaphore:  # noqa: N802
        return TrackedSemaphore(
            self._state, threading.Semaphore(value), _derive_name("Semaphore")
        )

    def BoundedSemaphore(self, value: int = 1) -> TrackedSemaphore:  # noqa: N802
        return TrackedSemaphore(
            self._state, threading.BoundedSemaphore(value), _derive_name("BoundedSemaphore")
        )

    def __getattr__(self, attr: str) -> Any:
        return getattr(threading, attr)


# ----------------------------------------------------------------------
# install / uninstall
# ----------------------------------------------------------------------
_MISSING = object()  # module had no `threading` attribute before install
_installed: Dict[str, Any] = {}
_active_state: Optional[LockdepState] = None


def install(
    modules: Sequence[str] = DEFAULT_MODULES,
    *,
    state: Optional[LockdepState] = None,
    metrics: Optional[Any] = None,
) -> LockdepState:
    """Patch ``modules`` to construct tracked primitives; idempotent.

    Only primitives constructed *after* install are tracked — install
    before building servers/managers (the conftest hook runs at import
    time, ahead of every fixture, for exactly this reason).
    """
    global _active_state
    if _active_state is not None:
        return _active_state
    _active_state = state if state is not None else LockdepState(metrics=metrics)
    facade = ThreadingFacade(_active_state)
    for name in modules:
        module = importlib.import_module(name)
        _installed[name] = getattr(module, "threading", _MISSING)
        module.threading = facade  # type: ignore[attr-defined]
    return _active_state


def uninstall() -> None:
    """Restore every patched module's real ``threading``."""
    global _active_state
    for name, original in _installed.items():
        module = sys.modules.get(name)
        if module is None:
            continue
        if original is _MISSING:
            delattr(module, "threading")
        else:
            module.threading = original  # type: ignore[attr-defined]
    _installed.clear()
    _active_state = None


def active_state() -> Optional[LockdepState]:
    """The state installed by :func:`install`, if any."""
    return _active_state


# ----------------------------------------------------------------------
# report: observed graph vs static model
# ----------------------------------------------------------------------
def unexplained_edges(
    observed: Iterable[Tuple[str, str]], src_paths: Sequence[str]
) -> List[Tuple[str, str]]:
    """Observed edges the static model cannot derive.

    The static graph must over-approximate the runtime one — any
    observed edge without a static counterpart means the AST pass lost
    an acquisition path (an unresolved call, a lock constructed outside
    ``__init__``, …).  Edges whose endpoints never matched a
    ``Class.attr`` name (``file.py:lineno`` fallbacks) are reported too:
    a lock the static model cannot even *name* is equally a blind spot.
    """
    from repro.analysis.concurrency import build_lock_model
    from repro.analysis.engine import load_project

    project, _errors = load_project(list(src_paths))
    static_keys = build_lock_model(project).edge_keys
    return [edge for edge in observed if edge not in static_keys]


def build_lockdep_report_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Arguments of ``repro lockdep-report``."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lockdep-report",
            description="check an observed lock-order graph against the static model",
        )
    parser.add_argument(
        "--graph",
        default="lockdep_graph.json",
        help="observed-graph JSON written by the REPRO_LOCKDEP=1 test run",
    )
    parser.add_argument(
        "--src", nargs="+", default=["src"], metavar="PATH",
        help="source paths for the static lock model (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    return parser


def run_lockdep_report_from_args(args: argparse.Namespace) -> int:
    """``repro lockdep-report``: 0 = acyclic and fully explained."""
    try:
        with open(args.graph, "r", encoding="utf-8") as handle:
            graph = json.load(handle)
    except OSError as error:
        print(f"error: cannot read graph {args.graph!r}: {error}")  # noqa: T201 - CLI output
        return 2
    observed = [(edge["source"], edge["target"]) for edge in graph.get("edges", [])]
    blocking = [
        (edge["source"], edge["target"])
        for edge in graph.get("edges", [])
        if edge.get("blocking", 0) > 0
    ]
    cycles = find_cycles(blocking)
    unexplained = unexplained_edges(observed, args.src)
    verdict = {
        "locks": graph.get("locks", []),
        "acquires": graph.get("acquires", 0),
        "observed_edges": [list(edge) for edge in observed],
        "cycles": cycles,
        "unexplained_edges": [list(edge) for edge in unexplained],
        "ok": not cycles and not unexplained,
    }
    if args.format == "json":
        print(json.dumps(verdict, indent=2, sort_keys=True))  # noqa: T201 - CLI output
    else:
        print(  # noqa: T201 - CLI output
            f"lockdep: {len(verdict['locks'])} lock(s), "
            f"{verdict['acquires']} acquire(s), {len(observed)} ordered edge(s)"
        )
        for source, target in observed:
            marker = "" if (source, target) not in unexplained else "   [NOT IN STATIC MODEL]"
            print(f"  {source} -> {target}{marker}")  # noqa: T201 - CLI output
        for cycle in cycles:
            print(f"  CYCLE: {' -> '.join(cycle)}")  # noqa: T201 - CLI output
        if verdict["ok"]:
            print("lockdep: observed graph is acyclic and a subgraph of the static model")  # noqa: T201 - CLI output
        else:
            print("lockdep: FAIL")  # noqa: T201 - CLI output
    return 0 if verdict["ok"] else 1


__all__ = [
    "DEFAULT_MODULES",
    "EdgeStats",
    "HELD_SECONDS_BUCKETS",
    "LockdepState",
    "ThreadingFacade",
    "TrackedCondition",
    "TrackedLock",
    "TrackedRLock",
    "TrackedSemaphore",
    "active_state",
    "build_lockdep_report_parser",
    "install",
    "run_lockdep_report_from_args",
    "uninstall",
    "unexplained_edges",
]
