"""Snapshot-schema flow analysis: static state-dict contracts + runtime witness.

Every durability feature in this repo — streaming restore, shard
migration, cluster snapshots, serve epoch handoff — rides on hand-written
``to_state``/``from_state`` dict contracts.  Until now their only guard
was end-to-end bit-identity tests: a key written but never read (or read
through a silent ``.get`` default) restores *plausibly wrong* state
without failing anything.  This module extracts those contracts from the
AST and checks them project-wide; it is also the machine-readable schema
catalogue the ROADMAP's wire-format migration needs before a structured
binary codec can replace framed pickle.

Static model
------------
:func:`build_schema_model` walks every class (and ``*_state`` /
``*_from_state`` module-function pair) and records, per **writer**
(``to_state`` / ``state`` / ``snapshot``), the set of keys it emits —
dict-literal keys, ``state["k"] = v`` stores, ``**nested`` merges, and
whether each key is written unconditionally — and per **reader**
(``from_state`` / ``restore`` / ``load_state``) the set of keys it
consumes: ``state["k"]`` subscripts, ``state.get("k", default)``, and
``"k" in state`` membership probes.  Reader extraction is
interprocedural: the state variable is followed through same-class
helper methods and module-level helpers (``cls._unwrap_…(state)``,
``_check_state(state, kind)``), so contracts split across private
helpers are still seen whole.  Readers are paired with the nearest
writer up the inheritance chain (``ClusterCoordinator.from_state`` reads
the schema ``ShardedMutableIndex.to_state`` writes).

Three reprolint rules ride on the model:

* **R011 schema-parity** — a key written but never read by the paired
  reader is silent data loss on restore; a key read without a default
  (and without a membership guard) that the writer never emits is a
  latent ``KeyError``.
* **R012 default-drift** — ``state.get("k", default)`` where the paired
  writer *always* emits ``"k"`` masks the contract: if the writer ever
  drops the key, restores silently fall back to the default.  Genuine
  version-compat defaults carry a pragma naming the version that lacked
  the key.
* **R013 plain-data discipline** — state-dict values must bottom out in
  JSON/numpy-plain types or a nested ``to_state()``-style call.
  Arbitrary objects in state dicts are exactly what blocks the
  pickle-free codec.  The check is evidence-based: only values the
  analyzer can *show* are non-plain (a call to a non-allowlisted
  constructor, an attribute whose annotation names a project class) are
  flagged; unprovable values pass.

Runtime witness
---------------
Mirroring the lockdep harness, ``REPRO_SCHEMA=1`` makes the test-suite
conftest call :func:`install_witness`, which wraps every writer/reader
on the snapshot-bearing classes: writers record the top-level keys of
the dict they return, readers receive their state argument wrapped in a
key-recording mapping proxy.  ``repro schema-report`` then asserts the
*observed* key-sets are a subset of the *static* model — an unexplained
key means the extractor lost a flow path — and emits the schema
inventory as a versioned JSON artifact for the wire-format PR to
consume.
"""

from __future__ import annotations

import argparse
import ast
import functools
import importlib
import json
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import Finding, Project, Rule, SourceModule
from repro.analysis.rules import dotted_name

#: method names that *produce* a state dict
WRITER_NAMES: Tuple[str, ...] = ("to_state", "state", "snapshot")
#: method names that *consume* a state dict
READER_NAMES: Tuple[str, ...] = ("from_state", "restore", "load_state")

#: value kinds, ordered from best to worst evidence
KIND_PLAIN = "plain"
KIND_NESTED = "nested"
KIND_UNKNOWN = "unknown"
KIND_OPAQUE = "opaque"

_KIND_ORDER = (KIND_PLAIN, KIND_NESTED, KIND_UNKNOWN, KIND_OPAQUE)

#: bare callables that coerce their argument to a plain scalar
_PLAIN_CALLS = {
    "int", "float", "bool", "str", "bytes", "len", "abs", "round",
    "min", "max", "sum", "repr", "ord", "chr",
}
#: container constructors: plainness is the plainness of the payload
_COERCE_CALLS = {"list", "tuple", "dict", "sorted", "set", "frozenset"}
#: zero-argument-method spellings that return plain data
_PLAIN_METHODS = {"tolist", "to_dict", "item", "hex", "decode", "isoformat"}
#: method names that delegate to another component's schema
_NESTED_METHODS = {"to_state", "state", "bucket_state"}
#: annotations considered plain (JSON/numpy-plain leaf types)
_PLAIN_TYPES = {"int", "float", "bool", "str", "bytes", "None", "ndarray", "generic"}
#: generic containers whose plainness is their type arguments'
_PLAIN_CONTAINERS = {
    "Optional", "Union", "List", "Tuple", "Dict", "Set", "FrozenSet",
    "Sequence", "Mapping", "MutableMapping", "Iterable", "Collection",
    "list", "tuple", "dict", "set", "frozenset",
}
#: whole-state uses that do not leak the mapping to unknown code
_SAFE_WHOLE_USES = {"isinstance", "len", "repr", "type", "bool"}


def _worst(kinds: Iterable[str]) -> str:
    """The weakest evidence level among ``kinds`` (empty → plain)."""
    worst = KIND_PLAIN
    for kind in kinds:
        if _KIND_ORDER.index(kind) > _KIND_ORDER.index(worst):
            worst = kind
    return worst


# ----------------------------------------------------------------------
# model dataclasses
# ----------------------------------------------------------------------
@dataclass
class KeyWrite:
    """One key a writer emits."""

    key: str
    always: bool
    kind: str
    node: ast.AST
    #: best-effort ``Owner.method`` the nested value delegates to
    ref: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"always": self.always, "kind": self.kind}
        if self.ref is not None:
            entry["ref"] = self.ref
        return entry


@dataclass
class KeyRead:
    """One key a reader consumes."""

    key: str
    #: ``.get`` calls and membership-guarded subscripts cannot KeyError
    guarded: bool
    #: an explicit fallback value was supplied (``.get(k, default)``)
    has_default: bool
    node: ast.AST

    def to_dict(self) -> Dict[str, Any]:
        return {"guarded": self.guarded, "default": self.has_default}


@dataclass
class WriterSchema:
    """The key-set one writer method emits."""

    owner: str
    method: str
    module: SourceModule
    node: ast.AST
    writes: Dict[str, KeyWrite] = field(default_factory=dict)
    #: True when a flow path could not be resolved (``**unknown`` merge,
    #: a non-literal return): the key-set is a lower bound, so absence
    #: of a key proves nothing
    open: bool = False
    #: True when the method only re-emits another writer of the same
    #: class (``pickle.dump(self.to_state(), …)``) — no schema of its own
    delegator: bool = False

    @property
    def name(self) -> str:
        return f"{self.owner}.{self.method}"


@dataclass
class ReaderSchema:
    """The key-set one reader method consumes (helpers included)."""

    owner: str
    method: str
    module: SourceModule
    node: ast.AST
    reads: List[KeyRead] = field(default_factory=list)
    #: True when the whole mapping escapes (iterated, ``dict(state)``,
    #: passed to unresolvable code): the read-set is a lower bound
    open: bool = False
    #: source text of the state parameter's annotation, if any
    param_annotation: Optional[str] = None

    @property
    def name(self) -> str:
        return f"{self.owner}.{self.method}"

    def read_keys(self) -> Set[str]:
        return {read.key for read in self.reads}


@dataclass
class SchemaPair:
    """A reader resolved against the writer whose schema it consumes."""

    writer: WriterSchema
    reader: ReaderSchema


class SchemaModel:
    """Every extracted writer/reader plus the resolved pairs."""

    def __init__(
        self,
        writers: Dict[str, WriterSchema],
        readers: Dict[str, ReaderSchema],
        pairs: List[SchemaPair],
    ) -> None:
        self.writers = writers
        self.readers = readers
        self.pairs = pairs

    def entry_keys(self, name: str) -> Optional[Tuple[Set[str], bool]]:
        """(known key-set, open?) for ``Owner.method``, if modelled."""
        writer = self.writers.get(name)
        if writer is not None:
            return set(writer.writes), writer.open or writer.delegator
        reader = self.readers.get(name)
        if reader is not None:
            return reader.read_keys(), reader.open
        return None

    def to_inventory(self) -> Dict[str, Any]:
        """The versioned schema-inventory JSON (wire-format substrate)."""
        entries: Dict[str, Any] = {}
        for writer in self.writers.values():
            entries[writer.name] = {
                "role": "writer",
                "module": writer.module.path,
                "line": getattr(writer.node, "lineno", 1),
                "open": writer.open,
                "delegator": writer.delegator,
                "keys": {
                    key: write.to_dict()
                    for key, write in sorted(writer.writes.items())
                },
            }
        for reader in self.readers.values():
            merged: Dict[str, Dict[str, Any]] = {}
            for read in reader.reads:
                entry = merged.setdefault(
                    read.key, {"guarded": True, "default": False}
                )
                # one unguarded read makes the key load-bearing
                entry["guarded"] = entry["guarded"] and read.guarded
                entry["default"] = entry["default"] or read.has_default
            entries[reader.name] = {
                "role": "reader",
                "module": reader.module.path,
                "line": getattr(reader.node, "lineno", 1),
                "open": reader.open,
                "keys": {key: merged[key] for key in sorted(merged)},
            }
        return {
            "version": 1,
            "entries": entries,
            "pairs": sorted(
                [pair.writer.name, pair.reader.name] for pair in self.pairs
            ),
        }


# ----------------------------------------------------------------------
# class indexing (shared with the value classifier)
# ----------------------------------------------------------------------
class _ClassInfo:
    """One class definition plus the attribute/property evidence in it."""

    def __init__(self, module: SourceModule, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.bases = [dotted_name(base) for base in node.bases]
        #: attr → every ``self.attr = expr`` / ``self.attr: T = expr``
        self.attr_exprs: Dict[str, List[ast.AST]] = {}
        #: attr → annotation nodes seen on assignments
        self.attr_annotations: Dict[str, List[ast.AST]] = {}
        #: property name → (return annotation, return expressions)
        self.properties: Dict[str, Tuple[Optional[ast.AST], List[ast.AST]]] = {}
        self.methods: Dict[str, ast.FunctionDef] = {}
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            self.methods[item.name] = item
            decorators = {dotted_name(d) for d in item.decorator_list}
            if "property" in decorators:
                returns = [
                    stmt.value
                    for stmt in ast.walk(item)
                    if isinstance(stmt, ast.Return) and stmt.value is not None
                ]
                self.properties[item.name] = (item.returns, returns)
            params = {
                arg.arg: arg.annotation
                for arg in item.args.args + item.args.kwonlyargs
                if arg.annotation is not None
            }
            for stmt in ast.walk(item):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if value is not None:
                        self.attr_exprs.setdefault(target.attr, []).append(value)
                        # `self.x = param` inherits the parameter's annotation
                        if isinstance(value, ast.Name) and value.id in params:
                            self.attr_annotations.setdefault(target.attr, []).append(
                                params[value.id]
                            )
                    if annotation is not None:
                        self.attr_annotations.setdefault(target.attr, []).append(
                            annotation
                        )

    def method_kind(self, name: str) -> str:
        """``"instance"`` / ``"classmethod"`` / ``"staticmethod"``."""
        node = self.methods.get(name)
        if node is None:
            return "instance"
        decorators = {dotted_name(d) for d in node.decorator_list}
        if "staticmethod" in decorators:
            return "staticmethod"
        if "classmethod" in decorators:
            return "classmethod"
        return "instance"


class _ProjectIndex:
    """Class and module-function lookup across the whole lint run."""

    def __init__(self, project: Project) -> None:
        self.classes: Dict[str, _ClassInfo] = {}
        self.module_functions: Dict[str, Dict[str, ast.FunctionDef]] = {}
        #: module path → module-level assignments (type-alias resolution)
        self.module_assigns: Dict[str, Dict[str, ast.AST]] = {}
        for module in project:
            functions: Dict[str, ast.FunctionDef] = {}
            assigns: Dict[str, ast.AST] = {}
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    # first definition wins on (unlikely) name collisions
                    self.classes.setdefault(node.name, _ClassInfo(module, node))
                elif isinstance(node, ast.FunctionDef):
                    functions[node.name] = node
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node.value
            self.module_functions[module.path] = functions
            self.module_assigns[module.path] = assigns

    def resolve_writer_class(self, info: _ClassInfo, name: str) -> Optional[str]:
        """The class (self or nearest base) defining writer ``name``."""
        seen: Set[str] = set()
        current: Optional[_ClassInfo] = info
        while current is not None and current.name not in seen:
            seen.add(current.name)
            if name in current.methods:
                return current.name
            next_info: Optional[_ClassInfo] = None
            for base in current.bases:
                if base is None:
                    continue
                candidate = self.classes.get(base.rsplit(".", 1)[-1])
                if candidate is not None:
                    next_info = candidate
                    break
            current = next_info
        return None


# ----------------------------------------------------------------------
# value classification (R013 evidence)
# ----------------------------------------------------------------------
class _ValueClassifier:
    """Evidence-based plain/nested/opaque classification of write values."""

    _MAX_DEPTH = 6

    def __init__(self, index: _ProjectIndex, module: SourceModule) -> None:
        self._index = index
        self._module = module

    def classify(
        self,
        expr: ast.AST,
        *,
        info: Optional[_ClassInfo],
        local_exprs: Mapping[str, List[ast.AST]],
        depth: int = 0,
        seen: Optional[Set[str]] = None,
    ) -> Tuple[str, Optional[str]]:
        """(kind, nested-ref) for one value expression."""
        seen = seen or set()
        if depth > self._MAX_DEPTH:
            return KIND_UNKNOWN, None

        def recurse(child: ast.AST) -> Tuple[str, Optional[str]]:
            return self.classify(
                child, info=info, local_exprs=local_exprs, depth=depth + 1, seen=seen
            )

        if isinstance(expr, ast.Constant) or isinstance(expr, ast.JoinedStr):
            return KIND_PLAIN, None
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return _worst(recurse(el)[0] for el in expr.elts), None
        if isinstance(expr, ast.Dict):
            kinds = [recurse(v)[0] for v in expr.values if v is not None]
            kinds += [recurse(k)[0] for k in expr.keys if k is not None]
            return _worst(kinds), None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return recurse(expr.elt)
        if isinstance(expr, ast.DictComp):
            return _worst((recurse(expr.key)[0], recurse(expr.value)[0])), None
        if isinstance(expr, ast.Starred):
            return recurse(expr.value)
        if isinstance(expr, ast.IfExp):
            body_kind, body_ref = recurse(expr.body)
            else_kind, else_ref = recurse(expr.orelse)
            return _worst((body_kind, else_kind)), body_ref or else_ref
        if isinstance(expr, ast.BoolOp):
            return _worst(recurse(v)[0] for v in expr.values), None
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            return KIND_PLAIN, None  # arithmetic/comparison yields scalars
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, recurse)
        if isinstance(expr, ast.Attribute):
            return self._classify_attribute(expr, info, depth, seen, local_exprs)
        if isinstance(expr, ast.Name):
            if expr.id in seen:
                return KIND_UNKNOWN, None
            seen.add(expr.id)
            candidates = local_exprs.get(expr.id, [])
            if not candidates:
                return KIND_UNKNOWN, None
            results = [recurse(candidate) for candidate in candidates]
            refs = [ref for _kind, ref in results if ref is not None]
            return _worst(kind for kind, _ref in results), (refs[0] if refs else None)
        if isinstance(expr, ast.Subscript):
            return KIND_UNKNOWN, None
        if isinstance(expr, ast.Lambda):
            return KIND_OPAQUE, None
        return KIND_UNKNOWN, None

    # -- helpers --------------------------------------------------------
    def _classify_call(
        self,
        call: ast.Call,
        recurse: Callable[[ast.AST], Tuple[str, Optional[str]]],
    ) -> Tuple[str, Optional[str]]:
        name = dotted_name(call.func)
        if name is not None:
            bare = name.rsplit(".", 1)[-1]
            if name in _PLAIN_CALLS or bare in _PLAIN_CALLS and "." not in name:
                return KIND_PLAIN, None
            if name in _COERCE_CALLS:
                if not call.args:
                    return KIND_PLAIN, None
                return recurse(call.args[0])
            if name.startswith(("np.", "numpy.")):
                return KIND_PLAIN, None  # numpy results are wire-plain buffers
            if "." not in name and (
                name.endswith("_state") or name.endswith("_states")
            ):
                return KIND_NESTED, name
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            if method in _PLAIN_METHODS:
                return KIND_PLAIN, None
            if method in _NESTED_METHODS:
                return KIND_NESTED, self._nested_ref(call.func, method)
            return KIND_OPAQUE, None
        return KIND_OPAQUE, None

    def _nested_ref(self, func: ast.Attribute, method: str) -> Optional[str]:
        """Best-effort ``Owner.method`` for ``self._attr.to_state()``."""
        receiver = func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            for info in self._index.classes.values():
                if info.module is not self._module:
                    continue
                for expr in info.attr_exprs.get(receiver.attr, []):
                    if isinstance(expr, ast.Call):
                        ctor = dotted_name(expr.func)
                        if ctor is not None:
                            owner = ctor.rsplit(".", 1)[-1]
                            if owner in self._index.classes:
                                return f"{owner}.{method}"
        return None

    def _classify_attribute(
        self,
        expr: ast.Attribute,
        info: Optional[_ClassInfo],
        depth: int,
        seen: Set[str],
        local_exprs: Mapping[str, List[ast.AST]],
    ) -> Tuple[str, Optional[str]]:
        if not (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and info is not None
        ):
            return KIND_UNKNOWN, None
        attr = expr.attr
        marker = f"self.{attr}"
        if marker in seen:
            return KIND_UNKNOWN, None
        seen.add(marker)
        kinds: List[str] = []
        if attr in info.properties:
            annotation, returns = info.properties[attr]
            if annotation is not None:
                kinds.append(self.annotation_kind(annotation))
            else:
                kinds.extend(
                    self.classify(
                        value, info=info, local_exprs={}, depth=depth + 1, seen=seen
                    )[0]
                    for value in returns
                )
        for annotation in info.attr_annotations.get(attr, []):
            kinds.append(self.annotation_kind(annotation))
        for value in info.attr_exprs.get(attr, []):
            kinds.append(
                self.classify(
                    value, info=info, local_exprs={}, depth=depth + 1, seen=seen
                )[0]
            )
        if not kinds:
            return KIND_UNKNOWN, None
        if KIND_OPAQUE in kinds:
            return KIND_OPAQUE, None
        if all(kind == KIND_PLAIN for kind in kinds):
            return KIND_PLAIN, None
        return KIND_UNKNOWN, None

    def annotation_kind(self, annotation: ast.AST, depth: int = 0) -> str:
        """Plainness of a type annotation (project classes are opaque)."""
        if depth > self._MAX_DEPTH:
            return KIND_UNKNOWN
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return KIND_PLAIN
            return KIND_UNKNOWN  # string annotations: out of scope
        if isinstance(annotation, ast.BinOp):  # X | Y unions
            return _worst(
                (
                    self.annotation_kind(annotation.left, depth + 1),
                    self.annotation_kind(annotation.right, depth + 1),
                )
            )
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value)
            tail = base.rsplit(".", 1)[-1] if base else ""
            if tail == "Literal":
                return KIND_PLAIN
            if tail in _PLAIN_CONTAINERS:
                inner = annotation.slice
                elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                return _worst(
                    self.annotation_kind(element, depth + 1) for element in elements
                )
            if tail in self._index.classes:
                return KIND_OPAQUE
            return KIND_UNKNOWN
        name = dotted_name(annotation)
        if name is None:
            return KIND_UNKNOWN
        tail = name.rsplit(".", 1)[-1]
        if tail in _PLAIN_TYPES:
            return KIND_PLAIN
        if tail in self._index.classes:
            return KIND_OPAQUE
        alias = self._index.module_assigns.get(self._module.path, {}).get(tail)
        if alias is not None:
            return self.annotation_kind(alias, depth + 1)
        return KIND_UNKNOWN


# ----------------------------------------------------------------------
# writer extraction
# ----------------------------------------------------------------------
def _statement_conditional(func: ast.FunctionDef, target: ast.AST) -> bool:
    """Whether ``target`` sits under control flow inside ``func``."""
    conditional_nodes = (ast.If, ast.For, ast.While, ast.Try, ast.ExceptHandler)

    def walk(node: ast.AST, conditional: bool) -> Optional[bool]:
        if node is target:
            return conditional
        for child in ast.iter_child_nodes(node):
            found = walk(child, conditional or isinstance(node, conditional_nodes))
            if found is not None:
                return found
        return None

    result = walk(func, False)
    return bool(result)


def _extract_writer(
    module: SourceModule,
    owner: str,
    func: ast.FunctionDef,
    classifier: _ValueClassifier,
    info: Optional[_ClassInfo],
) -> WriterSchema:
    schema = WriterSchema(owner=owner, method=func.name, module=module, node=func)
    local_exprs: Dict[str, List[ast.AST]] = {}
    dict_vars: Dict[str, ast.Dict] = {}
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                local_exprs.setdefault(target.id, []).append(stmt.value)
                if isinstance(stmt.value, ast.Dict):
                    dict_vars[target.id] = stmt.value

    def is_own_writer_call(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in ("self", "cls")
            and expr.func.attr in WRITER_NAMES
        )

    def add_literal(literal: ast.Dict, always: bool) -> None:
        for key_node, value_node in zip(literal.keys, literal.values):
            if key_node is None:  # ``**merge``
                if (
                    isinstance(value_node, ast.Name)
                    and value_node.id in dict_vars
                ):
                    add_literal(dict_vars[value_node.id], always)
                else:
                    schema.open = True
                continue
            if not (
                isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)
            ):
                schema.open = True
                continue
            kind, ref = classifier.classify(
                value_node, info=info, local_exprs=local_exprs
            )
            existing = schema.writes.get(key_node.value)
            if existing is None:
                schema.writes[key_node.value] = KeyWrite(
                    key=key_node.value, always=always, kind=kind,
                    node=value_node, ref=ref,
                )
            else:
                existing.always = existing.always and always

    # 1. returned dicts (directly or through a local variable)
    sources: List[Tuple[ast.Dict, bool]] = []
    returned_vars: Set[str] = set()
    unresolved = False
    delegated = False
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            value = stmt.value
            if isinstance(value, ast.Dict):
                sources.append((value, not _statement_conditional(func, stmt)))
            elif isinstance(value, ast.Name) and value.id in dict_vars:
                sources.append(
                    (dict_vars[value.id], not _statement_conditional(func, stmt))
                )
                returned_vars.add(value.id)
            elif is_own_writer_call(value):
                delegated = True
            else:
                unresolved = True
    # 2. no return: a dict handed straight to pickle/json dump (the
    #    ``snapshot(path)`` convention) still defines the schema
    if not sources and not unresolved and not delegated:
        for call in ast.walk(func):
            if not isinstance(call, ast.Call):
                continue
            name = dotted_name(call.func)
            if name in ("pickle.dump", "json.dump") and call.args:
                first = call.args[0]
                if isinstance(first, ast.Dict):
                    sources.append((first, True))
                elif isinstance(first, ast.Name) and first.id in dict_vars:
                    sources.append((dict_vars[first.id], True))
                    returned_vars.add(first.id)
                elif is_own_writer_call(first):
                    delegated = True
                else:
                    unresolved = True
    if delegated and not sources:
        schema.delegator = True
        return schema
    if unresolved:
        schema.open = True
    if not sources:
        schema.open = True
        return schema
    for literal, always in sources:
        add_literal(literal, always and len(sources) == 1)
    # 3. ``state["k"] = v`` stores on a returned dict variable
    for stmt in ast.walk(func):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in returned_vars
        ):
            continue
        key_node = target.slice
        if not (
            isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)
        ):
            schema.open = True
            continue
        kind, ref = classifier.classify(stmt.value, info=info, local_exprs=local_exprs)
        always = not _statement_conditional(func, stmt)
        existing = schema.writes.get(key_node.value)
        if existing is None:
            schema.writes[key_node.value] = KeyWrite(
                key=key_node.value, always=always, kind=kind, node=stmt, ref=ref
            )
        else:
            existing.always = existing.always and always
    return schema


# ----------------------------------------------------------------------
# reader extraction (interprocedural)
# ----------------------------------------------------------------------
def _state_param(func: ast.FunctionDef) -> Optional[str]:
    """The parameter carrying the state mapping, if identifiable."""
    args = func.args.args + func.args.kwonlyargs
    decorators = {dotted_name(d) for d in func.decorator_list}
    if args and args[0].arg in ("self", "cls") and "staticmethod" not in decorators:
        args = args[1:]
    for arg in args:
        if arg.arg in ("state", "snapshot", "payload"):
            return arg.arg
        if arg.annotation is not None:
            rendered = ast.dump(arg.annotation)
            if "Mapping" in rendered or "Dict" in rendered or "dict" in rendered:
                return arg.arg
    return None


def _param_annotation_src(func: ast.FunctionDef, param: str) -> Optional[str]:
    for arg in func.args.args + func.args.kwonlyargs:
        if arg.arg == param and arg.annotation is not None:
            return ast.unparse(arg.annotation)
    return None


def _extract_reader(
    module: SourceModule,
    owner: str,
    func: ast.FunctionDef,
    index: _ProjectIndex,
    info: Optional[_ClassInfo],
) -> ReaderSchema:
    schema = ReaderSchema(owner=owner, method=func.name, module=module, node=func)
    start_param = _state_param(func)
    if start_param is not None:
        schema.param_annotation = _param_annotation_src(func, start_param)
    worklist: List[Tuple[ast.FunctionDef, Optional[str], Optional[_ClassInfo], SourceModule]] = [
        (func, start_param, info, module)
    ]
    visited: Set[Tuple[int, str]] = set()
    while worklist:
        current, param, current_info, current_module = worklist.pop()
        key = (id(current), param or "<loads>")
        if key in visited:
            continue
        visited.add(key)
        _scan_reader_body(
            current, param, current_info, current_module, index, schema, worklist
        )
    return schema


def _scan_reader_body(
    func: ast.FunctionDef,
    param: Optional[str],
    info: Optional[_ClassInfo],
    module: SourceModule,
    index: _ProjectIndex,
    schema: ReaderSchema,
    worklist: List[Tuple[ast.FunctionDef, Optional[str], Optional[_ClassInfo], SourceModule]],
) -> None:
    tracked: Set[str] = set() if param is None else {param}
    # locals revived from a snapshot file are state mappings too
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name in ("pickle.load", "pickle.loads", "json.load", "json.loads"):
                    tracked.add(target.id)
    if not tracked:
        return

    def is_tracked(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in tracked

    membership_guarded: Set[str] = set()
    reads: List[Tuple[str, bool, bool, ast.AST]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Compare):
            # ``"k" in state`` — a guarded probe of key k
            if (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and is_tracked(node.comparators[0])
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
            ):
                membership_guarded.add(node.left.value)
                reads.append((node.left.value, True, False, node))
        elif isinstance(node, ast.Subscript) and is_tracked(node.value):
            if isinstance(node.ctx, ast.Store):
                continue
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                reads.append((node.slice.value, False, False, node))
            else:
                schema.open = True  # dynamic key: read-set incomplete
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and is_tracked(func_node.value)
            ):
                if func_node.attr == "get" and node.args:
                    key_node = node.args[0]
                    if isinstance(key_node, ast.Constant) and isinstance(
                        key_node.value, str
                    ):
                        reads.append(
                            (key_node.value, True, len(node.args) > 1, node)
                        )
                    else:
                        schema.open = True
                elif func_node.attr in ("items", "keys", "values", "copy"):
                    schema.open = True
                else:
                    schema.open = True  # unknown method on the mapping
            else:
                _follow_call(
                    node, tracked, info, module, index, schema, worklist
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if is_tracked(iterable):
                schema.open = True
    for key, guarded, has_default, node in reads:
        schema.reads.append(
            KeyRead(
                key=key,
                guarded=guarded or key in membership_guarded,
                has_default=has_default,
                node=node,
            )
        )


def _follow_call(
    call: ast.Call,
    tracked: Set[str],
    info: Optional[_ClassInfo],
    module: SourceModule,
    index: _ProjectIndex,
    schema: ReaderSchema,
    worklist: List[Tuple[ast.FunctionDef, Optional[str], Optional[_ClassInfo], SourceModule]],
) -> None:
    """Follow the state mapping into same-class / same-module helpers."""
    positions = [
        position
        for position, arg in enumerate(call.args)
        if isinstance(arg, ast.Name) and arg.id in tracked
    ]
    starred = any(
        isinstance(arg, ast.Starred)
        and isinstance(arg.value, ast.Name)
        and arg.value.id in tracked
        for arg in call.args
    )
    keyword_hits = [
        kw.arg
        for kw in call.keywords
        if isinstance(kw.value, ast.Name)
        and kw.value.id in tracked
        and kw.arg is not None
    ]
    if not positions and not keyword_hits and not starred:
        return
    if starred:
        schema.open = True
        return
    func_node = call.func
    callee: Optional[ast.FunctionDef] = None
    callee_info: Optional[_ClassInfo] = info
    callee_module = module
    name = dotted_name(func_node)
    if (
        isinstance(func_node, ast.Attribute)
        and isinstance(func_node.value, ast.Name)
    ):
        receiver = func_node.value.id
        owner_info: Optional[_ClassInfo] = None
        if receiver in ("self", "cls") and info is not None:
            owner_info = info
        elif receiver in index.classes:
            owner_info = index.classes[receiver]
        if owner_info is not None:
            defining = index.resolve_writer_class(owner_info, func_node.attr)
            if defining is not None:
                callee_info = index.classes[defining]
                callee = callee_info.methods[func_node.attr]
                callee_module = callee_info.module
    elif name is not None and "." not in name:
        callee = index.module_functions.get(module.path, {}).get(name)
        callee_info = None
    if callee is None:
        if name in _SAFE_WHOLE_USES:
            return
        schema.open = True  # the mapping escapes into unknown code
        return
    params = list(callee.args.args)
    decorators = {dotted_name(d) for d in callee.decorator_list}
    offset = 0
    if params and params[0].arg in ("self", "cls") and "staticmethod" not in decorators:
        # bound calls (self.m(…) / cls.m(…)) never pass the receiver
        if isinstance(func_node, ast.Attribute) and isinstance(
            func_node.value, ast.Name
        ) and func_node.value.id in ("self", "cls"):
            offset = 1
        elif "classmethod" in decorators:
            offset = 1
    for position in positions:
        target = position + offset
        if target < len(params):
            worklist.append(
                (callee, params[target].arg, callee_info, callee_module)
            )
    for keyword in keyword_hits:
        if any(arg.arg == keyword for arg in params + callee.args.kwonlyargs):
            worklist.append((callee, keyword, callee_info, callee_module))


# ----------------------------------------------------------------------
# model assembly
# ----------------------------------------------------------------------
def build_schema_model(project: Project) -> SchemaModel:
    """Extract every snapshot-schema writer/reader and resolve the pairs."""
    cached = getattr(project, "_schema_model", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    index = _ProjectIndex(project)
    writers: Dict[str, WriterSchema] = {}
    readers: Dict[str, ReaderSchema] = {}
    for module in project:
        classifier = _ValueClassifier(index, module)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = index.classes.get(node.name)
                if info is None or info.node is not node:
                    continue  # shadowed by an earlier same-named class
                for item in node.body:
                    if not isinstance(item, ast.FunctionDef):
                        continue
                    decorators = {dotted_name(d) for d in item.decorator_list}
                    if "property" in decorators:
                        continue
                    if item.name in WRITER_NAMES:
                        schema = _extract_writer(
                            module, node.name, item, classifier, info
                        )
                        writers[schema.name] = schema
                    elif item.name in READER_NAMES:
                        reader = _extract_reader(
                            module, node.name, item, index, info
                        )
                        readers[reader.name] = reader
            elif isinstance(node, ast.FunctionDef):
                if node.name.endswith("_from_state"):
                    owner = module.path
                    reader = _extract_reader(module, owner, node, index, None)
                    readers[reader.name] = reader
                elif node.name.endswith("_state"):
                    schema = _extract_writer(module, module.path, node, classifier, None)
                    writers[schema.name] = schema
    pairs: List[SchemaPair] = []
    for reader in readers.values():
        writer = _paired_writer(reader, index, writers)
        if writer is not None:
            pairs.append(SchemaPair(writer=writer, reader=reader))
    model = SchemaModel(writers, readers, pairs)
    project._schema_model = model  # type: ignore[attr-defined]  # memo per lint run
    return model


def _paired_writer(
    reader: ReaderSchema,
    index: _ProjectIndex,
    writers: Dict[str, WriterSchema],
) -> Optional[WriterSchema]:
    """The writer whose schema ``reader`` consumes, if resolvable."""
    info = index.classes.get(reader.owner)
    if info is not None:
        for writer_name in WRITER_NAMES:
            defining = index.resolve_writer_class(info, writer_name)
            if defining is None:
                continue
            candidate = writers.get(f"{defining}.{writer_name}")
            if candidate is not None and not candidate.delegator:
                return candidate
        return None
    # module-function pair: <prefix>_from_state ↔ <prefix>_state
    if reader.method.endswith("_from_state"):
        prefix = reader.method[: -len("_from_state")]
        return writers.get(f"{reader.module.path}.{prefix}_state")
    return None


# ----------------------------------------------------------------------
# R011 / R012 / R013
# ----------------------------------------------------------------------
class SchemaParityRule(Rule):
    """Writer/reader key-set parity for every snapshot schema.

    A key written by ``to_state`` that the paired ``from_state`` never
    touches is silent data loss: the restored object *looks* revived but
    dropped part of its state on the floor.  A key read without a
    default (and without an ``in``-guard) that the writer never emits is
    a latent ``KeyError`` waiting for the first real restore.  Readers
    that provably consume the whole mapping, and writers with
    unresolvable flow (``**unknown``), are exempt — the model only
    reports what it can prove.
    """

    id = "R011"
    name = "schema-parity"
    description = (
        "state-dict keys written by to_state must be read by from_state, "
        "and unguarded reads must be written"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_schema_model(project)
        findings: List[Finding] = []
        readers_of: Dict[str, List[ReaderSchema]] = {}
        for pair in model.pairs:
            readers_of.setdefault(pair.writer.name, []).append(pair.reader)
        # written but never read
        for writer in model.writers.values():
            readers = readers_of.get(writer.name)
            if not readers or writer.delegator:
                continue
            if any(reader.open for reader in readers):
                continue
            read_keys = set().union(*(reader.read_keys() for reader in readers))
            reader_names = ", ".join(sorted(r.name for r in readers))
            for key, write in sorted(writer.writes.items()):
                if key not in read_keys:
                    findings.append(
                        self.finding(
                            writer.module, write.node,
                            f"state key {key!r} written by {writer.name} is "
                            f"never read by {reader_names} — silently dropped "
                            "on restore",
                        )
                    )
        # read unguarded but never written
        for pair in model.pairs:
            if pair.writer.open or pair.writer.delegator:
                continue
            for read in pair.reader.reads:
                if read.guarded or read.key in pair.writer.writes:
                    continue
                findings.append(
                    self.finding(
                        pair.reader.module, read.node,
                        f"state key {read.key!r} read without a default in "
                        f"{pair.reader.name} but never written by "
                        f"{pair.writer.name} — latent KeyError on restore",
                    )
                )
        return findings


class DefaultDriftRule(Rule):
    """``.get(k, default)`` of a key the paired writer always emits.

    A defaulted read of an always-written key is a masked contract: if
    the writer ever drops (or renames) the key, restores silently fall
    back to the default instead of failing.  Version-compat defaults for
    snapshots that genuinely predate a key are legitimate — pragma the
    site naming the version that lacked it.
    """

    id = "R012"
    name = "default-drift"
    description = (
        ".get(key, default) reads of keys the paired writer always "
        "emits mask the contract (pragma version-compat sites)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_schema_model(project)
        findings: List[Finding] = []
        for pair in model.pairs:
            for read in pair.reader.reads:
                if not read.has_default:
                    continue
                write = pair.writer.writes.get(read.key)
                if write is not None and write.always:
                    findings.append(
                        self.finding(
                            pair.reader.module, read.node,
                            f"defaulted read of {read.key!r} in "
                            f"{pair.reader.name}, but {pair.writer.name} "
                            "always writes it — the default can only mask a "
                            "broken snapshot (pragma with the version that "
                            "lacked the key if this is deliberate compat)",
                        )
                    )
        return findings


class PlainDataRule(Rule):
    """State-dict values must bottom out in plain data or nested schemas.

    The wire-format migration (ROADMAP) can only replace framed pickle
    if every value crossing the snapshot boundary is JSON/numpy-plain or
    delegates to a nested ``to_state()``-style schema.  The check is
    evidence-based: a value is flagged only when the analyzer can *show*
    it is an arbitrary object (a call to a non-allowlisted constructor,
    an attribute annotated with a project class); unprovable values get
    the benefit of the doubt.
    """

    id = "R013"
    name = "plain-data"
    description = (
        "state-dict values must be JSON/numpy-plain or nested "
        "to_state() calls — arbitrary objects block the pickle-free codec"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_schema_model(project)
        findings: List[Finding] = []
        for writer in model.writers.values():
            for key, write in sorted(writer.writes.items()):
                if write.kind == KIND_OPAQUE:
                    findings.append(
                        self.finding(
                            writer.module, write.node,
                            f"state key {key!r} of {writer.name} holds a "
                            "non-plain object — only JSON/numpy-plain values "
                            "or nested to_state() schemas can cross the "
                            "snapshot boundary (pragma with the migration "
                            "plan if deliberate)",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# runtime witness (REPRO_SCHEMA=1)
# ----------------------------------------------------------------------
#: modules whose snapshot classes :func:`install_witness` wraps — every
#: layer with a to_state/from_state contract on the serving path
DEFAULT_WITNESS_MODULES: Tuple[str, ...] = (
    "repro.streaming.rowstore",
    "repro.streaming.estimator",
    "repro.streaming.mutable_index",
    "repro.shard.sharded_index",
    "repro.engine.backends",
    "repro.engine.engine",
    "repro.cluster.coordinator",
    "repro.cluster.backend",
)


class SchemaWitness:
    """Observed key-sets, keyed ``Class.method``, recorded under a mutex."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._observed: Dict[str, Set[str]] = {}

    def record(self, entry: str, keys: Iterable[str]) -> None:
        with self._mutex:
            self._observed.setdefault(entry, set()).update(keys)

    def record_one(self, entry: str, key: str) -> None:
        with self._mutex:
            self._observed.setdefault(entry, set()).add(key)

    def observed(self) -> Dict[str, Set[str]]:
        with self._mutex:
            return {entry: set(keys) for entry, keys in self._observed.items()}

    def to_dict(self) -> Dict[str, Any]:
        """The JSON dumped by the conftest hook at session end."""
        observed = self.observed()
        return {
            "version": 1,
            "observed": {
                entry: sorted(keys) for entry, keys in sorted(observed.items())
            },
        }


class RecordingMapping(Mapping[str, Any]):
    """A read-through Mapping proxy that records which keys are touched."""

    def __init__(self, inner: Mapping[str, Any], witness: SchemaWitness, entry: str) -> None:
        self._inner = inner
        self._witness = witness
        self._entry = entry

    def __getitem__(self, key: str) -> Any:
        self._witness.record_one(self._entry, key)
        return self._inner[key]

    def get(self, key: str, default: Any = None) -> Any:
        self._witness.record_one(self._entry, key)
        return self._inner.get(key, default)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, str):
            self._witness.record_one(self._entry, key)
        return key in self._inner

    def __iter__(self) -> Iterator[str]:
        # whole-mapping iteration (``dict(state)``) is not a per-key
        # read; the static model marks such readers open
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<schema witness of {self._entry}: {self._inner!r}>"


_active_witness: Optional[SchemaWitness] = None
#: (class, method name) → original attribute, for uninstall
_wrapped: List[Tuple[type, str, Any]] = []


def _wrap_writer(cls: type, name: str, witness: SchemaWitness) -> None:
    original = cls.__dict__[name]
    function = original.__func__ if isinstance(original, (classmethod, staticmethod)) else original
    entry = f"{cls.__name__}.{name}"

    @functools.wraps(function)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = function(*args, **kwargs)
        if isinstance(result, dict):
            witness.record(entry, [key for key in result if isinstance(key, str)])
        return result

    replacement: Any = wrapper
    if isinstance(original, classmethod):
        replacement = classmethod(wrapper)
    elif isinstance(original, staticmethod):
        replacement = staticmethod(wrapper)
    _wrapped.append((cls, name, original))
    setattr(cls, name, replacement)


def _wrap_reader(cls: type, name: str, witness: SchemaWitness) -> None:
    original = cls.__dict__[name]
    function = original.__func__ if isinstance(original, (classmethod, staticmethod)) else original
    entry = f"{cls.__name__}.{name}"

    @functools.wraps(function)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        wrapped_args = list(args)
        for position, value in enumerate(wrapped_args):
            if isinstance(value, RecordingMapping):
                break  # already witnessed by an outer reader
            if isinstance(value, Mapping) and not isinstance(value, RecordingMapping):
                wrapped_args[position] = RecordingMapping(value, witness, entry)
                break
        return function(*wrapped_args, **kwargs)

    replacement: Any = wrapper
    if isinstance(original, classmethod):
        replacement = classmethod(wrapper)
    elif isinstance(original, staticmethod):
        replacement = staticmethod(wrapper)
    _wrapped.append((cls, name, original))
    setattr(cls, name, replacement)


def install_witness(
    modules: Sequence[str] = DEFAULT_WITNESS_MODULES,
) -> SchemaWitness:
    """Wrap every writer/reader on the snapshot classes; idempotent.

    Only methods defined *on* a class are wrapped (inherited methods are
    witnessed by their defining class), so observed entries line up with
    the static model's ``Class.method`` names.
    """
    global _active_witness
    if _active_witness is not None:
        return _active_witness
    _active_witness = SchemaWitness()
    for module_name in modules:
        module = importlib.import_module(module_name)
        for value in vars(module).values():
            if not isinstance(value, type) or value.__module__ != module_name:
                continue
            for method_name in WRITER_NAMES:
                attribute = value.__dict__.get(method_name)
                if callable(attribute) or isinstance(
                    attribute, (classmethod, staticmethod)
                ):
                    _wrap_writer(value, method_name, _active_witness)
            for method_name in READER_NAMES:
                attribute = value.__dict__.get(method_name)
                if callable(attribute) or isinstance(
                    attribute, (classmethod, staticmethod)
                ):
                    _wrap_reader(value, method_name, _active_witness)
    return _active_witness


def uninstall_witness() -> None:
    """Restore every wrapped method."""
    global _active_witness
    for cls, name, original in reversed(_wrapped):
        setattr(cls, name, original)
    _wrapped.clear()
    _active_witness = None


def active_witness() -> Optional[SchemaWitness]:
    """The witness installed by :func:`install_witness`, if any."""
    return _active_witness


# ----------------------------------------------------------------------
# report: observed key-sets vs static model + inventory artifact
# ----------------------------------------------------------------------
def unexplained_observations(
    observed: Mapping[str, Iterable[str]], src_paths: Sequence[str]
) -> List[Tuple[str, List[str]]]:
    """Observed (entry, keys) the static model cannot explain.

    The static model must over-approximate the runtime: an observed key
    with no static counterpart means the extractor lost a flow path (a
    store through an alias, an unresolved helper).  Entries the model
    marks *open* explain any key; entries missing from the model
    entirely are reported with all their keys.
    """
    from repro.analysis.engine import load_project

    project, _errors = load_project(list(src_paths))
    model = build_schema_model(project)
    unexplained: List[Tuple[str, List[str]]] = []
    for entry, keys in sorted(observed.items()):
        resolved = model.entry_keys(entry)
        if resolved is None:
            unexplained.append((entry, sorted(keys)))
            continue
        known, is_open = resolved
        if is_open:
            continue
        missing = sorted(set(keys) - known)
        if missing:
            unexplained.append((entry, missing))
    return unexplained


def build_schema_report_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Arguments of ``repro schema-report``."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro schema-report",
            description=(
                "check observed snapshot key-sets against the static schema "
                "model and emit the schema inventory"
            ),
        )
    parser.add_argument(
        "--observed", default=None,
        help="observed key-set JSON written by a REPRO_SCHEMA=1 test run",
    )
    parser.add_argument(
        "--src", nargs="+", default=["src"], metavar="PATH",
        help="source paths for the static schema model (default: src)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the versioned schema-inventory JSON to this file",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    return parser


def run_schema_report_from_args(args: argparse.Namespace) -> int:
    """``repro schema-report``: 0 = observed ⊆ static (or nothing observed)."""
    observed: Dict[str, List[str]] = {}
    if args.observed is not None:
        try:
            with open(args.observed, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read observed key-sets {args.observed!r}: {error}")  # noqa: T201 - CLI output
            return 2
        observed = dict(payload.get("observed", {}))
    from repro.analysis.engine import load_project

    project, parse_errors = load_project(list(args.src))
    model = build_schema_model(project)
    unexplained = unexplained_observations(observed, args.src) if observed else []
    inventory = model.to_inventory()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")
    ok = not unexplained and not parse_errors
    if args.format == "json":
        verdict = {
            "entries": len(inventory["entries"]),
            "pairs": len(inventory["pairs"]),
            "observed_entries": len(observed),
            "unexplained": [
                {"entry": entry, "keys": keys} for entry, keys in unexplained
            ],
            "ok": ok,
        }
        print(json.dumps(verdict, indent=2, sort_keys=True))  # noqa: T201 - CLI output
    else:
        print(  # noqa: T201 - CLI output
            f"schema: {len(model.writers)} writer(s), {len(model.readers)} "
            f"reader(s), {len(model.pairs)} pair(s); "
            f"{len(observed)} observed entr(ies)"
        )
        for entry, keys in unexplained:
            print(  # noqa: T201 - CLI output
                f"  {entry}: observed key(s) not in the static model: "
                f"{', '.join(keys)}"
            )
        for finding in parse_errors:
            print(f"  {finding.render()}")  # noqa: T201 - CLI output
        if ok:
            print("schema: observed key-sets are a subset of the static model")  # noqa: T201 - CLI output
        else:
            print("schema: FAIL")  # noqa: T201 - CLI output
    return 0 if ok else 1


__all__ = [
    "DEFAULT_WITNESS_MODULES",
    "DefaultDriftRule",
    "KeyRead",
    "KeyWrite",
    "PlainDataRule",
    "ReaderSchema",
    "RecordingMapping",
    "SchemaModel",
    "SchemaPair",
    "SchemaParityRule",
    "SchemaWitness",
    "WriterSchema",
    "READER_NAMES",
    "WRITER_NAMES",
    "active_witness",
    "build_schema_model",
    "build_schema_report_parser",
    "install_witness",
    "run_schema_report_from_args",
    "unexplained_observations",
    "uninstall_witness",
]
