"""reprolint: repo-specific static analysis for the determinism, locking,
and protocol contracts.

The estimators in this library are trustworthy because every layer
preserves seeded, bit-identical sampling — and the serving stack piles
threads, worker processes, and a copy-on-write epoch handoff on top of
that contract.  This package checks those invariants at *parse* time,
before an integration test has to catch them at runtime::

    repro lint src/                       # via the main CLI
    python -m repro.analysis src/          # standalone
    repro lint src/ --format json          # machine-readable (CI artifact)
    repro lint src/ --select R003          # one rule
    repro lint src/ --list-rules           # the rule table

Suppress a finding where the code is deliberately outside a contract::

    data = pickle.load(fh)  # reprolint: disable=R005 - trusted local snapshot

Adding a rule: subclass :class:`~repro.analysis.engine.Rule`, give it an
``id``/``name``/``description``, implement ``check_module`` (one file at
a time) or ``check_project`` (cross-file), and append it to
:func:`~repro.analysis.rules.default_rules`.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    Finding,
    LintReport,
    Project,
    Rule,
    SourceModule,
    lint_paths,
    load_project,
    resolve_rules,
    run_rules,
)
from repro.analysis.rules import default_rules


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """The lint argument surface (shared by ``repro lint`` and ``-m``)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="repo-specific static analysis (reprolint)",
        )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", nargs="+", default=None, metavar="RULE",
                        help="run only these rule ids (e.g. R001 R004)")
    parser.add_argument("--disable", nargs="+", default=None, metavar="RULE",
                        help="skip these rule ids")
    parser.add_argument("--output", default=None,
                        help="also write the report to this file")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def render_rule_table(rules: Optional[Sequence[Rule]] = None) -> str:
    rows = rules if rules is not None else default_rules()
    width = max(len(rule.name) for rule in rows)
    lines = [
        f"{rule.id}  {rule.name.ljust(width)}  {rule.description}"
        for rule in rows
    ]
    return "\n".join(lines)


def run_lint(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 = clean)."""
    args = build_lint_parser().parse_args(argv)
    return run_lint_from_args(args)


def _split_rule_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    # the pragma grammar is comma-separated (disable=R001,R002), so accept
    # commas on the CLI too alongside space-separated ids
    if values is None:
        return None
    return [rule for value in values for rule in value.split(",") if rule]


def run_lint_from_args(args: argparse.Namespace) -> int:
    """Run lint for parsed arguments (the ``repro lint`` hook)."""
    if args.list_rules:
        print(render_rule_table())  # noqa: T201 - CLI output
        return 0
    try:
        report = lint_paths(
            args.paths,
            select=_split_rule_ids(args.select),
            disable=_split_rule_ids(args.disable),
        )
    except ValueError as error:  # unknown rule id in --select/--disable
        print(f"error: {error}")  # noqa: T201 - CLI output
        return 2
    rendered = (
        report.render_json() if args.format == "json" else report.render_text()
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)  # noqa: T201 - CLI output
    return report.exit_code


__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceModule",
    "build_lint_parser",
    "default_rules",
    "lint_paths",
    "load_project",
    "render_rule_table",
    "resolve_rules",
    "run_lint",
    "run_lint_from_args",
    "run_rules",
]
