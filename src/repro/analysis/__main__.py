"""``python -m repro.analysis`` — run reprolint standalone."""

import sys

from repro.analysis import run_lint

if __name__ == "__main__":
    sys.exit(run_lint())
