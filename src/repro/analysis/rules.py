"""The repo-specific rules: the contracts this codebase actually lives by.

Every rule encodes an invariant that used to be enforced only by runtime
tests (or by reviewers remembering it).  See the README's "Static
analysis" section for the rule table and the pragma syntax; each rule's
docstring states the contract and where it came from.

==== ======================= ==========================================
R001 seed-discipline         no unseeded/derived-from-wall-clock RNGs
                             in library code outside ``rng.py``
R002 lock-guard-discipline   attributes written under ``self._lock``
                             are never mutated outside it
R003 protocol-op-parity      every op sent over the transport has a
                             handler, every handler has a sender
R004 exception-chaining      ``raise`` inside ``except`` uses ``from``
R005 pickle-boundary         ``pickle.load(s)`` only in the transport
R006 all-parity              ``__all__`` matches the public defs
R007 broad-except            ``except Exception`` must be deliberate
                             (pragma with a reason) or narrowed
R008 lock-order-inversion    the lock acquisition graph (incl.
                             cross-class edges) has no cycles
R009 blocking-under-lock     no blocking call (socket/queue/sleep/
                             join/result/subprocess/engine) under a lock
R010 lock-leak               bare ``.acquire()`` needs a ``finally``-
                             guaranteed ``.release()``
R011 schema-parity           keys written by ``to_state`` are read by
                             the paired ``from_state`` and vice versa
R012 default-drift           no ``.get(k, default)`` of keys the
                             paired writer always emits
R013 plain-data              state-dict values are JSON/numpy-plain or
                             nested ``to_state()`` calls
==== ======================= ==========================================

R008–R010 live in :mod:`repro.analysis.concurrency` (they share the
static lock model with the runtime lockdep harness) and R011–R013 in
:mod:`repro.analysis.schema` (they share the snapshot-schema model with
the runtime schema witness); both sets are imported lazily by
:func:`default_rules` to avoid a circular import.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, Rule, SourceModule

# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(tree: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _contains_call_to(node: ast.AST, names: Set[str]) -> bool:
    for call in iter_calls(node):
        name = dotted_name(call.func)
        if name is not None and name in names:
            return True
    return False


# ----------------------------------------------------------------------
# R001 — seed discipline
# ----------------------------------------------------------------------
class SeedDisciplineRule(Rule):
    """The bit-identity contract: all randomness flows from explicit seeds.

    Every estimator in this library is only reproducible because every
    stochastic component threads a seeded generator through
    :mod:`repro.rng`.  Library code must therefore never reach for an
    OS-seeded generator (``np.random.default_rng()`` with no argument),
    the legacy numpy global state (``np.random.seed`` / ``np.random.rand``
    …), the stdlib :mod:`random` module, or a seed derived from the wall
    clock.  ``rng.py`` itself is exempt — it is the one place the
    ``None`` → OS-seeded spelling is implemented.
    """

    id = "R001"
    name = "seed-discipline"
    description = (
        "no unseeded default_rng()/stdlib random/time-derived seeds in "
        "library code outside rng.py"
    )

    _LEGACY_NP = {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "shuffle", "permutation", "choice", "uniform", "normal",
    }
    _CLOCK_CALLS = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "datetime.now", "datetime.datetime.now", "datetime.utcnow",
        "datetime.datetime.utcnow",
    }
    _SEEDED_CTORS = {
        "np.random.default_rng", "numpy.random.default_rng", "default_rng",
        "np.random.seed", "numpy.random.seed",
        "np.random.RandomState", "numpy.random.RandomState",
        "ensure_rng", "random.Random", "random.seed",
    }

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        if module.basename == "rng.py":
            return []
        findings: List[Finding] = []
        imports_stdlib_random = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" and alias.asname is None:
                        imports_stdlib_random = True
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(
                        self.finding(
                            module, node,
                            "stdlib `random` import in library code — all "
                            "randomness must flow through repro.rng seeds",
                        )
                    )
        for call in iter_calls(module.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            if name in ("np.random.default_rng", "numpy.random.default_rng"):
                if not call.args and not call.keywords:
                    findings.append(
                        self.finding(
                            module, call,
                            "unseeded np.random.default_rng() in library code "
                            "— take a RandomState and use repro.rng.ensure_rng",
                        )
                    )
            elif name in (
                "np.random.RandomState", "numpy.random.RandomState"
            ) and not call.args and not call.keywords:
                findings.append(
                    self.finding(
                        module, call,
                        "unseeded np.random.RandomState() in library code",
                    )
                )
            elif name.startswith(("np.random.", "numpy.random.")):
                tail = name.rsplit(".", 1)[-1]
                if tail in self._LEGACY_NP:
                    findings.append(
                        self.finding(
                            module, call,
                            f"legacy numpy global-state RNG call `{name}` — "
                            "shared mutable state breaks seeded bit-identity",
                        )
                    )
            elif imports_stdlib_random and name.startswith("random."):
                findings.append(
                    self.finding(
                        module, call,
                        f"stdlib random call `{name}` in library code — all "
                        "randomness must flow through repro.rng seeds",
                    )
                )
            if name in self._SEEDED_CTORS and (
                any(_contains_call_to(arg, self._CLOCK_CALLS) for arg in call.args)
                or any(
                    _contains_call_to(kw.value, self._CLOCK_CALLS)
                    for kw in call.keywords
                )
            ):
                findings.append(
                    self.finding(
                        module, call,
                        f"time-derived seed passed to `{name}` — wall-clock "
                        "seeds are unreproducible by construction",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# R002 — lock-guard discipline
# ----------------------------------------------------------------------
_LOCK_ATTR_RE = re.compile(r"(?i)lock|cond|mutex|sema|seriali[sz]er")

#: method calls that mutate a container in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "appendleft", "popleft",
}


class LockGuardRule(Rule):
    """Lock-guard discipline for the concurrent serving layers.

    If a class ever writes ``self.x`` inside a ``with self._lock:``
    block (any ``self`` attribute whose name looks lock-like: ``_lock``,
    ``_cond``, ``_conn_lock``, ``_read_serialiser`` …), then ``x`` is a
    lock-guarded field and every *other* write to it must also hold the
    lock.  ``__init__``/``__new__`` are exempt — construction happens
    before the object is shared.  Writes counted: plain/augmented
    attribute assignment, subscript assignment, ``del``, and in-place
    container mutations (``append``/``pop``/``update`` …).
    """

    id = "R002"
    name = "lock-guard-discipline"
    description = (
        "attributes written under `with self._lock:` must never be "
        "mutated outside one"
    )

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # -- per-class analysis --------------------------------------------
    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> List[Finding]:
        # writes: (attr, node, under_lock, in_init)
        writes: List[Tuple[str, ast.AST, bool, bool]] = []

        def is_lock_ctx(item: ast.withitem) -> bool:
            ctx = item.context_expr
            return (
                isinstance(ctx, ast.Attribute)
                and isinstance(ctx.value, ast.Name)
                and ctx.value.id == "self"
                and _LOCK_ATTR_RE.search(ctx.attr) is not None
            )

        def self_attr(node: ast.AST) -> Optional[str]:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr
            return None

        def walk(node: ast.AST, under_lock: bool, in_init: bool) -> None:
            if isinstance(node, ast.ClassDef) and node is not cls:
                return  # nested classes analysed on their own
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                in_init = node.name in ("__init__", "__new__")
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(is_lock_ctx(item) for item in node.items):
                    under_lock = True
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = self_attr(target)
                    if attr is not None:
                        writes.append((attr, target, under_lock, in_init))
                    elif isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                        if attr is not None:
                            writes.append((attr, target, under_lock, in_init))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                    if attr is not None:
                        writes.append((attr, target, under_lock, in_init))
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute):
                    attr = self_attr(node.func.value)
                    if attr is not None and node.func.attr in _MUTATING_METHODS:
                        writes.append((attr, node, under_lock, in_init))
            for child in ast.iter_child_nodes(node):
                walk(child, under_lock, in_init)

        for child in ast.iter_child_nodes(cls):
            walk(child, False, False)

        guarded = {attr for attr, _node, under, _init in writes if under}
        # the lock attributes themselves are infrastructure, not data
        guarded = {attr for attr in guarded if _LOCK_ATTR_RE.search(attr) is None}
        findings = []
        for attr, node, under, in_init in writes:
            if attr in guarded and not under and not in_init:
                findings.append(
                    self.finding(
                        module, node,
                        f"`self.{attr}` is written under a lock elsewhere in "
                        f"class {cls.name} but mutated here without one",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# R003 — protocol op parity
# ----------------------------------------------------------------------
#: reply statuses travel on the same frames but are not request ops
_REPLY_STATUSES = {"ok", "error", "busy"}
#: methods whose first string-literal argument is a protocol op
_SENDER_METHODS = {"request", "send_request", "_request"}


class ProtocolParityRule(Rule):
    """Every op sent over the transport must be handled, and vice versa.

    Senders: ``conn.request("op", …)`` / ``handle.send_request("op", …)``
    / ``client._request("op", …)`` — plus ``conn.send("op", …)`` when
    the literal is not a reply status (``ok``/``error``/``busy``).

    Handlers: ``op_<name>`` methods on a dispatch class (the
    ``ShardWorker`` convention: ``handle`` resolves ``op`` strings with
    ``getattr(self, f"op_{op}")``) and explicit ``op == "name"`` /
    ``op != "name"`` comparisons (the server/worker loop convention) —
    the latter only in modules that actually *receive* frames (a
    ``.recv()``/``recv_message`` call site), so e.g. the change-log
    parser's ``op == "insert"`` comparisons do not register as protocol
    handlers.

    A sent op nobody handles is a request that can only produce
    ``unknown op`` errors at runtime; a handled op nobody sends is dead
    protocol surface that silently drifts.  The rule is skipped when the
    linted file set contains no handlers at all (partial scans cannot be
    assessed).
    """

    id = "R003"
    name = "protocol-op-parity"
    description = (
        "op literals sent via the transport must match a handler branch, "
        "and every handled op must have a sender"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        sent: Dict[str, Tuple[SourceModule, ast.AST]] = {}
        handled: Dict[str, Tuple[SourceModule, ast.AST]] = {}
        for module in project:
            receives_frames = False
            for call in iter_calls(module.tree):
                func = call.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "recv", "recv_message"
                ):
                    receives_frames = True
                if isinstance(func, ast.Name) and func.id == "recv_message":
                    receives_frames = True
                if not isinstance(func, ast.Attribute) or not call.args:
                    continue
                first = call.args[0]
                if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                    continue
                op = first.value
                if func.attr in _SENDER_METHODS:
                    sent.setdefault(op, (module, call))
                elif func.attr == "send" and op not in _REPLY_STATUSES:
                    sent.setdefault(op, (module, call))
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith("op_") and node.args.args:
                        # dispatch-method convention: op_<name>(self, payload)
                        if node.args.args[0].arg == "self":
                            handled.setdefault(node.name[3:], (module, node))
                elif isinstance(node, ast.Compare):
                    if (
                        receives_frames
                        and isinstance(node.left, ast.Name)
                        and node.left.id == "op"
                        and len(node.ops) == 1
                        and isinstance(node.ops[0], (ast.Eq, ast.NotEq))
                        and isinstance(node.comparators[0], ast.Constant)
                        and isinstance(node.comparators[0].value, str)
                    ):
                        handled.setdefault(
                            node.comparators[0].value, (module, node)
                        )
        if not handled:
            return []
        findings: List[Finding] = []
        for op, (module, node) in sorted(sent.items()):
            if op not in handled:
                findings.append(
                    self.finding(
                        module, node,
                        f"protocol op {op!r} is sent but no handler "
                        "(op_* method or `op == …` branch) exists for it",
                    )
                )
        if sent:
            for op, (module, node) in sorted(handled.items()):
                if op not in sent:
                    findings.append(
                        self.finding(
                            module, node,
                            f"protocol op {op!r} is handled but never sent — "
                            "dead protocol surface (or the sender drifted)",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# R004 — exception chaining
# ----------------------------------------------------------------------
class ExceptionChainingRule(Rule):
    """``raise`` inside ``except`` must chain (``from err`` / ``from None``).

    An unchained ``raise NewError(...)`` inside a handler attaches the
    original exception as implicit ``__context__`` with the misleading
    "during handling … another exception occurred" banner; chaining
    makes the causal relationship explicit (or suppresses it on
    purpose).  Bare ``raise`` (re-raise) is always fine.
    """

    id = "R004"
    name = "exception-chaining"
    description = "raise inside except must use `from err` or `from None`"

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []

        def walk(node: ast.AST, in_handler: bool) -> None:
            if isinstance(node, _FUNCTION_NODES):
                # a nested function's raise does not run in this handler
                in_handler = False
            if isinstance(node, ast.ExceptHandler):
                in_handler = True
            if (
                isinstance(node, ast.Raise)
                and in_handler
                and node.exc is not None
                and node.cause is None
            ):
                findings.append(
                    self.finding(
                        module, node,
                        "unchained raise inside an except block — add "
                        "`from err` (or `from None` to suppress the context)",
                    )
                )
            for child in ast.iter_child_nodes(node):
                walk(child, in_handler)

        walk(module.tree, False)
        return findings


# ----------------------------------------------------------------------
# R005 — pickle boundary
# ----------------------------------------------------------------------
class PickleBoundaryRule(Rule):
    """Pickle deserialisation stays behind the transport boundary.

    ``pickle.loads``/``pickle.load`` executes arbitrary callables, so
    the ROADMAP's wire-format migration (structured binary frames for
    untrusted links) only stays honest if deserialisation does not leak
    into new call sites.  The single allowed module is
    ``cluster/transport.py``; anything else (snapshot loaders included)
    must carry an explicit pragma naming its trust justification.
    """

    id = "R005"
    name = "pickle-boundary"
    description = "pickle.load/loads allowed only in cluster/transport.py"

    _ALLOWED_SUFFIX = "cluster/transport.py"

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        if module.path.endswith(self._ALLOWED_SUFFIX):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "pickle":
                for alias in node.names:
                    if alias.name in ("load", "loads"):
                        findings.append(
                            self.finding(
                                module, node,
                                f"`from pickle import {alias.name}` outside the "
                                "transport boundary",
                            )
                        )
        for call in iter_calls(module.tree):
            name = dotted_name(call.func)
            if name in ("pickle.load", "pickle.loads", "cPickle.load", "cPickle.loads"):
                findings.append(
                    self.finding(
                        module, call,
                        f"`{name}` outside cluster/transport.py — pickle "
                        "deserialisation is confined to the trusted-link "
                        "transport (pragma with the trust justification if "
                        "this site is deliberate)",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# R006 — __all__ parity
# ----------------------------------------------------------------------
class AllParityRule(Rule):
    """``__all__`` is exactly the public def/class surface, at parse time.

    Promotes the runtime ``test_public_api`` check to lint time: in any
    module declaring ``__all__``, (a) every listed name must be bound at
    module top level (def, class, assignment, or import), and (b) every
    public top-level ``def``/``class`` must be listed.  Modules without
    ``__all__`` are out of scope.
    """

    id = "R006"
    name = "all-parity"
    description = "__all__ must match the module's public defs exactly"

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        dunder_all: Optional[ast.AST] = None
        listed: Optional[List[str]] = None
        bound: Set[str] = set()
        public_defs: Dict[str, ast.AST] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
                if not node.name.startswith("_"):
                    public_defs[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            dunder_all = node
                            listed = self._literal_names(node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                    # `__all__ += [...]`: merge the extension if literal
                    extension = self._literal_names(node.value)
                    if listed is not None and extension is not None:
                        listed.extend(extension)
                    else:
                        listed = None  # dynamic __all__: out of scope
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        return []  # star imports defeat static binding
                    bound.add(alias.asname or alias.name)
        if dunder_all is None or listed is None:
            return []
        findings: List[Finding] = []
        for name in listed:
            if name not in bound and name != "__version__":
                findings.append(
                    self.finding(
                        module, dunder_all,
                        f"__all__ lists {name!r} but the module never binds it",
                    )
                )
        listed_set = set(listed)
        for name, node in sorted(public_defs.items()):
            if name not in listed_set:
                findings.append(
                    self.finding(
                        module, node,
                        f"public {type(node).__name__.replace('Def', '').lower()} "
                        f"`{name}` is missing from __all__ (underscore it or "
                        "export it)",
                    )
                )
        seen: Set[str] = set()
        for name in listed:
            if name in seen:
                findings.append(
                    self.finding(
                        module, dunder_all, f"__all__ lists {name!r} twice"
                    )
                )
            seen.add(name)
        return findings

    @staticmethod
    def _literal_names(node: ast.AST) -> Optional[List[str]]:
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None
        names: List[str] = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            names.append(element.value)
        return names


# ----------------------------------------------------------------------
# R007 — broad except
# ----------------------------------------------------------------------
class BroadExceptRule(Rule):
    """Catch-alls must be visibly deliberate.

    ``except Exception`` / ``except BaseException`` (and
    ``contextlib.suppress(Exception)``) around library logic hides real
    failures — the sites that *should* catch everything (a worker serve
    loop reporting errors to its peer, best-effort teardown) carry a
    pragma naming the reason, so reviewers and the linter can tell the
    deliberate catch-alls from accidental ones at a glance.
    """

    id = "R007"
    name = "broad-except"
    description = (
        "except Exception/BaseException must be narrowed or pragma-"
        "annotated as deliberate"
    )

    _BROAD = {"Exception", "BaseException"}

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is not None:
                names: List[Optional[str]] = []
                if isinstance(node.type, ast.Tuple):
                    names = [dotted_name(el) for el in node.type.elts]
                else:
                    names = [dotted_name(node.type)]
                broad = [name for name in names if name in self._BROAD]
                if broad:
                    findings.append(
                        self.finding(
                            module, node,
                            f"broad `except {broad[0]}` — narrow it to the "
                            "concrete failure types, or pragma-annotate why "
                            "this site must catch everything",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("contextlib.suppress", "suppress"):
                    for arg in node.args:
                        if dotted_name(arg) in self._BROAD:
                            findings.append(
                                self.finding(
                                    module, node,
                                    "broad `suppress(Exception)` — narrow it, "
                                    "or pragma-annotate why this site must "
                                    "swallow everything",
                                )
                            )
                            break
        return findings


# ----------------------------------------------------------------------
def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in id order."""
    # imported here, not at module top: concurrency.py reuses this
    # module's AST helpers, so a top-level import would be circular
    from repro.analysis.concurrency import (
        BlockingUnderLockRule,
        LockLeakRule,
        LockOrderRule,
    )
    from repro.analysis.schema import (
        DefaultDriftRule,
        PlainDataRule,
        SchemaParityRule,
    )

    return [
        SeedDisciplineRule(),
        LockGuardRule(),
        ProtocolParityRule(),
        ExceptionChainingRule(),
        PickleBoundaryRule(),
        AllParityRule(),
        BroadExceptRule(),
        LockOrderRule(),
        BlockingUnderLockRule(),
        LockLeakRule(),
        SchemaParityRule(),
        DefaultDriftRule(),
        PlainDataRule(),
    ]


__all__ = [
    "AllParityRule",
    "BroadExceptRule",
    "ExceptionChainingRule",
    "LockGuardRule",
    "PickleBoundaryRule",
    "ProtocolParityRule",
    "SeedDisciplineRule",
    "default_rules",
    "dotted_name",
    "iter_calls",
]
