"""Static concurrency model: lock-acquisition graphs lifted from the AST.

PR 8's lock-guard rule (R002) checks lock *usage* lexically — which
attributes are mutated under which lock.  This module models lock
*behaviour*: which locks each method acquires, what it calls while
holding them, and what the resulting process-wide acquisition graph
looks like.  Three rules ride on the model:

``R008`` **lock-order inversion** — the acquisition graph (including
cross-class edges resolved through attribute-type heuristics: when
``__init__`` assigns ``self._generations = GenerationManager(...)``,
a call to ``self._generations.read()`` under a held lock contributes
the locks ``GenerationManager.read`` acquires) contains a cycle
A→B, B→A.  A cycle is a potential deadlock even if no run has hit it.

``R009`` **blocking call under lock** — socket ``recv``/``sendall``,
blocking ``queue`` ops, ``sleep``, ``Thread.join``, ``Future.result``,
subprocess waits, or an engine ``estimate``/``ingest`` reached while a
lock is held.  ``Condition.wait`` on the *held* condition is exempt
(waiting releases it — that is the point of a condition variable);
waiting on anything else while holding a lock stalls every other
thread that needs it.

``R010`` **lock-leak** — a lock acquired via ``.acquire()`` whose
function has no ``finally``-guaranteed ``.release()`` (and no ``with``
on the same lock): one exception between the two and the lock is held
forever.

The same :class:`StaticLockModel` backs the runtime half of the
sanitizer: ``repro lockdep-report`` asserts that the lock-order graph
*observed* by :mod:`repro.analysis.lockdep` during an instrumented run
is a subgraph of this static model — an observed edge the static pass
missed is itself a finding (the model lost track of an acquisition
path).  Lock identities are class-qualified (``ClassName.attr``) on
both sides so the two halves speak the same names.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Project, Rule, SourceModule
from repro.analysis.rules import dotted_name

#: attribute names that look like synchronisation primitives even when
#: their construction site is outside the linted file set
_LOCK_NAME_RE = re.compile(r"(?i)lock|cond|mutex|sema|seriali[sz]er")

#: ``threading`` constructors that create a lock-like primitive
_LOCK_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "BoundedSemaphore": "semaphore",
}

#: method names that block the calling thread (receiver-independent)
_BLOCKING_METHODS = {
    "recv": "socket recv",
    "recv_into": "socket recv",
    "recv_reply": "transport recv",
    "recv_message": "transport recv",
    "sendall": "socket sendall",
    "accept": "socket accept",
    "connect": "socket connect",
    "communicate": "subprocess wait",
    "result": "Future.result",
    "estimate": "engine estimate",
    "ingest": "engine ingest",
}

#: ``.join()`` receivers that are threads/processes, not str.join
_THREADISH_RE = re.compile(r"(?i)thread|proc|worker|acceptor|writer|handler|child|pool")

#: ``.get()``/``.put()`` receivers that are queues, not dicts
_QUEUEISH_RE = re.compile(r"(?i)queue|_q\b|jobs|inbox|outbox")

#: module-level callables that block
_BLOCKING_DOTTED = {
    "time.sleep": "sleep",
    "sleep": "sleep",
    "select.select": "select",
    "socket.create_connection": "socket connect",
    "subprocess.run": "subprocess wait",
    "subprocess.call": "subprocess wait",
    "subprocess.check_call": "subprocess wait",
    "subprocess.check_output": "subprocess wait",
    "os.waitpid": "subprocess wait",
}


# ----------------------------------------------------------------------
# model dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockSite:
    """One interesting event inside a method body, with its location."""

    module: SourceModule
    node: ast.AST


@dataclass
class MethodModel:
    """What one method does with locks, before any cross-class resolution.

    ``held`` tuples name the ``self`` lock attributes held at the event
    (innermost last).  Call targets are ``("self", name)`` for
    intra-class calls, ``(attr, name)`` for calls through a ``self``
    attribute, and ``(None, name)`` for unresolvable receivers.
    """

    name: str
    #: (held-locks, acquired-lock-attr, site) for every `with self.X:`
    acquisitions: List[Tuple[Tuple[str, ...], str, LockSite]] = field(default_factory=list)
    #: (held-locks, receiver-kind, method-name, receiver-dotted, site)
    calls: List[Tuple[Tuple[str, ...], Optional[str], str, Optional[str], LockSite]] = field(
        default_factory=list
    )
    #: (held-locks, reason, call-name, site) for directly blocking calls
    blocking: List[Tuple[Tuple[str, ...], str, str, LockSite]] = field(default_factory=list)
    #: receivers of bare ``.acquire()`` calls (for R010)
    acquire_calls: List[Tuple[str, LockSite]] = field(default_factory=list)
    #: receivers released inside a ``finally`` block or a ``with``
    guaranteed_releases: Set[str] = field(default_factory=set)


@dataclass
class ClassModel:
    """One class's locks, attribute types, and per-method lock behaviour."""

    name: str
    module: SourceModule
    #: lock attribute → primitive kind ("lock"/"condition"/…)
    locks: Dict[str, str] = field(default_factory=dict)
    #: attribute → class name it is constructed from (``self.x = Foo()``)
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, MethodModel] = field(default_factory=dict)

    def lock_id(self, attr: str) -> str:
        return f"{self.name}.{attr}"

    def is_lock_attr(self, attr: str) -> bool:
        return attr in self.locks or _LOCK_NAME_RE.search(attr) is not None


@dataclass
class LockEdge:
    """A directed acquisition-order edge between two lock identities."""

    source: str
    target: str
    site: LockSite
    #: human-readable acquisition path ("EstimationServer.shutdown → …")
    via: str


class StaticLockModel:
    """The project-wide acquisition graph plus the per-class models."""

    def __init__(self, classes: Dict[str, ClassModel]) -> None:
        self.classes = classes
        self.edges: List[LockEdge] = []
        self._edge_keys: Set[Tuple[str, str]] = set()
        #: method → every lock id it may acquire, transitively
        self._acquired_by: Dict[Tuple[str, str], Set[str]] = {}
        #: method → (reason, name) blocking calls it may reach (no lock held)
        self._blocks_in: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        self._resolve()

    # -- resolution helpers --------------------------------------------
    def _target_class(self, cls: ClassModel, receiver: Optional[str]) -> Optional[ClassModel]:
        if receiver == "self":
            return cls
        if receiver is None:
            return None
        type_name = cls.attr_types.get(receiver)
        if type_name is None:
            return None
        return self.classes.get(type_name)

    def _transitive_acquires(
        self, cls: ClassModel, method: str, stack: Set[Tuple[str, str]]
    ) -> Set[str]:
        key = (cls.name, method)
        cached = self._acquired_by.get(key)
        if cached is not None:
            return cached
        if key in stack:
            return set()
        stack.add(key)
        model = cls.methods.get(method)
        acquired: Set[str] = set()
        if model is not None:
            for _held, attr, _site in model.acquisitions:
                acquired.add(cls.lock_id(attr))
            for _held, receiver, name, _dotted, _site in model.calls:
                target = self._target_class(cls, receiver)
                if target is not None and name in target.methods:
                    acquired |= self._transitive_acquires(target, name, stack)
        stack.discard(key)
        self._acquired_by[key] = acquired
        return acquired

    def _transitive_blocks(
        self, cls: ClassModel, method: str, stack: Set[Tuple[str, str]]
    ) -> Set[Tuple[str, str]]:
        """Blocking calls reachable from ``method`` even with no lock held."""
        key = (cls.name, method)
        cached = self._blocks_in.get(key)
        if cached is not None:
            return cached
        if key in stack:
            return set()
        stack.add(key)
        model = cls.methods.get(method)
        blocks: Set[Tuple[str, str]] = set()
        if model is not None:
            for _held, reason, name, _site in model.blocking:
                blocks.add((reason, name))
            for _held, receiver, name, _dotted, _site in model.calls:
                target = self._target_class(cls, receiver)
                if target is not None and name in target.methods:
                    blocks |= self._transitive_blocks(target, name, stack)
        stack.discard(key)
        self._blocks_in[key] = blocks
        return blocks

    def _add_edge(self, source: str, target: str, site: LockSite, via: str) -> None:
        if source == target:
            return  # reentrancy is R002/R010 territory, not ordering
        key = (source, target)
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        self.edges.append(LockEdge(source, target, site, via))

    def _resolve(self) -> None:
        for cls in self.classes.values():
            for model in cls.methods.values():
                via = f"{cls.name}.{model.name}"
                for held, attr, site in model.acquisitions:
                    for held_attr in held:
                        self._add_edge(
                            cls.lock_id(held_attr), cls.lock_id(attr), site, via
                        )
                for held, receiver, name, _dotted, site in model.calls:
                    if not held:
                        continue
                    target = self._target_class(cls, receiver)
                    if target is None or name not in target.methods:
                        continue
                    for acquired in sorted(
                        self._transitive_acquires(target, name, set())
                    ):
                        for held_attr in held:
                            self._add_edge(
                                cls.lock_id(held_attr),
                                acquired,
                                site,
                                f"{via} → {target.name}.{name}",
                            )

    # -- queries --------------------------------------------------------
    @property
    def edge_keys(self) -> Set[Tuple[str, str]]:
        return set(self._edge_keys)

    def lock_ids(self) -> Set[str]:
        ids: Set[str] = set()
        for cls in self.classes.values():
            for attr in cls.locks:
                ids.add(cls.lock_id(attr))
        for source, target in self._edge_keys:
            ids.add(source)
            ids.add(target)
        return ids

    def find_cycles(self) -> List[List[str]]:
        return find_cycles(self._edge_keys)

    def edges_in_cycles(self) -> List[LockEdge]:
        """Every recorded edge that participates in some cycle."""
        cyclic_nodes = {node for cycle in self.find_cycles() for node in cycle}
        chosen = []
        for edge in self.edges:
            if edge.source in cyclic_nodes and edge.target in cyclic_nodes:
                # an edge between two cyclic nodes is on a cycle iff the
                # target can reach the source again
                if _reaches(self._edge_keys, edge.target, edge.source):
                    chosen.append(edge)
        return chosen

    def blocking_under_lock(
        self,
    ) -> List[Tuple[ClassModel, MethodModel, Tuple[str, ...], str, str, LockSite]]:
        """All (class, method, held, reason, name, site) R009 candidates.

        Direct blocking calls made while a lock is held, plus calls into
        resolved methods that transitively reach a blocking call.
        ``Condition.wait`` on the held condition never reaches here —
        it is filtered out at collection time.
        """
        found = []
        for cls in self.classes.values():

            def stalling(held: Tuple[str, ...], cls: ClassModel = cls) -> Tuple[str, ...]:
                # a counting semaphore is an admission throttle, not a
                # mutex: blocking while holding a slot is its purpose
                return tuple(
                    attr for attr in held if cls.locks.get(attr) != "semaphore"
                )

            for model in cls.methods.values():
                for held, reason, name, site in model.blocking:
                    held = stalling(held)
                    if held:
                        found.append((cls, model, held, reason, name, site))
                for held, receiver, name, dotted, site in model.calls:
                    held = stalling(held)
                    if not held:
                        continue
                    target = self._target_class(cls, receiver)
                    if target is None or name not in target.methods:
                        continue
                    for reason, blocked_name in sorted(
                        self._transitive_blocks(target, name, set())
                    ):
                        found.append(
                            (
                                cls,
                                model,
                                held,
                                f"{reason} via {target.name}.{name}",
                                blocked_name,
                                site,
                            )
                        )
        return found


# ----------------------------------------------------------------------
# graph utilities (shared with the runtime lockdep half)
# ----------------------------------------------------------------------
def find_cycles(edges: Iterable[Tuple[str, str]]) -> List[List[str]]:
    """Elementary cycles of a directed graph, as ``[a, b, …, a]`` paths.

    Small graphs only (lock graphs have tens of nodes): DFS from every
    node inside its strongly-connected component.  Each cycle is
    reported once, rotated so its lexicographically smallest node leads.
    """
    graph: Dict[str, Set[str]] = {}
    for source, target in edges:
        graph.setdefault(source, set()).add(target)
        graph.setdefault(target, set())
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for neighbour in sorted(graph.get(node, ())):
            if neighbour == start:
                cycle = path[:]
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen:
                    seen.add(canonical)
                    cycles.append(list(canonical) + [canonical[0]])
            elif neighbour not in visited and neighbour > start:
                # only explore nodes ≥ start: each cycle found exactly
                # once, from its smallest node
                visited.add(neighbour)
                dfs(start, neighbour, path + [neighbour], visited)
                visited.discard(neighbour)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return cycles


def _reaches(edges: Set[Tuple[str, str]], source: str, goal: str) -> bool:
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
    frontier = [source]
    visited = {source}
    while frontier:
        node = frontier.pop()
        if node == goal:
            return True
        for neighbour in graph.get(node, ()):
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
    return False


# ----------------------------------------------------------------------
# AST → model extraction
# ----------------------------------------------------------------------
def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _scan_class_attributes(cls_node: ast.ClassDef, model: ClassModel) -> None:
    """Find lock attributes and attribute construction types anywhere in
    the class body (``__init__`` mostly, but any method counts)."""
    for node in ast.walk(cls_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            # a lock constructor anywhere in the value expression marks
            # the attribute (covers `x = None if … else threading.Lock()`)
            for call in ast.walk(value):
                if not isinstance(call, ast.Call):
                    continue
                name = dotted_name(call.func)
                if name in _LOCK_CTORS:
                    model.locks.setdefault(attr, _LOCK_CTORS[name])
                elif name is not None and call is value:
                    # `self.x = SomeClass(...)`: remember the class name so
                    # calls through self.x can be resolved cross-class
                    last = name.rsplit(".", 1)[-1]
                    if last[:1].isupper():
                        model.attr_types.setdefault(attr, last)


def _is_held_condition_wait(call: ast.Call, held: Tuple[str, ...]) -> bool:
    """``self._cond.wait(...)`` / ``wait_for`` while ``_cond`` is held."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr in ("wait", "wait_for")):
        return False
    receiver = _self_attr(func.value)
    return receiver is not None and receiver in held


def _classify_blocking(
    call: ast.Call, held: Tuple[str, ...]
) -> Optional[Tuple[str, str]]:
    """(reason, display-name) when ``call`` blocks the calling thread."""
    func = call.func
    dotted = dotted_name(func)
    if dotted is not None and dotted in _BLOCKING_DOTTED:
        return _BLOCKING_DOTTED[dotted], dotted
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    receiver = dotted_name(func.value)
    display = f"{receiver}.{method}" if receiver else method
    if method in _BLOCKING_METHODS:
        return _BLOCKING_METHODS[method], display
    if method == "join" and receiver is not None and _THREADISH_RE.search(receiver):
        return "Thread.join", display
    if method in ("get", "put") and receiver is not None and _QUEUEISH_RE.search(receiver):
        # non-blocking spellings have their own names (get_nowait/put_nowait)
        for keyword in call.keywords:
            if keyword.arg == "block" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value is False:
                    return None
        if call.args and isinstance(call.args[0], ast.Constant) and call.args[0].value is False:
            return None
        return "blocking queue op", display
    if method in ("wait", "wait_for"):
        if _is_held_condition_wait(call, held):
            return None  # waiting on the held condition releases it
        return "wait", display
    if method == "acquire":
        # blocking acquire of *another* primitive: ordering edge (R008
        # territory); acquire(blocking=False) polls and returns
        return None
    return None


def _extract_method(
    cls: ClassModel,
    func_node: "ast.FunctionDef | ast.AsyncFunctionDef",
    module: SourceModule,
) -> MethodModel:
    model = MethodModel(name=func_node.name)

    def finally_releases(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                ):
                    receiver = dotted_name(node.func.value)
                    if receiver is not None:
                        model.guaranteed_releases.add(receiver)

    def bare_acquires(stmt: ast.AST) -> List[str]:
        """Lock attrs acquired via bare ``self.X.acquire(...)`` in ``stmt``.

        A bare acquire extends the held-set for the *rest of the block*
        (flow-sensitively): ``if not self._slots.acquire(blocking=False):
        return`` followed by a try/finally is the semaphore idiom in the
        serve path, and the statements after it really do run with the
        primitive held.  Over-approximates failure branches — safe, since
        extra static edges only widen the model the runtime graph must be
        a subgraph of.
        """
        found: List[str] = []

        def scan(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    attr = _self_attr(node.func.value)
                    if attr is not None and cls.is_lock_attr(attr):
                        found.append(attr)
            for child in ast.iter_child_nodes(node):
                scan(child)

        scan(stmt)
        return found

    def walk_block(stmts: Sequence[ast.stmt], held: Tuple[str, ...]) -> Tuple[str, ...]:
        for stmt in stmts:
            walk(stmt, held)
            for attr in bare_acquires(stmt):
                if attr not in held:
                    held = held + (attr,)
        return held

    def walk(node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func_node:
            return  # nested defs run later, under their own held-set
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.Try,)):
            for handler in node.handlers:
                walk_block(handler.body, held)
            after_body = walk_block(node.body, held)
            walk_block(node.orelse, after_body)
            finally_releases(node.finalbody)
            walk_block(node.finalbody, after_body)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                ctx = item.context_expr
                attr = _self_attr(ctx)
                if attr is not None and cls.is_lock_attr(attr):
                    site = LockSite(module, ctx)
                    model.acquisitions.append((new_held, attr, site))
                    if attr not in new_held:
                        new_held = new_held + (attr,)
                    # `with` guarantees the release on every exit path
                    model.guaranteed_releases.add(f"self.{attr}")
                else:
                    # `with self.x.y():` etc: the context expression may
                    # contain calls — classify them under the current set
                    for call in ast.walk(item.context_expr):
                        if isinstance(call, ast.Call):
                            classify_call(call, held)
            walk_block(node.body, new_held)
            return
        if isinstance(node, ast.Call):
            classify_call(node, held)
        for child in ast.iter_child_nodes(node):
            walk(child, held)

    def classify_call(call: ast.Call, held: Tuple[str, ...]) -> None:
        func = call.func
        site = LockSite(module, call)
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire":
                receiver = dotted_name(func.value)
                if receiver is not None:
                    receiver_attr = _self_attr(func.value)
                    looks_locky = (
                        receiver_attr is not None and cls.is_lock_attr(receiver_attr)
                    ) or _LOCK_NAME_RE.search(receiver) is not None
                    if looks_locky:
                        model.acquire_calls.append((receiver, site))
                        if receiver_attr is not None:
                            # recorded even with an empty held-set so that
                            # _transitive_acquires sees bare-acquire methods
                            model.acquisitions.append((held, receiver_attr, site))
                return
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                # self.method(...)
                model.calls.append((held, "self", func.attr, dotted_name(func), site))
            else:
                receiver_attr = _self_attr(func.value)
                if receiver_attr is not None:
                    # self.attr.method(...) — resolved via attr_types
                    model.calls.append(
                        (held, receiver_attr, func.attr, dotted_name(func), site)
                    )
        blocking = _classify_blocking(call, held)
        if blocking is not None:
            reason, display = blocking
            model.blocking.append((held, reason, display, site))

    walk_block(func_node.body, ())
    return model


def build_lock_model(project: Project) -> StaticLockModel:
    """Extract every class's lock behaviour and resolve the global graph."""
    classes: Dict[str, ClassModel] = {}
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = ClassModel(name=node.name, module=module)
            _scan_class_attributes(node, cls)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[child.name] = _extract_method(cls, child, module)
            # first definition wins on name collisions across modules —
            # the heuristic is best-effort, and src/ has unique class names
            classes.setdefault(node.name, cls)
    return StaticLockModel(classes)


# ----------------------------------------------------------------------
# R008 — lock-order inversion
# ----------------------------------------------------------------------
class LockOrderRule(Rule):
    """The acquisition graph must be acyclic.

    Two threads taking the same pair of locks in opposite orders can
    each hold one and wait forever for the other.  The rule builds the
    project-wide acquisition graph (``with self._a:`` nesting plus
    cross-class acquisition through resolved method calls) and flags
    every edge that lies on a cycle, naming the cycle so both sites of
    an inversion are visible.
    """

    id = "R008"
    name = "lock-order-inversion"
    description = (
        "the lock acquisition graph (incl. cross-class edges) must not "
        "contain a cycle"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_lock_model(project)
        cycles = model.find_cycles()
        if not cycles:
            return []
        by_nodes: Dict[str, List[str]] = {}
        for cycle in cycles:
            for node in cycle:
                by_nodes.setdefault(node, cycle)
        findings = []
        for edge in model.edges_in_cycles():
            cycle = by_nodes.get(edge.source) or by_nodes.get(edge.target)
            findings.append(
                Finding(
                    rule=self.id,
                    message=(
                        f"lock-order inversion: acquiring {edge.target} while "
                        f"holding {edge.source} (in {edge.via}) closes the "
                        f"cycle {' → '.join(cycle)}"
                    ),
                    path=edge.site.module.path,
                    line=getattr(edge.site.node, "lineno", 1),
                    col=getattr(edge.site.node, "col_offset", 0),
                )
            )
        return findings


# ----------------------------------------------------------------------
# R009 — blocking call under lock
# ----------------------------------------------------------------------
class BlockingUnderLockRule(Rule):
    """Nothing that can block indefinitely runs while a lock is held.

    A blocked lock-holder stalls every thread that needs the lock: a
    socket ``recv`` under ``_conn_lock`` turns one slow peer into a
    server-wide outage.  Flagged while any lock is held: socket
    recv/sendall/accept, blocking ``queue`` get/put, ``sleep``,
    ``Thread.join``, ``Future.result``, subprocess waits, and engine
    ``estimate``/``ingest`` — directly or through a resolved method
    call.  ``Condition.wait`` on the held condition itself is exempt
    (it releases the lock while waiting).
    """

    id = "R009"
    name = "blocking-under-lock"
    description = (
        "no blocking call (socket/queue/sleep/join/Future.result/"
        "subprocess/engine estimate+ingest) while a lock is held"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_lock_model(project)
        findings = []
        for cls, method, held, reason, name, site in model.blocking_under_lock():
            held_ids = ", ".join(cls.lock_id(attr) for attr in held)
            findings.append(
                Finding(
                    rule=self.id,
                    message=(
                        f"blocking call `{name}` ({reason}) in "
                        f"{cls.name}.{method.name} while holding {held_ids} — "
                        "a stalled holder blocks every waiter"
                    ),
                    path=site.module.path,
                    line=getattr(site.node, "lineno", 1),
                    col=getattr(site.node, "col_offset", 0),
                )
            )
        return findings


# ----------------------------------------------------------------------
# R010 — lock leak
# ----------------------------------------------------------------------
class LockLeakRule(Rule):
    """Every bare ``.acquire()`` needs a ``finally``-guaranteed release.

    ``with lock:`` releases on every exit path; a bare ``acquire()``
    followed by an exception before ``release()`` holds the lock
    forever.  The rule flags ``.acquire()`` on a lock-like receiver in
    any function whose body has no ``release()`` on the same receiver
    inside a ``finally`` block (a ``with`` on the same lock also
    counts).  Hand-off patterns that release in another method need a
    pragma explaining the protocol.
    """

    id = "R010"
    name = "lock-leak"
    description = (
        "a lock acquired via .acquire() must be released in a finally "
        "block of the same function"
    )

    def check_module(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = ClassModel(name=node.name, module=module)
            _scan_class_attributes(node, cls)
            for child in node.body:
                if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                method = _extract_method(cls, child, module)
                for receiver, site in method.acquire_calls:
                    if receiver in method.guaranteed_releases:
                        continue
                    findings.append(
                        Finding(
                            rule=self.id,
                            message=(
                                f"`{receiver}.acquire()` in {node.name}."
                                f"{child.name} has no finally-guaranteed "
                                f"`{receiver}.release()` — an exception "
                                "in between leaks the lock"
                            ),
                            path=module.path,
                            line=getattr(site.node, "lineno", 1),
                            col=getattr(site.node, "col_offset", 0),
                        )
                    )
        return findings


__all__ = [
    "BlockingUnderLockRule",
    "ClassModel",
    "LockEdge",
    "LockOrderRule",
    "LockLeakRule",
    "LockSite",
    "MethodModel",
    "StaticLockModel",
    "build_lock_model",
    "find_cycles",
]
