"""Synthetic data substrate reproducing the paper's corpus characteristics.

The paper evaluates on DBLP (binary word vectors), NYT (TF-IDF news
articles) and PUBMED (TF-IDF abstracts).  Those corpora cannot be
redistributed, so this subpackage generates synthetic analogues with the
properties the experiments depend on: Zipfian token usage (highly skewed
pair-similarity distribution), matched average vector lengths, binary vs
TF-IDF weighting, and planted near-duplicate clusters so the join is
non-empty even at τ = 0.9.

See the README's "Reference" section for the paper artefacts these
corpora stand in for; :mod:`repro.datasets.profiles` documents the
per-profile fidelity substitutions.
"""

from repro.datasets.synthetic import (
    PlantedClusterSpec,
    SyntheticCorpus,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.datasets.profiles import (
    make_dblp_like,
    make_nyt_like,
    make_pubmed_like,
    profile_summary,
)

__all__ = [
    "PlantedClusterSpec",
    "SyntheticCorpus",
    "SyntheticCorpusConfig",
    "generate_corpus",
    "make_dblp_like",
    "make_nyt_like",
    "make_pubmed_like",
    "profile_summary",
]
