"""Presets mimicking the characteristics of the paper's three data sets.

The absolute sizes are scaled down (thousands instead of hundreds of
thousands of vectors) so that the exact ground-truth join can be computed
for every benchmark, but the *shape* characteristics the estimators care
about are preserved:

=========== ==========  =============  ======================  =========================
Profile     Weighting   Avg. features  Vocabulary              Planted structure
=========== ==========  =============  ======================  =========================
DBLP-like   binary      ≈14            ~8 tokens per vector    duplicates + topic groups
NYT-like    TF-IDF      ≈45            ~5 tokens per vector    duplicates + topic groups
PUBMED-like TF-IDF      ≈34            ~12 tokens per vector   sparse duplicates
=========== ==========  =============  ======================  =========================

Two planted tiers shape the pair-similarity distribution the way the
paper's real corpora behave (the reproduction's corpus substitutions):

* a **duplicate tier** — small clusters of exact / near-exact copies that
  populate the τ ≥ 0.8 join and land in the same LSH bucket (this is what
  makes ``P(H|T)`` large at high thresholds, Table 1), and
* a **topic tier** — larger clusters of moderately perturbed documents
  that populate the τ ≈ 0.3–0.6 join with enough mass that stratum-L
  sampling remains reliable there (the "low threshold" regime of §5.2).

The bulk of the corpus is Zipfian noise whose pairs sit near zero
similarity, reproducing the extreme skew of real similarity joins.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.datasets.synthetic import (
    PlantedClusterSpec,
    SyntheticCorpus,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.rng import RandomState


def make_dblp_like(
    num_vectors: int = 2000,
    *,
    random_state: RandomState = 7,
    **overrides,
) -> SyntheticCorpus:
    """DBLP-like corpus: short binary vectors (publication titles + authors).

    The real DBLP set has 794K binary vectors with an average of 14
    features over a 56K-word vocabulary; the synthetic analogue keeps the
    average length and binary weighting, scales the vocabulary with the
    collection, and plants duplicate-record clusters (the τ ≥ 0.8 join)
    plus topic clusters (the τ ≈ 0.3–0.6 join).
    """
    config_kwargs = dict(
        num_vectors=num_vectors,
        vocabulary_size=max(1000, 8 * num_vectors),
        zipf_exponent=0.9,
        mean_length=14.0,
        min_length=3,
        weighting="binary",
        planted_clusters=(
            PlantedClusterSpec(0.10, (2, 4), (0.0, 0.0, 0.0, 0.0, 0.05, 0.1)),
            PlantedClusterSpec(0.40, (25, 40), (0.3, 0.4, 0.5)),
        ),
    )
    config_kwargs.update(overrides)
    config = SyntheticCorpusConfig(**config_kwargs)
    return generate_corpus(config, random_state=random_state)


def make_nyt_like(
    num_vectors: int = 1500,
    *,
    random_state: RandomState = 11,
    **overrides,
) -> SyntheticCorpus:
    """NYT-like corpus: longer TF-IDF weighted vectors (news articles)."""
    config_kwargs = dict(
        num_vectors=num_vectors,
        vocabulary_size=max(2000, 5 * num_vectors),
        zipf_exponent=1.05,
        mean_length=60.0,
        min_length=10,
        weighting="tfidf",
        planted_clusters=(
            PlantedClusterSpec(0.10, (2, 4), (0.0, 0.0, 0.0, 0.02, 0.05)),
            PlantedClusterSpec(0.35, (20, 35), (0.3, 0.4, 0.5)),
        ),
    )
    config_kwargs.update(overrides)
    config = SyntheticCorpusConfig(**config_kwargs)
    return generate_corpus(config, random_state=random_state)


def make_pubmed_like(
    num_vectors: int = 1500,
    *,
    random_state: RandomState = 13,
    **overrides,
) -> SyntheticCorpus:
    """PUBMED-like corpus: TF-IDF abstracts, largely dissimilar documents.

    The paper notes PUBMED is "largely dissimilar" and uses a small
    ``k = 5`` for it; the analogue uses a larger vocabulary, fewer planted
    duplicates and a thinner topic tier so the high-similarity tail is
    sparser than in the other profiles.
    """
    config_kwargs = dict(
        num_vectors=num_vectors,
        vocabulary_size=max(3000, 12 * num_vectors),
        zipf_exponent=1.0,
        mean_length=40.0,
        min_length=8,
        weighting="tfidf",
        planted_clusters=(
            PlantedClusterSpec(0.05, (1, 2), (0.0, 0.02, 0.05)),
            PlantedClusterSpec(0.20, (15, 30), (0.4, 0.5, 0.6)),
        ),
    )
    config_kwargs.update(overrides)
    config = SyntheticCorpusConfig(**config_kwargs)
    return generate_corpus(config, random_state=random_state)


def profile_summary(corpus: SyntheticCorpus) -> Dict[str, float]:
    """Descriptive statistics of a generated corpus (used in reports/tests)."""
    collection = corpus.collection
    lengths = collection.nnz_per_row
    return {
        "num_vectors": float(collection.size),
        "dimension": float(collection.dimension),
        "avg_features": float(np.mean(lengths)),
        "min_features": float(np.min(lengths)),
        "max_features": float(np.max(lengths)),
        "total_pairs": float(collection.total_pairs),
        "num_base_documents": float(corpus.num_base_documents),
    }


__all__ = ["make_dblp_like", "make_nyt_like", "make_pubmed_like", "profile_summary"]
