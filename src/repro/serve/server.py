"""The estimation server: concurrent reads, one writer, bounded queues.

:class:`EstimationServer` wraps a :class:`GenerationManager` pair of
engines behind the cluster's framed-socket transport: one acceptor
thread, one handler thread per connection, and a single writer thread
that batches queued ingests into copy-on-write epoch commits.  The
protocol is the existing length-prefixed pickle protocol of
:mod:`repro.cluster.transport` (trusted links only; same ``hello``
handshake with optional token), with one addition: a ``busy`` reply
status.

Backpressure is explicit everywhere a request could otherwise buffer
without bound:

* **Writes** land in a bounded queue consumed by the writer thread.  A
  full queue answers ``busy`` with a ``retry_after`` hint instead of
  accepting work it cannot absorb.
* **Estimates** are capped by a semaphore of in-flight slots.  No free
  slot → ``busy``.
* During shutdown every new request is answered ``busy`` with
  ``reason="draining"`` while in-flight work completes.

Every write is acknowledged only after its epoch is *published* —
clients never get an ``ok`` for a row that could still be lost by a
clean shutdown.  Ops: ``estimate``, ``ingest``, ``flush``,
``describe``, ``stats``, ``ping``.

Observability: per-op latency histograms
(``serve_request_seconds{op=…}``), request counters
(``serve_requests_total{op=…, status=…}``), queue-depth and in-flight
gauges, and request-scoped spans — a client that ships a trace context
in the request meta gets the server-side spans back in the reply meta,
exactly like the cluster workers.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cluster.transport import (
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    describe_error,
    parse_address,
)
from repro.engine.engine import EstimateRequest
from repro.errors import ClusterError, ServeError, StrandedWritesError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import activate_trace_context, get_tracer, trace
from repro.serve.generations import GenerationManager
from repro.streaming.events import Checkpoint, Delete, Insert, event_from_dict
from repro.vectors import VectorCollection

_STOP = object()  # writer-queue sentinel


class _WriteTicket:
    """One client write request waiting for its epoch commit."""

    __slots__ = ("sources", "done", "applied", "error", "epoch")

    def __init__(self, sources: List[Any]) -> None:
        self.sources = sources
        self.done = threading.Event()
        self.applied = 0
        self.error: Optional[BaseException] = None
        self.epoch: Optional[int] = None


class EstimationServer:
    """A long-lived daemon serving concurrent estimates over one engine.

    Parameters
    ----------
    config:
        Engine configuration (``EngineConfig`` / dict / JSON path); the
        server builds the double-buffered engine pair from it.
    listen:
        ``(host, port)`` or ``"host:port"``; port 0 picks a free port
        (read the bound one from :attr:`address`).
    token:
        Optional shared secret checked in the ``hello`` handshake.
    queue_depth:
        Bound on queued-but-uncommitted write requests; a full queue
        answers ``busy``.
    max_estimates:
        Bound on in-flight estimate requests.
    epoch_events:
        Soft cap on sources batched into one epoch commit.
    retry_after:
        The hint (seconds) shipped with ``busy`` replies.
    grace_timeout:
        Upper bound on how long the writer waits for a reader to
        release a retired generation (the writer-starvation bound).
    metrics:
        Optional shared registry; fresh per server by default.
    """

    def __init__(
        self,
        config: Any,
        *,
        listen: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        token: Optional[str] = None,
        queue_depth: int = 256,
        max_estimates: int = 16,
        epoch_events: int = 512,
        retry_after: float = 0.05,
        grace_timeout: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValidationError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_estimates < 1:
            raise ValidationError(f"max_estimates must be >= 1, got {max_estimates}")
        if epoch_events < 1:
            raise ValidationError(f"epoch_events must be >= 1, got {epoch_events}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._listen = (
            parse_address(listen, allow_ephemeral=True)
            if isinstance(listen, str)
            else tuple(listen)
        )
        self._token = token
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._queue_depth = queue_depth
        self._estimate_slots = threading.BoundedSemaphore(max_estimates)
        self._epoch_events = epoch_events
        self._retry_after = float(retry_after)
        self._grace_timeout = float(grace_timeout)
        self._generations = GenerationManager(
            config, metrics=self.metrics, grace_timeout=grace_timeout
        )
        self.config = self._generations.config
        # reads against a backend without the "concurrent-read"
        # capability (the process cluster: one outstanding request per
        # worker socket) are serialised here; in-process backends run
        # them from every handler thread at once
        self._read_serialiser: Optional[threading.Lock] = (
            None
            if "concurrent-read" in self._generations.capabilities
            else threading.Lock()
        )
        self._listener: Optional[socket.socket] = None
        self.address: Optional[Tuple[str, int]] = None
        self._acceptor: Optional[threading.Thread] = None
        self._writer: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._connections: Dict[int, Connection] = {}
        self._conn_threads: List[threading.Thread] = []
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._stopping = threading.Event()
        self._closed = False
        #: rows recovered by a drain after a failed commit (also carried
        #: by the StrandedWritesError that shutdown() raises)
        self.stranded_rows: List[Any] = []
        # instrument handles cached up front, off the request hot path
        self._op_seconds: Dict[str, Any] = {}
        self._op_counters: Dict[Tuple[str, str], Any] = {}
        self._queue_gauge = self.metrics.gauge("serve_queue_depth")
        self._inflight_gauge = self.metrics.gauge("serve_inflight_estimates")
        self._connections_gauge = self.metrics.gauge("serve_connections")
        self._rejected = {
            reason: self.metrics.counter("serve_rejected_total", reason=reason)
            for reason in ("queue-full", "estimates-full", "draining")
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EstimationServer":
        """Bind, spawn the acceptor + writer threads, return ``self``."""
        if self._listener is not None:
            raise ServeError("server is already started")
        self._listener = socket.create_server(self._listen, backlog=128)
        self.address = self._listener.getsockname()[:2]
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-acceptor", daemon=True
        )
        self._acceptor.start()
        return self

    @property
    def epoch(self) -> int:
        return self._generations.epoch

    def __enter__(self) -> "EstimationServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, close.

        Every acknowledged write is already committed (acks follow epoch
        publication), so a clean drain strands nothing.  After a failed
        commit the engines are drained and the recovered rows surface as
        :class:`~repro.errors.StrandedWritesError` (also kept in
        :attr:`stranded_rows`) rather than disappearing with the daemon.
        """
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=10.0)
        if self._writer is not None and self._writer.is_alive():
            # the writer drains every ticket ahead of the sentinel, then
            # refuses stragglers; blocking put is safe — the consumer is
            # alive by the is_alive() check and never stops before _STOP
            self._queue.put(_STOP)
            self._writer.join(timeout=max(60.0, 2 * self._grace_timeout))
        self._refuse_leftover_tickets()
        with self._inflight_cond:
            deadline = time.monotonic() + 10.0
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # a stuck handler must not wedge shutdown
                self._inflight_cond.wait(remaining)
        with self._conn_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for conn in connections:
            conn.close()  # unblocks handler threads parked in recv()
        with self._conn_lock:
            # snapshot under the lock: the acceptor registers threads under
            # _conn_lock, so an unlocked iteration could race a late accept
            # (list mutation mid-iteration, or joining a thread the
            # acceptor has registered but not yet started)
            conn_threads = list(self._conn_threads)
        for thread in conn_threads:
            thread.join(timeout=10.0)
        try:
            self._generations.close()
        except StrandedWritesError as error:
            self.stranded_rows = list(error.pending_rows)
            raise

    def _refuse_leftover_tickets(self) -> None:
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                return
            if ticket is _STOP:
                continue
            ticket.error = ServeError("server is shutting down")
            ticket.done.set()

    # ------------------------------------------------------------------
    # writer thread
    # ------------------------------------------------------------------
    def _write_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is _STOP:
                break
            tickets = [ticket]
            batched = len(ticket.sources)
            stop_after = False
            while batched < self._epoch_events:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_after = True
                    break
                tickets.append(nxt)
                batched += len(nxt.sources)
            self._queue_gauge.set(float(self._queue.qsize()))
            try:
                results = self._generations.commit([t.sources for t in tickets])
            except BaseException as error:  # noqa: BLE001  # reprolint: disable=R007 - every waiting ticket must learn the commit failed or its client hangs
                for t in tickets:
                    t.error = error
                    t.done.set()
            else:
                epoch = self._generations.epoch
                for t, result in zip(tickets, results):
                    t.applied = result.applied
                    t.error = result.error
                    t.epoch = epoch
                    t.done.set()
            if stop_after:
                break
        self._refuse_leftover_tickets()

    # ------------------------------------------------------------------
    # acceptor + per-connection handlers
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _peer = self._listener.accept()
            except OSError:
                break  # listener closed: shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(client,),
                name="repro-serve-conn",
                daemon=True,
            )
            with self._conn_lock:
                # register *and start* under the lock: shutdown snapshots
                # this list under the same lock, so it can never observe a
                # registered-but-unstarted thread (join() would raise)
                self._conn_threads.append(thread)
                thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        conn = Connection(sock, timeout=None, metrics=self.metrics)
        try:
            op, payload, _meta = conn.recv()
            if op != "hello":
                raise ClusterError(f"expected 'hello', got {op!r}")
            self._check_hello(payload or {})
        except (ClusterError, ConnectionClosed) as error:
            if not isinstance(error, ConnectionClosed):
                try:
                    conn.send("error", describe_error(error))
                except ConnectionClosed:
                    pass
            conn.close()
            return
        try:
            conn.send(
                "ok",
                {
                    "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION,
                    "epoch": self._generations.epoch,
                    "backend": self.config.backend,
                },
            )
        except ConnectionClosed:
            conn.close()
            return
        key = id(conn)
        with self._conn_lock:
            self._connections[key] = conn
            self._connections_gauge.set(float(len(self._connections)))
        tracer = get_tracer()
        try:
            while True:
                try:
                    op, payload, request_meta = conn.recv()
                except ConnectionClosed:
                    return
                with self._inflight_cond:
                    self._inflight += 1
                try:
                    status, body, reply_meta = self._dispatch(
                        op, payload, request_meta, tracer
                    )
                finally:
                    with self._inflight_cond:
                        self._inflight -= 1
                        self._inflight_cond.notify_all()
                try:
                    conn.send(status, body, reply_meta)
                except ConnectionClosed:
                    return
        finally:
            conn.close()
            with self._conn_lock:
                self._connections.pop(key, None)
                self._connections_gauge.set(float(len(self._connections)))

    def _check_hello(self, payload: Dict[str, Any]) -> None:
        if int(payload.get("protocol", -1)) != PROTOCOL_VERSION:
            raise ClusterError(
                f"protocol mismatch: server speaks {PROTOCOL_VERSION}, "
                f"client sent {payload.get('protocol')!r}"
            )
        if self._token is not None and payload.get("token") != self._token:
            raise ClusterError("client presented a wrong or missing token")

    def _dispatch(
        self, op: str, payload: Any, request_meta: Dict[str, Any], tracer: Any
    ) -> Tuple[str, Any, Dict[str, Any]]:
        """Run one op under tracing/metrics; never raises."""
        trace_ctx = request_meta.get("trace")
        started = time.perf_counter()
        span = None
        try:
            if trace_ctx is not None:
                with activate_trace_context(trace_ctx):
                    with trace(f"serve.{op}") as span:
                        status, body = self._handle(op, payload)
                        if status != "ok":
                            span.set_attribute("status", status)
            else:
                status, body = self._handle(op, payload)
        except Exception as error:  # noqa: BLE001  # reprolint: disable=R007 - protocol boundary: every failure becomes an error reply to the client
            status, body = "error", describe_error(error)
            if span is not None:
                span.set_attribute("error", body["type"])
        elapsed = time.perf_counter() - started
        histogram = self._op_seconds.get(op)
        if histogram is None:
            histogram = self._op_seconds[op] = self.metrics.histogram(
                "serve_request_seconds", op=op
            )
        histogram.observe(elapsed)
        counter_key = (op, status)
        counter = self._op_counters.get(counter_key)
        if counter is None:
            counter = self._op_counters[counter_key] = self.metrics.counter(
                "serve_requests_total", op=op, status=status
            )
        counter.inc()
        reply_meta: Dict[str, Any] = {"seconds": elapsed}
        if trace_ctx is not None:
            drained = tracer.drain()
            mine = [s for s in drained if s.trace_id == trace_ctx["trace_id"]]
            tracer.adopt(s for s in drained if s.trace_id != trace_ctx["trace_id"])
            reply_meta["spans"] = [s.to_dict() for s in mine]
        return status, body, reply_meta

    # ------------------------------------------------------------------
    # op handlers
    # ------------------------------------------------------------------
    def _busy(self, reason: str) -> Tuple[str, Dict[str, Any]]:
        counter = self._rejected.get(reason)
        if counter is not None:
            counter.inc()
        return "busy", {"reason": reason, "retry_after": self._retry_after}

    def _handle(self, op: str, payload: Any) -> Tuple[str, Any]:
        if op == "estimate":
            return self._handle_estimate(payload)
        if op == "ingest":
            return self._handle_ingest(payload)
        if op == "flush":
            return self._handle_flush()
        if op == "describe":
            return self._handle_describe()
        if op == "stats":
            return self._handle_stats()
        if op == "ping":
            return "ok", {
                "pid": os.getpid(),
                "epoch": self._generations.epoch,
                "queue_depth": self._queue.qsize(),
            }
        raise ClusterError(f"unknown op {op!r}")

    def _handle_estimate(self, payload: Any) -> Tuple[str, Any]:
        if self._stopping.is_set():
            return self._busy("draining")
        if not self._estimate_slots.acquire(blocking=False):
            return self._busy("estimates-full")
        try:
            self._inflight_gauge.inc()
            request = EstimateRequest.from_dict(payload or {})
            with self._generations.read() as generation:
                if self._read_serialiser is not None:
                    with self._read_serialiser:
                        # serialising estimates is this lock's entire job:
                        # the serial read-mode trades throughput for strict
                        # per-engine determinism, so the engine call *is*
                        # the critical section
                        result = generation.engine.estimate(request)  # reprolint: disable=R009 - serial read-mode deliberately runs the estimate inside the serialiser lock
                else:
                    result = generation.engine.estimate(request)
                return "ok", {"result": result.to_dict(), "epoch": generation.epoch}
        finally:
            self._inflight_gauge.inc(-1.0)
            self._estimate_slots.release()

    def _sources_from_payload(self, payload: Any) -> List[Any]:
        if not isinstance(payload, dict):
            raise ValidationError("ingest payload must be a dict")
        unknown = sorted(set(payload) - {"events", "collection"})
        if unknown:
            raise ValidationError(f"unknown ingest field(s) {unknown}")
        sources: List[Any] = []
        collection = payload.get("collection")
        if collection is not None:
            if not isinstance(collection, VectorCollection):
                collection = VectorCollection(collection)
            sources.append(collection)
        for event in payload.get("events", ()):
            if isinstance(event, dict):
                event = event_from_dict(event)
            if not isinstance(event, (Insert, Delete, Checkpoint)):
                raise ValidationError(
                    f"cannot ingest {type(event).__name__}; expected change "
                    "events or a vector collection"
                )
            # one source per event: a rejected event fails alone instead
            # of leaving a half-applied multi-event source behind
            sources.append(event)
        if not sources:
            raise ValidationError("ingest payload carries no events or collection")
        return sources

    def _enqueue_and_wait(self, sources: List[Any]) -> Tuple[str, Any]:
        ticket = _WriteTicket(sources)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            return self._busy("queue-full")
        self._queue_gauge.set(float(self._queue.qsize()))
        if not ticket.done.wait(timeout=max(60.0, 2 * self._grace_timeout)):
            raise ServeError("the writer did not commit within the grace window")
        if ticket.error is not None:
            if isinstance(ticket.error, Exception):
                raise ticket.error
            raise ServeError(f"commit failed: {ticket.error!r}")
        return "ok", {"applied": ticket.applied, "epoch": ticket.epoch}

    def _handle_ingest(self, payload: Any) -> Tuple[str, Any]:
        if self._stopping.is_set():
            return self._busy("draining")
        return self._enqueue_and_wait(self._sources_from_payload(payload))

    def _handle_flush(self) -> Tuple[str, Any]:
        """A write barrier: commits (and publishes) everything queued."""
        if self._stopping.is_set():
            return self._busy("draining")
        return self._enqueue_and_wait([])

    def _handle_describe(self) -> Tuple[str, Any]:
        with self._generations.read() as generation:
            if self._read_serialiser is not None:
                with self._read_serialiser:
                    described = generation.engine.backend.describe()
            else:
                described = generation.engine.backend.describe()
            return "ok", {"describe": described, "epoch": generation.epoch,
                          "config": self.config.to_dict()}

    def _handle_stats(self) -> Tuple[str, Any]:
        """Serve-aware stats: the server surface + the stable engine's."""
        with self._generations.read() as generation:
            if self._read_serialiser is not None:
                with self._read_serialiser:
                    engine_stats = generation.engine.stats()
            else:
                engine_stats = generation.engine.stats()
            with self._conn_lock:
                connections = len(self._connections)
            server_stats = {
                "epoch": generation.epoch,
                "queue_depth": self._queue.qsize(),
                "queue_capacity": self._queue_depth,
                "connections": connections,
                "readers": self._generations.reader_count,
                "broken": self._generations.broken is not None,
                "pid": os.getpid(),
            }
            return "ok", {"server": server_stats, "engine": engine_stats}


__all__ = ["EstimationServer"]
