"""Estimation-as-a-service: a concurrent daemon over one engine.

The query-optimizer loop asks "how big is this similarity join?" many
times per second while the data keeps changing.  This package turns a
:class:`~repro.engine.JoinEstimationEngine` into that service:

* :mod:`~repro.serve.generations` — :class:`GenerationManager`, the
  copy-on-write epoch handoff giving snapshot-isolated, lock-free reads
  under a single batching writer (two same-seed engines, RCU-style
  publication, replay-based catch-up).
* :mod:`~repro.serve.server` — :class:`EstimationServer`, the daemon:
  framed-socket transport, a thread per connection, bounded write queue
  and estimate pool with explicit ``busy``/retry-after backpressure,
  per-request latency histograms and request-scoped spans, graceful
  drain on shutdown (``repro serve`` on the CLI).
* :mod:`~repro.serve.client` — :class:`ServeClient`, the blocking
  helper a planner embeds: ``ingest``/``estimate``/``flush``/``stats``
  with busy-retry and full :class:`~repro.engine.EstimateResult`
  reconstruction.

Reproducibility survives concurrency: a request's resolved seed rides
in its provenance, and the same seed against the same epoch returns the
same bits no matter how many clients are asking at once.
"""

from repro.serve.client import ServeClient, connect_with_retry
from repro.serve.generations import BatchResult, Generation, GenerationManager
from repro.serve.server import EstimationServer

__all__ = [
    "BatchResult",
    "EstimationServer",
    "Generation",
    "GenerationManager",
    "ServeClient",
    "connect_with_retry",
]
