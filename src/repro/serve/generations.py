"""Copy-on-write epoch handoff: snapshot-isolated reads under one writer.

The serving problem is read-mostly: many concurrent estimate requests,
one writer ingesting.  Estimates must never observe a half-applied
batch, and the streaming estimator's lazy reservoir repair must never
run concurrently with readers.  Locking the engine per request would
serialise the read path; instead the :class:`GenerationManager` keeps
**two** engines built from the *same* config (hence the same seeds —
identical event sequences produce bit-identical state) and hands them
off in epochs, RCU-style:

* Readers enter through :meth:`GenerationManager.read`, which pins the
  current **stable** generation with a refcount.  Every estimate inside
  the ``with`` block is served by an engine no writer will touch.
* The single writer calls :meth:`GenerationManager.commit` with the
  queued batches.  The batches are applied to the **pending** engine
  (invisible to readers), flushed, quiesced
  (:meth:`~repro.engine.JoinEstimationEngine.quiesce` runs deferred
  reservoir maintenance so reads stay read-only), and then *published*:
  the stable pointer swings to the pending engine under a short lock.
  Publication never waits for readers.
* The previous stable engine is now **retiring**: it still serves the
  readers that pinned it.  At the *start of the next commit* the writer
  waits for its refcount to drain (the RCU grace period — bounded by
  the longest in-flight request, which is the writer-starvation bound),
  then replays the just-committed batches into it so it becomes the
  next pending engine.  Every event is applied exactly twice, once per
  engine, in the same order — no state copying, ever.

A failed commit (e.g. a cluster transport failure mid-batch) marks the
manager **broken**: reads continue against the last published
generation, further commits are refused, and :meth:`close` drains the
buffered-but-unapplied rows from every engine *before* closing them so
the failure surfaces as :class:`~repro.errors.StrandedWritesError` with
the recoverable rows instead of losing them behind daemon exit.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence

from repro.engine.engine import JoinEstimationEngine
from repro.errors import ReproError, ServeError, StrandedWritesError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace


@dataclass
class Generation:
    """One published engine epoch, pinned by readers via a refcount."""

    engine: JoinEstimationEngine
    epoch: int
    #: number of readers currently inside ``read()`` (guarded by the
    #: manager's condition lock)
    refs: int = 0


@dataclass
class BatchResult:
    """Outcome of one queued write batch within a commit.

    ``applied`` counts mutations from this batch's sources; ``error``
    (a :class:`~repro.errors.ReproError`) is set when a source was
    rejected — earlier sources of the batch stay applied, the failing
    one and everything after it do not.
    """

    applied: int = 0
    error: Optional[BaseException] = None


@dataclass
class _Retired:
    """The previous stable generation plus the backlog it must replay."""

    generation: Generation
    backlog: List[Any] = field(default_factory=list)


class GenerationManager:
    """Double-buffered engine pair with RCU-style epoch publication.

    Thread contract: any number of threads may call :meth:`read`;
    exactly **one** thread calls :meth:`commit` and :meth:`close`.
    """

    def __init__(
        self,
        config: Any,
        *,
        metrics: Optional[MetricsRegistry] = None,
        grace_timeout: float = 30.0,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if grace_timeout <= 0:
            raise ServeError(f"grace_timeout must be positive, got {grace_timeout}")
        self.grace_timeout = float(grace_timeout)
        # both engines share one config object → identical seeds →
        # identical event sequences produce bit-identical estimator state
        stable_engine = JoinEstimationEngine(config, metrics=self.metrics).open()
        self.config = stable_engine.config
        pending_engine = JoinEstimationEngine(self.config, metrics=self.metrics).open()
        self._cond = threading.Condition()
        self._stable = Generation(stable_engine, epoch=0)
        self._pending: Optional[JoinEstimationEngine] = pending_engine
        self._retired: Optional[_Retired] = None
        self._broken: Optional[BaseException] = None
        self._closed = False
        self._epoch_gauge = self.metrics.gauge("serve_epoch")

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @contextmanager
    def read(self) -> Iterator[Generation]:
        """Pin the stable generation for the duration of the block."""
        with self._cond:
            if self._closed:
                raise ServeError("generation manager is closed")
            generation = self._stable
            generation.refs += 1
        try:
            yield generation
        finally:
            with self._cond:
                generation.refs -= 1
                if generation.refs == 0:
                    self._cond.notify_all()

    @property
    def epoch(self) -> int:
        with self._cond:
            return self._stable.epoch

    @property
    def capabilities(self) -> frozenset:
        """The backend's ``CAPABILITIES`` (both engines share a kind)."""
        return self._stable.engine.backend.CAPABILITIES

    @property
    def reader_count(self) -> int:
        """Readers currently pinning any generation (stable + retiring)."""
        with self._cond:
            count = self._stable.refs
            if self._retired is not None:
                count += self._retired.generation.refs
            return count

    @property
    def broken(self) -> Optional[BaseException]:
        """The commit failure that froze this manager, if any."""
        return self._broken

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def commit(self, batches: Sequence[Sequence[Any]]) -> List[BatchResult]:
        """Apply queued batches to the pending engine and publish an epoch.

        Each batch is one client request's sources (events or
        collections), applied in order; a source rejected by the engine
        fails its *batch* (recorded in that batch's
        :class:`BatchResult`) without poisoning the others — event
        validation happens before mutation, so the engines stay in
        lockstep.  Infrastructure failures (flush/commit errors) mark
        the manager broken and propagate.

        Returns one :class:`BatchResult` per batch.  The new epoch is
        visible to readers before this method returns.
        """
        if self._closed:
            raise ServeError("generation manager is closed")
        if self._broken is not None:
            raise ServeError(
                "a previous commit failed; the server is read-only"
            ) from self._broken
        try:
            with trace("serve.commit", batches=len(batches)):
                return self._commit(batches)
        except ServeError:
            raise
        except BaseException as error:  # reprolint: disable=R007 - any escape (even KeyboardInterrupt) leaves the engines out of lockstep; poison the manager before propagating
            self._broken = error
            raise

    def _commit(self, batches: Sequence[Sequence[Any]]) -> List[BatchResult]:
        self._recycle_retired()
        pending = self._pending
        assert pending is not None  # single-writer invariant
        results: List[BatchResult] = []
        applied_sources: List[Any] = []
        for batch in batches:
            result = BatchResult()
            for source in batch:
                try:
                    result.applied += pending.ingest(source)
                except ReproError as error:
                    # validation precedes mutation on the event paths, so
                    # a rejected source left the pending engine untouched
                    result.error = error
                    break
                applied_sources.append(source)
            results.append(result)
        pending.flush()
        pending.quiesce()
        with self._cond:
            retiring = self._stable
            self._stable = Generation(pending, epoch=retiring.epoch + 1)
            self._pending = None
            self._retired = _Retired(retiring, applied_sources)
        self._epoch_gauge.set(float(self._stable.epoch))
        return results

    def _recycle_retired(self) -> None:
        """Grace period + catch-up replay: retired engine → next pending.

        Runs at the start of a commit rather than the end so that
        publishing an epoch (and replying to the clients whose writes it
        carries) never waits on a slow reader; the grace period overlaps
        with the next batch accumulating in the server's queue.
        """
        retired = self._retired
        if retired is None:
            return
        deadline = time.monotonic() + self.grace_timeout
        with self._cond:
            while retired.generation.refs > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(
                        f"a reader pinned epoch {retired.generation.epoch} for "
                        f"longer than grace_timeout={self.grace_timeout}s; "
                        "cannot recycle the retired generation"
                    )
                self._cond.wait(remaining)
        engine = retired.generation.engine
        for source in retired.backlog:
            engine.ingest(source)
        engine.flush()
        engine.quiesce()
        # reader_count() and close() read _pending/_retired from other
        # threads; publish the recycled engine under the same lock that
        # _commit uses, or a stats probe can observe a torn handoff
        with self._cond:
            self._pending = engine
            self._retired = None

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close both engines; surface unapplied writes after a failure.

        The caller (the server's shutdown path) guarantees no reader is
        in flight.  After a failed commit the engines are drained via
        :meth:`~repro.engine.JoinEstimationEngine.drain_pending` *before*
        closing, and the recovered rows are raised in one
        :class:`~repro.errors.StrandedWritesError`.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            engines = [self._stable.engine]
            if self._pending is not None:
                engines.append(self._pending)
            if self._retired is not None:
                engines.append(self._retired.generation.engine)
        stranded: List[Any] = []
        errors: List[BaseException] = []
        for engine in engines:
            if self._broken is not None:
                # recover buffered rows before close() can discard them
                # (or raise from inside backend teardown)
                try:
                    stranded.extend(engine.drain_pending())
                except Exception as error:  # noqa: BLE001  # reprolint: disable=R007 - best-effort recovery sweep; collected and re-raised below
                    errors.append(error)
            try:
                engine.close()
            except StrandedWritesError as error:
                # close-path detection: a router noticed its own failed
                # commit; fold its recovered rows into ours
                stranded.extend(error.pending_rows)
            except Exception as error:  # noqa: BLE001  # reprolint: disable=R007 - keep closing the remaining engines; collected and re-raised below
                errors.append(error)
        if stranded:
            raise StrandedWritesError(
                f"serve shutdown recovered {len(stranded)} unapplied row(s) "
                "after a failed commit; re-route them to a fresh deployment",
                pending_rows=stranded,
            )
        if errors:
            raise errors[0]


__all__ = ["BatchResult", "Generation", "GenerationManager"]
