"""The serve client: a thin, blocking helper over the framed transport.

:class:`ServeClient` speaks the server's op set and hides the wire
details — the ``hello`` handshake, the ``busy``/retry dance, trace
propagation, and envelope reconstruction
(:class:`~repro.engine.EstimateResult` comes back as a real object,
provenance and all).

One client drives one connection and is **not** thread-safe; concurrent
callers each open their own (connections are cheap, and the server runs
one handler thread per connection).  The transport is the cluster's
pickle protocol: trusted links only, same trust model as the
process-cluster coordinator.

    with ServeClient("127.0.0.1:7071") as client:
        client.ingest(Insert({0: 1.0, 7: 0.5}))
        result = client.estimate(0.8, seed=42, mode="exact")

Backpressure: a ``busy`` reply is retried ``retries`` times, sleeping
the server's ``retry_after`` hint between attempts, then surfaces as
:class:`~repro.errors.ServerBusyError`.  Pass ``retries=0`` to see
every rejection (useful for load shedding at the caller).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.cluster.transport import (
    PROTOCOL_VERSION,
    Connection,
    parse_address,
    raise_remote_error,
)
from repro.engine.engine import EstimateRequest, EstimateResult
from repro.errors import ClusterError, ServeError, ServerBusyError, ValidationError
from repro.obs.tracing import current_trace_context, get_tracer
from repro.streaming.events import ChangeLog, Checkpoint, Delete, Insert
from repro.vectors import VectorCollection

_EVENT_TYPES = (Insert, Delete, Checkpoint)


class ServeClient:
    """One blocking connection to an :class:`EstimationServer`."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        token: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        retries: int = 8,
        connect_timeout: float = 30.0,
    ) -> None:
        if retries < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        self.address = parse_address(address) if isinstance(address, str) else tuple(address)
        self.retries = retries
        sock = socket.create_connection(self.address, timeout=connect_timeout)
        self._conn = Connection(sock, timeout=timeout)
        hello: Dict[str, Any] = {"protocol": PROTOCOL_VERSION}
        if token is not None:
            hello["token"] = token
        welcome = self._conn.request("hello", hello, context="serve hello")
        #: the server process id and engine backend, from the handshake
        self.server_pid: int = welcome.get("pid")
        self.server_backend: str = welcome.get("backend")
        #: the latest engine epoch observed in any reply
        self.last_epoch: int = welcome.get("epoch", 0)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._conn.closed

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def _request(
        self, op: str, payload: Any = None, *, retries: Optional[int] = None
    ) -> Any:
        """One round trip with busy-retry and trace propagation."""
        budget = self.retries if retries is None else retries
        meta: Optional[Dict[str, Any]] = None
        trace_ctx = current_trace_context()
        if trace_ctx is not None:
            meta = {"trace": trace_ctx}
        attempt = 0
        while True:
            self._conn.send(op, payload, meta)
            status, body, reply_meta = self._conn.recv()
            if trace_ctx is not None and reply_meta.get("spans"):
                get_tracer().adopt(reply_meta["spans"])
            if status == "ok":
                epoch = body.get("epoch") if isinstance(body, dict) else None
                if epoch is not None:
                    self.last_epoch = int(epoch)
                return body
            if status == "error":
                raise_remote_error(body, context=f"serve op {op!r}")
            if status == "busy":
                retry_after = float(body.get("retry_after", 0.0))
                if attempt < budget:
                    attempt += 1
                    if retry_after > 0:
                        time.sleep(retry_after)
                    continue
                raise ServerBusyError(
                    f"server rejected {op!r} ({body.get('reason', 'busy')}) "
                    f"after {attempt + 1} attempt(s)",
                    retry_after=retry_after,
                )
            raise ClusterError(f"serve op {op!r}: unexpected reply status {status!r}")

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def estimate(
        self,
        request: Union[EstimateRequest, float, None] = None,
        *,
        threshold: Optional[float] = None,
        mode: str = "auto",
        seed: Optional[int] = None,
        estimator: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> EstimateResult:
        """Serve one estimate; same spellings as ``engine.estimate``.

        The resolved per-request ``seed`` rides in the provenance, so the
        same seed against the same epoch reproduces the value bit-for-bit
        no matter how many clients are asking concurrently.
        """
        if isinstance(request, EstimateRequest):
            req = request
        else:
            if request is not None:
                if threshold is not None:
                    raise ValidationError(
                        "threshold given both positionally and by keyword"
                    )
                threshold = float(request)
            if threshold is None:
                raise ValidationError("an estimate needs a threshold")
            req = EstimateRequest(threshold, mode=mode, seed=seed, estimator=estimator)
        body = self._request("estimate", req.to_dict(), retries=retries)
        return EstimateResult.from_dict(body["result"])

    def ingest(
        self,
        source: Union[VectorCollection, ChangeLog, Iterable[Any], Insert, Delete, Checkpoint],
        *,
        retries: Optional[int] = None,
    ) -> int:
        """Ship events (or a collection) to the writer; returns applied count.

        The ``ok`` reply arrives only after the write's epoch is
        published — an acknowledged event is immediately visible to
        every subsequent estimate, from any connection.
        """
        payload: Dict[str, Any]
        if isinstance(source, VectorCollection):
            payload = {"collection": source}
        elif isinstance(source, _EVENT_TYPES):
            payload = {"events": [source]}
        elif isinstance(source, (ChangeLog, Iterable)):
            payload = {"events": list(source)}
        else:
            raise ValidationError(
                f"cannot ingest {type(source).__name__}; expected a "
                "VectorCollection, a change event, or an iterable of events"
            )
        body = self._request("ingest", payload, retries=retries)
        return int(body["applied"])

    def flush(self, *, retries: Optional[int] = None) -> int:
        """Write barrier: commit everything queued; returns the new epoch."""
        body = self._request("flush", retries=retries)
        return int(body["epoch"])

    def describe(self) -> Dict[str, Any]:
        return self._request("describe")

    def stats(self) -> Dict[str, Any]:
        """Serve-aware stats: ``{"server": {...}, "engine": {...}}``."""
        return self._request("stats")

    def ping(self) -> Dict[str, Any]:
        return self._request("ping")


def connect_with_retry(
    address: Union[str, Tuple[str, int]],
    *,
    token: Optional[str] = None,
    timeout: Optional[float] = 60.0,
    retries: int = 8,
    deadline: float = 30.0,
) -> ServeClient:
    """Connect to a server that may still be binding (e.g. just spawned)."""
    stop_at = time.monotonic() + deadline
    delay = 0.05
    while True:
        try:
            return ServeClient(address, token=token, timeout=timeout, retries=retries)
        except OSError:
            if time.monotonic() >= stop_at:
                raise ServeError(
                    f"could not connect to {address!r} within {deadline}s"
                ) from None
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


__all__ = ["ServeClient", "connect_with_retry"]
