"""Length-prefixed pickle framing for the coordinator ↔ worker protocol.

One frame is an 8-byte big-endian length followed by that many bytes of
pickle.  A message is the tuple ``(op, payload)`` where ``op`` is a short
string and ``payload`` a dict whose values are exactly the objects the
library already serialises elsewhere — prepared-batch slices (ids / CSR
rows / signatures), :meth:`MutableLSHIndex.to_state` snapshots, and
:func:`split_index_state` migration payloads — so the wire format is the
snapshot substrate, not a second serialisation scheme.

Replies reuse the same frames: ``("ok", result)`` or ``("error",
payload)`` where the payload carries the worker-side exception (the
exception object itself when it is one of the library's own
:class:`~repro.errors.ReproError` types, so e.g. an
:class:`~repro.errors.InsufficientSampleError` raised inside a worker
surfaces as the same type at the coordinator).

Trust model: pickle deserialisation executes arbitrary callables, so the
transport is for *trusted* links only — workers the coordinator spawned
itself, or workers an operator started on machines they control, guarded
by the shared-token handshake.  It is not a public network protocol.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import ClusterError, ReproError, ValidationError, WorkerCrashError

#: wire protocol version; bumped on incompatible frame/op changes
PROTOCOL_VERSION = 1

#: refuse frames beyond this size (corrupt length prefix / runaway state)
MAX_FRAME_BYTES = 4 << 30

_HEADER = struct.Struct(">Q")


class ConnectionClosed(WorkerCrashError):
    """The peer closed (or reset) the connection mid-protocol."""


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` into a ``(host, port)`` pair."""
    if not isinstance(address, str) or ":" not in address:
        raise ValidationError(
            f"worker address must look like 'host:port', got {address!r}"
        )
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"worker address must end in an integer port, got {address!r}"
        ) from None
    if not host or not 0 < port < 65536:
        raise ValidationError(f"invalid worker address {address!r}")
    return host, port


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed after {count - remaining} of {count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, op: str, payload: Any) -> None:
    """Frame and send one ``(op, payload)`` message."""
    body = pickle.dumps((op, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"refusing to send a {len(body)}-byte frame (> {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_message(sock: socket.socket) -> Tuple[str, Any]:
    """Receive one framed ``(op, payload)`` message (blocking)."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (> {MAX_FRAME_BYTES}); "
            "corrupt stream or protocol mismatch"
        )
    body = _recv_exactly(sock, int(length))
    message = pickle.loads(body)
    if not (isinstance(message, tuple) and len(message) == 2 and isinstance(message[0], str)):
        raise ClusterError(f"malformed frame: expected (op, payload), got {type(message)}")
    return message


def describe_error(error: BaseException) -> Dict[str, Any]:
    """A reply payload describing a worker-side exception.

    Library exceptions travel as objects (they are plain, picklable
    types of our own), anything else as text — unpickling arbitrary
    third-party exception classes at the coordinator is not worth the
    coupling.
    """
    import traceback

    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }
    if isinstance(error, ReproError):
        try:
            pickle.dumps(error)
        except Exception:
            pass
        else:
            payload["exception"] = error
    return payload


def raise_remote_error(payload: Dict[str, Any], *, context: str) -> None:
    """Re-raise a :func:`describe_error` payload at the coordinator."""
    exception = payload.get("exception")
    if isinstance(exception, ReproError):
        raise exception
    raise ClusterError(
        f"{context}: worker failed with {payload.get('type')}: "
        f"{payload.get('message')}\n--- worker traceback ---\n"
        f"{payload.get('traceback', '').rstrip()}"
    )


class Connection:
    """One framed, request/response socket to a peer.

    The coordinator keeps at most one outstanding request per
    connection; :meth:`send` / :meth:`recv` are exposed separately so a
    batch commit can be *pipelined* — send to every worker first, then
    collect every reply — which is where the multi-process parallelism
    of the ingest path comes from.
    """

    def __init__(self, sock: socket.socket, *, timeout: Optional[float] = None):
        self._sock = sock
        sock.settimeout(timeout)

    @property
    def closed(self) -> bool:
        return self._sock is None

    def set_timeout(self, timeout: Optional[float]) -> None:
        """Adjust the per-operation timeout (e.g. short shutdown grace)."""
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def send(self, op: str, payload: Any = None) -> None:
        if self._sock is None:
            raise ConnectionClosed("connection is closed")
        try:
            send_message(self._sock, op, payload)
        except (OSError, ValueError) as error:
            raise ConnectionClosed(f"send failed: {error}") from error

    def recv(self) -> Tuple[str, Any]:
        if self._sock is None:
            raise ConnectionClosed("connection is closed")
        try:
            return recv_message(self._sock)
        except socket.timeout as error:
            raise WorkerCrashError(
                "timed out waiting for a worker reply (worker hung or overloaded)"
            ) from error
        except ConnectionClosed:
            raise
        except (OSError, ValueError, pickle.UnpicklingError, EOFError) as error:
            raise ConnectionClosed(f"receive failed: {error}") from error

    def recv_reply(self, *, context: str) -> Any:
        """Receive one reply frame; unwrap ``ok`` or re-raise ``error``."""
        status, payload = self.recv()
        if status == "ok":
            return payload
        if status == "error":
            raise_remote_error(payload, context=context)
        raise ClusterError(f"{context}: unexpected reply status {status!r}")

    def request(self, op: str, payload: Any = None, *, context: str = "") -> Any:
        """One synchronous round trip: send ``op``, await the reply."""
        self.send(op, payload)
        return self.recv_reply(context=context or f"op {op!r}")

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "Connection",
    "ConnectionClosed",
    "parse_address",
    "send_message",
    "recv_message",
    "describe_error",
    "raise_remote_error",
]
