"""Length-prefixed pickle framing for the coordinator ↔ worker protocol.

One frame is an 8-byte big-endian length followed by that many bytes of
pickle.  A message is the tuple ``(op, payload, meta)`` where ``op`` is
a short string, ``payload`` a dict whose values are exactly the objects
the library already serialises elsewhere — prepared-batch slices (ids /
CSR rows / signatures), :meth:`MutableLSHIndex.to_state` snapshots, and
:func:`split_index_state` migration payloads — so the wire format is the
snapshot substrate, not a second serialisation scheme.  ``meta`` is an
optional out-of-band envelope dict that never carries data the op
handler needs: requests use it to propagate the trace context
(``{"trace": {"trace_id", "span_id"}}``), replies to carry op timing
(``{"seconds": ...}``) and finished worker spans (``{"spans": [...]}``).
Two-element ``(op, payload)`` frames are still accepted on receive with
an empty meta, and a ``None`` meta is encoded as the legacy 2-tuple, so
payload-only exchanges are byte-identical to protocol version 1.

Replies reuse the same frames: ``("ok", result, meta)`` or ``("error",
payload, meta)`` where the payload carries the worker-side exception
(the exception object itself when it is one of the library's own
:class:`~repro.errors.ReproError` types, so e.g. an
:class:`~repro.errors.InsufficientSampleError` raised inside a worker
surfaces as the same type at the coordinator).

Trust model: pickle deserialisation executes arbitrary callables, so the
transport is for *trusted* links only — workers the coordinator spawned
itself, or workers an operator started on machines they control, guarded
by the shared-token handshake.  It is not a public network protocol.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import ClusterError, ReproError, ValidationError, WorkerCrashError

#: wire protocol version; bumped on incompatible frame/op changes.
#: 2: messages gained an optional third ``meta`` element (trace context
#: on requests; op timing and spans on replies).
PROTOCOL_VERSION = 2

#: refuse frames beyond this size (corrupt length prefix / runaway state)
MAX_FRAME_BYTES = 4 << 30

_HEADER = struct.Struct(">Q")


class ConnectionClosed(WorkerCrashError):
    """The peer closed (or reset) the connection mid-protocol."""


def parse_address(address: str, *, allow_ephemeral: bool = False) -> Tuple[str, int]:
    """Parse ``"host:port"`` into a ``(host, port)`` pair.

    ``allow_ephemeral`` admits port 0 — meaningful only for *listen*
    addresses (bind to a free port); connecting to port 0 is never valid.
    """
    if not isinstance(address, str) or ":" not in address:
        raise ValidationError(
            f"worker address must look like 'host:port', got {address!r}"
        )
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"worker address must end in an integer port, got {address!r}"
        ) from None
    if not host or not (0 if allow_ephemeral else 1) <= port < 65536:
        raise ValidationError(f"invalid worker address {address!r}")
    return host, port


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed after {count - remaining} of {count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_message(op: str, payload: Any, meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Frame one message: header + pickled ``(op, payload[, meta])``.

    An empty/absent meta encodes as the 2-tuple form, keeping frames
    without envelope data identical to protocol version 1.
    """
    if meta:
        body = pickle.dumps((op, payload, meta), protocol=pickle.HIGHEST_PROTOCOL)
    else:
        body = pickle.dumps((op, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"refusing to send a {len(body)}-byte frame (> {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


def decode_message(body: bytes) -> Tuple[str, Any, Dict[str, Any]]:
    """Decode one frame body into ``(op, payload, meta)``; meta defaults ``{}``."""
    message = pickle.loads(body)
    if not (
        isinstance(message, tuple)
        and len(message) in (2, 3)
        and isinstance(message[0], str)
    ):
        raise ClusterError(
            f"malformed frame: expected (op, payload[, meta]), got {type(message)}"
        )
    if len(message) == 2:
        return message[0], message[1], {}
    op, payload, meta = message
    if meta is None:
        meta = {}
    elif not isinstance(meta, dict):
        raise ClusterError(f"malformed frame: meta must be a dict, got {type(meta)}")
    return op, payload, meta


def send_message(
    sock: socket.socket, op: str, payload: Any, meta: Optional[Dict[str, Any]] = None
) -> int:
    """Frame and send one message; returns the bytes put on the wire."""
    frame = encode_message(op, payload, meta)
    sock.sendall(frame)
    return len(frame)


def _recv_frame(sock: socket.socket) -> Tuple[int, Tuple[str, Any, Dict[str, Any]]]:
    """Receive one frame; returns (wire_bytes, decoded message)."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (> {MAX_FRAME_BYTES}); "
            "corrupt stream or protocol mismatch"
        )
    body = _recv_exactly(sock, int(length))
    return _HEADER.size + int(length), decode_message(body)


def recv_message(sock: socket.socket) -> Tuple[str, Any, Dict[str, Any]]:
    """Receive one framed ``(op, payload, meta)`` message (blocking)."""
    return _recv_frame(sock)[1]


def describe_error(error: BaseException) -> Dict[str, Any]:
    """A reply payload describing a worker-side exception.

    Library exceptions travel as objects (they are plain, picklable
    types of our own), anything else as text — unpickling arbitrary
    third-party exception classes at the coordinator is not worth the
    coupling.
    """
    import traceback

    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }
    if isinstance(error, ReproError):
        try:
            pickle.dumps(error)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            # unpicklable payload on the exception: ship type/message/
            # traceback only and let the peer re-raise a generic copy
            pass
        else:
            payload["exception"] = error
    return payload


def raise_remote_error(payload: Dict[str, Any], *, context: str) -> None:
    """Re-raise a :func:`describe_error` payload at the coordinator."""
    exception = payload.get("exception")
    if isinstance(exception, ReproError):
        raise exception
    raise ClusterError(
        f"{context}: worker failed with {payload.get('type')}: "
        f"{payload.get('message')}\n--- worker traceback ---\n"
        f"{payload.get('traceback', '').rstrip()}"
    )


class Connection:
    """One framed, request/response socket to a peer.

    The coordinator keeps at most one outstanding request per
    connection; :meth:`send` / :meth:`recv` are exposed separately so a
    batch commit can be *pipelined* — send to every worker first, then
    collect every reply — which is where the multi-process parallelism
    of the ingest path comes from.

    When a :class:`~repro.obs.MetricsRegistry` is attached, the
    connection counts frames and bytes in each direction
    (``transport_frames_total`` / ``transport_bytes_total`` labelled by
    ``direction``).  :attr:`last_meta` holds the meta envelope of the
    most recently received reply — set *before* status unwrapping, so
    timing survives even error replies.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        timeout: Optional[float] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self._sock = sock
        sock.settimeout(timeout)
        self.last_meta: Dict[str, Any] = {}
        if metrics is not None:
            self._frames_out = metrics.counter("transport_frames_total", direction="out")
            self._frames_in = metrics.counter("transport_frames_total", direction="in")
            self._bytes_out = metrics.counter("transport_bytes_total", direction="out")
            self._bytes_in = metrics.counter("transport_bytes_total", direction="in")
        else:
            self._frames_out = self._frames_in = None
            self._bytes_out = self._bytes_in = None

    @property
    def closed(self) -> bool:
        return self._sock is None

    def set_timeout(self, timeout: Optional[float]) -> None:
        """Adjust the per-operation timeout (e.g. short shutdown grace)."""
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def send(
        self, op: str, payload: Any = None, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        if self._sock is None:
            raise ConnectionClosed("connection is closed")
        try:
            sent = send_message(self._sock, op, payload, meta)
        except (OSError, ValueError) as error:
            raise ConnectionClosed(f"send failed: {error}") from error
        if self._frames_out is not None:
            self._frames_out.inc()
            self._bytes_out.inc(sent)

    def recv(self) -> Tuple[str, Any, Dict[str, Any]]:
        if self._sock is None:
            raise ConnectionClosed("connection is closed")
        try:
            wire_bytes, (op, payload, meta) = _recv_frame(self._sock)
        except socket.timeout as error:
            raise WorkerCrashError(
                "timed out waiting for a worker reply (worker hung or overloaded)"
            ) from error
        except ConnectionClosed:
            raise
        except (OSError, ValueError, pickle.UnpicklingError, EOFError) as error:
            raise ConnectionClosed(f"receive failed: {error}") from error
        if self._frames_in is not None:
            self._frames_in.inc()
            self._bytes_in.inc(wire_bytes)
        return op, payload, meta

    def recv_reply(self, *, context: str) -> Any:
        """Receive one reply frame; unwrap ``ok`` or re-raise ``error``."""
        self.last_meta = {}  # never leak a previous reply's envelope
        status, payload, meta = self.recv()
        self.last_meta = meta
        if status == "ok":
            return payload
        if status == "error":
            raise_remote_error(payload, context=context)
        raise ClusterError(f"{context}: unexpected reply status {status!r}")

    def request(
        self,
        op: str,
        payload: Any = None,
        *,
        context: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """One synchronous round trip: send ``op``, await the reply."""
        self.send(op, payload, meta)
        return self.recv_reply(context=context or f"op {op!r}")

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "Connection",
    "ConnectionClosed",
    "parse_address",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "describe_error",
    "raise_remote_error",
]
