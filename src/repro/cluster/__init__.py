"""Multi-process shard serving: worker processes + a coordinator protocol.

The in-process :mod:`repro.shard` layer *models* one node per shard; this
package realises it: each shard lives in its own **worker process**
(:mod:`~repro.cluster.worker` — one
:class:`~repro.streaming.mutable_index.MutableLSHIndex` plus an optional
locally repaired :class:`~repro.streaming.estimator.StreamingEstimator`),
and a **coordinator** (:mod:`~repro.cluster.coordinator`) drives parallel
ingest, merged/exact estimates, snapshot/restore, and remote rebalancing
over a length-prefixed pickle protocol
(:mod:`~repro.cluster.transport`) whose payloads are exactly the
library's existing serialisations — prepared batch slices, ``to_state``
snapshots, and :func:`~repro.shard.rebalance.split_index_state`
migration payloads.

Because :class:`ClusterCoordinator` subclasses
:class:`~repro.shard.sharded_index.ShardedMutableIndex`, the whole merge
and rebalance layer is shared, and exact-mode estimates of a process
cluster stay **bit-identical** to an unsharded estimator for the same
seed.  :class:`ProcessBackend` (:mod:`~repro.cluster.backend`) registers
the deployment shape as ``"process"`` with the engine, so every
:class:`~repro.engine.JoinEstimationEngine` caller and CLI command
reaches it through a one-line config change; ``repro worker`` runs a
standalone shard worker for multi-machine setups.
"""

from repro.cluster.backend import ProcessBackend
from repro.cluster.coordinator import (
    ClusterCoordinator,
    RemoteEstimatorProxy,
    RemoteIndexProxy,
    WorkerHandle,
)
from repro.cluster.transport import PROTOCOL_VERSION, Connection, parse_address
from repro.cluster.worker import ShardWorker, serve

__all__ = [
    "ClusterCoordinator",
    "ProcessBackend",
    "RemoteIndexProxy",
    "RemoteEstimatorProxy",
    "WorkerHandle",
    "ShardWorker",
    "serve",
    "Connection",
    "parse_address",
    "PROTOCOL_VERSION",
]
