"""The ``process`` engine backend: a worker-process cluster behind the router.

:class:`ProcessBackend` subclasses the in-process
:class:`~repro.engine.backends.ShardedBackend` and swaps its
:class:`~repro.shard.sharded_index.ShardedMutableIndex` for a
:class:`~repro.cluster.coordinator.ClusterCoordinator` — everything else
(buffered router, merged estimator, rebalance driver, event semantics)
is inherited, so the two deployment shapes cannot drift apart.  It
registers as ``register_backend("process")``: any
:class:`~repro.engine.JoinEstimationEngine` caller (and every CLI
command) reaches multi-process serving with a one-line config change::

    {"backend": "process", "dimension": 128,
     "options": {"shards": 4}}

Exact-mode estimates are bit-identical to the ``sharded`` backend — and
therefore to an unsharded ``streaming`` estimator — for the same seed
(gated in ``benchmarks/bench_cluster.py`` along with the ≥ in-process
ingest-throughput gate).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.cluster.coordinator import (
    DEFAULT_REQUEST_TIMEOUT,
    ClusterCoordinator,
)
from repro.engine.backends import ShardedBackend, _check_state, register_backend
from repro.engine.config import EngineConfig
from repro.errors import ValidationError
from repro.shard import ShardedStreamingEstimator, ShardRouter


@register_backend("process")
class ProcessBackend(ShardedBackend):
    """Bucket-key-partitioned cluster of shard **worker processes**.

    Options
    -------
    ``shards`` (alias ``num_shards``, default 4), ``partitioner``,
    ``shard_estimators``, ``estimator_kwargs``, ``batch_size``,
    ``sample_size_h`` / ``sample_size_l`` / ``answer_threshold`` /
    ``dampening``
        As in the ``sharded`` backend.
    ``workers``
        Router flush threads; defaults to 0 here because the
        coordinator's pipelined commit already runs every worker process
        in parallel.
    ``addresses``
        ``["host:port", …]`` of pre-started ``repro worker`` endpoints,
        one per shard; omitted = spawn local worker processes.
    ``token``
        Shared handshake secret for external workers (``repro worker
        --token``); auto-generated for spawned ones.
    ``request_timeout``
        Seconds before a silent worker fails the request instead of
        hanging the coordinator (default 120).
    ``start_method``
        ``multiprocessing`` start method for spawned workers.
    """

    OPTIONS = ShardedBackend.OPTIONS | frozenset(
        {"shards", "addresses", "token", "request_timeout", "start_method"}
    )
    # no "concurrent-read": the coordinator keeps one outstanding request
    # per worker connection, so the serving layer serialises reads that
    # reach this backend instead of interleaving frames on its sockets
    CAPABILITIES = (
        ShardedBackend.CAPABILITIES | frozenset({"multi-process"})
    ) - frozenset({"concurrent-read"})

    def __init__(self, config: EngineConfig) -> None:
        super().__init__(config)
        # normalise the 'shards' alias into 'num_shards' once, up front:
        # a later rebalance syncs 'num_shards' into the config, and a
        # stale alias surviving next to it would poison the re-open of a
        # rebalance-synced (or snapshot-embedded) config
        options = dict(config.options)
        if "shards" in options:
            if "num_shards" in options and int(options["shards"]) != int(
                options["num_shards"]
            ):
                raise ValidationError(
                    "options 'shards' and 'num_shards' disagree "
                    f"({options['shards']} vs {options['num_shards']}); give one"
                )
            options["num_shards"] = int(options.pop("shards"))
            self.config = config.replace(options=options)

    def _cluster_kwargs(self) -> Dict[str, Any]:
        options = self.config.options
        return {
            "addresses": options.get("addresses"),
            "token": options.get("token"),
            "request_timeout": options.get("request_timeout", DEFAULT_REQUEST_TIMEOUT),
            "start_method": options.get("start_method"),
            # coordinator-side instruments (transport counters, request
            # counters, commit timings) land in this backend's registry
            "metrics": self.metrics,
        }

    def open(self) -> None:
        if self.config.dimension is None:
            raise ValidationError(
                "backend 'process' needs config.dimension (hash families "
                "bind to the vector space eagerly)"
            )
        options = self.config.options
        self._index = ClusterCoordinator(
            self.config.dimension,
            num_shards=int(options.get("num_shards", 4)),
            num_hashes=self.config.num_hashes,
            num_tables=self.config.num_tables,
            family=self.config.family,
            random_state=self.config.seed + 1,
            partitioner=options.get("partitioner", "modulo"),
            shard_estimators=options.get("shard_estimators", True),
            estimator_kwargs=options.get("estimator_kwargs"),
            **self._cluster_kwargs(),
        )
        try:
            self._attach_serving_stack()
        except BaseException:  # reprolint: disable=R007 - unwind the half-built cluster (reap workers) before re-raising
            self._index.close()
            raise

    def _attach_serving_stack(self) -> None:
        options = self.config.options
        self._index.metrics = self.metrics
        self._router = ShardRouter(
            self._index,
            batch_size=options.get("batch_size", 256),
            # the pipelined commit parallelises across worker processes;
            # router threads would only add contention (None — the sharded
            # backend's "one per shard" — maps to 0 here)
            max_workers=options.get("workers") or 0,
            metrics=self.metrics,
        )
        merge_kwargs = {key: options[key] for key in self._MERGE_KEYS if key in options}
        self._estimator = ShardedStreamingEstimator(
            self._index, router=self._router, metrics=self.metrics, **merge_kwargs
        )

    def close(self) -> None:
        """Flush-and-stop the router, then shut the workers down.

        Worker shutdown runs even when the router's close raises (e.g.
        :class:`~repro.errors.StrandedWritesError` after a partial
        commit): a failing flush must never leak worker processes.
        """
        try:
            self._router.close()
        finally:
            self._index.close()

    def describe(self) -> Dict[str, Any]:
        description = super().describe()
        description["workers"] = self._index.worker_infos
        return description

    def stats(self) -> Dict[str, Any]:
        """Cluster-wide stats: the coordinator's batched worker fan-out.

        The coordinator's merged snapshot already folds this backend's
        registry (the coordinator records into it) together with every
        worker's process-global registry, so the merge happens exactly
        once.
        """
        cluster = self._index.stats()
        return {
            "backend": self.kind,
            "describe": self.describe(),
            "workers": cluster["workers"],
            "metrics": cluster["metrics"],
        }

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        self._router.flush()
        return {"format": 1, "kind": "process-backend", "index": self._index.to_state()}

    @classmethod
    def from_state(cls, config: EngineConfig, state: Mapping[str, Any]) -> "ProcessBackend":
        _check_state(state, "process")
        backend = cls(config)
        backend._index = ClusterCoordinator.from_state(
            state["index"],
            estimator_seed=config.seed + 2,
            **backend._cluster_kwargs(),
        )
        try:
            backend._attach_serving_stack()
        except BaseException:  # reprolint: disable=R007 - unwind the half-restored cluster (reap workers) before re-raising
            backend._index.close()
            raise
        return backend

    # ------------------------------------------------------------------
    @property
    def index(self) -> ClusterCoordinator:
        """The backing cluster coordinator (advanced / diagnostic access)."""
        return self._index


__all__ = ["ProcessBackend"]
