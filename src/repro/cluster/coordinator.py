"""The cluster coordinator: a ``ShardedMutableIndex`` whose shards are processes.

:class:`ClusterCoordinator` subclasses
:class:`~repro.shard.sharded_index.ShardedMutableIndex` and swaps the
in-process shards for **worker processes**: each
:class:`~repro.shard.sharded_index.IndexShard` holds a
:class:`RemoteIndexProxy` / :class:`RemoteEstimatorProxy` pair speaking
the length-prefixed pickle protocol of :mod:`repro.cluster.transport` to
one :mod:`repro.cluster.worker` process.  Everything above the shard
boundary — bucket-key routing, the global SampleH stitch, rebalance
planning, the merged estimator — is inherited *unchanged*, which is what
keeps the exact-mode estimates of a process cluster bit-identical to an
unsharded estimator for the same seed:

* hashing and partitioning stay on the coordinator (it owns the hash
  families; workers receive already-hashed batch slices), so ids, bucket
  keys, and shard targets are assigned exactly as in process;
* the merge layer's three remote touch points —
  :meth:`_bucket_members_on_shard`, :meth:`_gather_rows_on_shard`, and
  the per-shard SampleH/SampleL fallbacks — return the same values a
  local shard would, and sampling draws executed worker-side ship the
  coordinator's generator state in and out, consuming its stream exactly
  like a local draw;
* per-shard ``size`` / ``N_H`` live in coordinator-side mirrors updated
  from every mutating reply, so strata sizes never need a round trip.

Ingest is where the processes pay off: :meth:`commit_batch` *pipelines*
a routed batch — every worker receives its slice before any reply is
awaited, and the coordinator performs its own merge bookkeeping while
the workers ingest in parallel (real parallelism: separate processes,
no GIL).

Failure model: every request carries a timeout; a worker that crashed or
hung raises :class:`~repro.errors.WorkerCrashError` naming the shard
instead of hanging the coordinator.  Because a transport failure can
leave a pipelined commit half-applied, it marks the whole cluster
*broken*: further operations raise, and :meth:`close` falls back from
the graceful shutdown handshake to terminating the worker processes.
``close`` is idempotent and always reaps every spawned process.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import secrets
import socket
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.cluster.transport import (
    PROTOCOL_VERSION,
    Connection,
    parse_address,
)
from repro.cluster.worker import run_spawned_worker
from repro.errors import ClusterError, ValidationError, WorkerCrashError
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import current_trace_context, get_tracer, trace
from repro.rng import RandomState, ensure_rng, generator_state, spawn
from repro.shard.sharded_index import IndexShard, PreparedBatch, ShardedMutableIndex
from repro.streaming.mutable_index import restore_estimator_states

DEFAULT_REQUEST_TIMEOUT = 120.0
DEFAULT_SPAWN_TIMEOUT = 120.0
_SHUTDOWN_GRACE = 5.0


def _default_start_method() -> str:
    """Prefer ``forkserver``: cheap forks from a warm server *and* no
    inheritance of the coordinator's sockets (a fork-inherited duplicate
    of another worker's connection would keep that worker from ever
    seeing EOF after a coordinator crash)."""
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


class WorkerHandle:
    """One worker process/endpoint: connection, liveness, shutdown."""

    def __init__(
        self,
        shard_id: int,
        conn: Connection,
        coordinator: "ClusterCoordinator",
        *,
        process: Any = None,
        pid: Optional[int] = None,
        address: Optional[Tuple[str, int]] = None,
    ) -> None:
        self.shard_id = shard_id
        self.conn = conn
        self.process = process
        self.pid = pid
        self.address = address
        self.broken = False
        #: cumulative seconds the coordinator spent blocked on this
        #: worker's replies (operational telemetry; bench_cluster derives
        #: the coordinator-stage time of its pipeline model from it)
        self.blocked_seconds = 0.0
        #: worker-reported handler wall time of the most recent reply
        #: (from the reply meta envelope; 0.0 before the first reply)
        self.last_op_seconds = 0.0
        self._coordinator = coordinator
        self._metrics = coordinator.metrics
        self._op_counters: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def describe(self) -> str:
        if self.address is not None:
            return f"at {self.address[0]}:{self.address[1]} (pid {self.pid})"
        return f"(spawned, pid {self.pid})"

    @property
    def alive(self) -> bool:
        if self.broken:
            return False
        if self.process is not None:
            return self.process.is_alive()
        return not self.conn.closed

    def _check(self) -> None:
        if self.broken:
            raise WorkerCrashError(
                f"shard {self.shard_id} worker {self.describe()} is gone "
                "(earlier transport failure)"
            )
        self._coordinator._check_usable()

    def _fail(self, error: BaseException, op: str) -> None:
        self.broken = True
        self._coordinator._mark_broken(
            f"shard {self.shard_id} worker {self.describe()} failed during {op!r}"
        )
        raise WorkerCrashError(
            f"shard {self.shard_id} worker {self.describe()} died or stopped "
            f"responding during {op!r}: {error}"
        ) from error

    # ------------------------------------------------------------------
    def send_request(self, op: str, payload: Any = None) -> None:
        """First half of a pipelined request (reply via :meth:`recv_reply`).

        The caller's trace context (if a span is open) rides along in the
        frame meta, so worker-side spans stitch into the caller's tree;
        retries of the same logical request reship the *same* context.
        """
        self._check()
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self._op_counters[op] = self._metrics.counter(
                "cluster_requests_total", op=op
            )
        counter.inc()
        trace_ctx = current_trace_context()
        try:
            self.conn.send(op, payload, {"trace": trace_ctx} if trace_ctx else None)
        except WorkerCrashError as error:
            self._fail(error, op)

    def recv_reply(self, op: str) -> Any:
        """Await the reply of an earlier :meth:`send_request`.

        Worker-side *operation* errors re-raise as their own library
        types (the stream stays aligned — the worker survives them);
        transport errors mark the worker, and the cluster, broken.

        The reply meta envelope is unpacked here: ``seconds`` lands in
        :attr:`last_op_seconds` (even for error replies) and shipped-back
        worker spans are adopted into the coordinator's tracer.
        """
        started = time.perf_counter()
        try:
            return self.conn.recv_reply(context=f"shard {self.shard_id} op {op!r}")
        except WorkerCrashError as error:
            self._fail(error, op)
        finally:
            self.blocked_seconds += time.perf_counter() - started
            meta = self.conn.last_meta
            self.last_op_seconds = float(meta.get("seconds", 0.0))
            spans = meta.get("spans")
            if spans:
                get_tracer().adopt(spans)

    def request(self, op: str, payload: Any = None) -> Any:
        self.send_request(op, payload)
        return self.recv_reply(op)

    # ------------------------------------------------------------------
    def stop(self, *, graceful: bool = True) -> None:
        """End the session and reap the process; never hangs, never raises."""
        if not self.conn.closed:
            if graceful and not self.broken:
                with contextlib.suppress(Exception):  # reprolint: disable=R007 - best-effort goodbye to a possibly-dead peer; terminate follows either way
                    self.conn.set_timeout(_SHUTDOWN_GRACE)
                    self.conn.send("shutdown")
                    self.conn.recv()
            self.conn.close()
        if self.process is not None:
            self.process.join(timeout=_SHUTDOWN_GRACE)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(timeout=1.0)


class _RemoteTableProxy:
    """The ``primary_table`` stand-in of one remote shard.

    Signature keys and bucket sizes answer from the coordinator's own
    bookkeeping (it routed every insert, so it knows each live id's
    primary bucket key); only bucket *contents* go to the worker.
    """

    def __init__(self, index: "RemoteIndexProxy") -> None:
        self._index = index

    @property
    def num_vectors(self) -> int:
        return self._index.size

    @property
    def num_hashes(self) -> int:
        return self._index.num_hashes

    @property
    def num_collision_pairs(self) -> int:
        return self._index.num_collision_pairs

    @property
    def num_buckets(self) -> int:
        return int(self._index._handle.request("stats")["num_buckets"])

    def signature_key(self, vector_id: int) -> bytes:
        try:
            return self._index._owner._key_of_id[int(vector_id)]
        except KeyError:
            raise ValidationError(f"vector id {vector_id} is not in the table") from None

    def bucket_size_of(self, vector_id: int) -> int:
        return int(self._index._owner._bucket_refs[self.signature_key(vector_id)][0])

    def same_bucket(self, u: int, v: int) -> bool:
        return self.signature_key(u) == self.signature_key(v)

    def bucket_members_by_key(self, key: bytes) -> List[int]:
        return self._index._handle.request("bucket_members", {"keys": [key]})["members"][0]


class RemoteIndexProxy:
    """The ``MutableLSHIndex`` surface of one shard, served by a worker.

    Keeps coordinator-side mirrors of the shard's live-id order (same
    append / swap-pop discipline the worker applies, so ``ids`` matches
    the worker's order element for element) and of ``N_H`` (updated from
    every mutating reply), so the statistics the merge layer reads per
    estimate cost no round trips.
    """

    def __init__(self, owner: "ClusterCoordinator", handle: WorkerHandle) -> None:
        self._owner = owner
        self._handle = handle
        self._live_ids: List[int] = []
        self._live_position: Dict[int, int] = {}
        self._num_collision_pairs = 0
        #: cumulative worker-side ingest compute (from insert replies)
        self.worker_ingest_seconds = 0.0
        self.primary_table = _RemoteTableProxy(self)

    # -- statistics (coordinator-local) --------------------------------
    @property
    def dimension(self) -> int:
        return self._owner.dimension

    @property
    def num_hashes(self) -> int:
        return self._owner.num_hashes

    @property
    def num_tables(self) -> int:
        return self._owner.num_tables

    @property
    def size(self) -> int:
        return len(self._live_ids)

    @property
    def ids(self) -> np.ndarray:
        return np.asarray(self._live_ids, dtype=np.int64)

    @property
    def total_pairs(self) -> int:
        n = self.size
        return n * (n - 1) // 2

    @property
    def num_collision_pairs(self) -> int:
        return self._num_collision_pairs

    @property
    def num_non_collision_pairs(self) -> int:
        return self.total_pairs - self._num_collision_pairs

    @property
    def estimators(self) -> Tuple[object, ...]:
        return ()

    def __contains__(self, vector_id: int) -> bool:
        return vector_id in self._live_position

    def __len__(self) -> int:
        return self.size

    # -- mirror maintenance --------------------------------------------
    def _apply_stats(self, reply: Mapping[str, Any]) -> None:
        self._num_collision_pairs = int(reply["num_collision_pairs"])
        if int(reply["size"]) != self.size:
            raise ClusterError(
                f"shard {self._handle.shard_id} drifted: worker holds "
                f"{reply['size']} vectors, coordinator mirror {self.size}"
            )

    def _mirror_insert_many(self, ids: Sequence[int]) -> None:
        for vector_id in ids:
            self._live_position[int(vector_id)] = len(self._live_ids)
            self._live_ids.append(int(vector_id))

    def _mirror_delete(self, vector_id: int) -> None:
        # same swap-pop the worker's index performs, keeping orders equal
        position = self._live_position.pop(vector_id)
        last = self._live_ids.pop()
        if last != vector_id:
            self._live_ids[position] = last
            self._live_position[last] = position

    def _load_state_mirror(self, state: Mapping[str, Any], reply: Mapping[str, Any]) -> None:
        self._live_ids = [int(i) for i in state["live_ids"]]
        self._live_position = {
            vector_id: position for position, vector_id in enumerate(self._live_ids)
        }
        self._apply_stats(reply)

    # -- mutation -------------------------------------------------------
    def _insert_prepared(self, vector_id: int, row: Any, signatures: Any) -> int:
        reply = self._handle.request(
            "insert_prepared",
            {
                "ids": np.asarray([int(vector_id)], dtype=np.int64),
                "csr": row,
                "signatures": [np.asarray(signature)[None, :] for signature in signatures],
            },
        )
        self._mirror_insert_many([int(vector_id)])
        self._apply_stats(reply)
        # ingest accounting draws on the reply meta's handler wall time;
        # only insert ops count (delete/check report seconds too now)
        self.worker_ingest_seconds += self._handle.last_op_seconds
        return int(vector_id)

    def insert_many_prepared(self, ids: Any, csr: Any, signatures: Any) -> np.ndarray:
        reply = self._handle.request(
            "insert_prepared", {"ids": ids, "csr": csr, "signatures": list(signatures)}
        )
        self._mirror_insert_many(ids)
        self._apply_stats(reply)
        self.worker_ingest_seconds += self._handle.last_op_seconds
        return ids

    def delete(self, vector_id: int) -> None:
        reply = self._handle.request("delete", {"vector_id": int(vector_id)})
        self._mirror_delete(int(vector_id))
        self._apply_stats(reply)

    # -- sampling (generator-state shipping) ---------------------------
    def _sample_remote(
        self, stratum: str, sample_size: int, random_state: RandomState
    ) -> Tuple[Any, Any]:
        rng = ensure_rng(random_state)
        reply = self._handle.request(
            "sample_pairs",
            {"stratum": stratum, "count": int(sample_size), "rng": generator_state(rng)},
        )
        # adopt the advanced stream position: the remote draw consumed
        # the caller's generator exactly as a local draw would have
        rng.bit_generator.state = reply["rng"]
        return reply["left"], reply["right"]

    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[Any, Any]:
        return self._sample_remote("h", sample_size, random_state)

    def sample_non_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[Any, Any]:
        return self._sample_remote("l", sample_size, random_state)

    # -- state / verification ------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        return self._handle.request("snapshot")["state"]

    def row(self, vector_id: int) -> sparse.csr_matrix:
        return self._handle.request(
            "gather_rows",
            {"ids": np.asarray([int(vector_id)], dtype=np.int64), "normalized": False},
        )["matrix"]

    def check_invariants(self) -> None:
        reply = self._handle.request("check")
        self._apply_stats(reply)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RemoteIndexProxy(shard={self._handle.shard_id}, n={self.size}, "
            f"NH={self._num_collision_pairs}, worker={self._handle.describe()})"
        )


class RemoteEstimatorProxy:
    """The worker-hosted :class:`StreamingEstimator`, as seen by the merge layer."""

    def __init__(self, handle: WorkerHandle) -> None:
        self._handle = handle
        self._cached: Dict[str, Dict[str, Any]] = {}

    def _fetch(self, stratum: str) -> Dict[str, Any]:
        reply = self._handle.request("reservoir", {"stratum": stratum})
        self._cached[stratum] = reply
        return reply

    def reservoir_usable(self, stratum: str) -> bool:
        # one fetch answers both the usability probe and the immediately
        # following reservoir_pairs call of the merge layer
        return bool(self._fetch(stratum)["usable"])

    def reservoir_pairs(self, stratum: str) -> Tuple[Any, Any]:
        reply = self._cached.pop(stratum, None)
        if reply is None:
            reply = self._fetch(stratum)
            self._cached.pop(stratum, None)
        return reply["left"], reply["right"]

    def account_for_migration(
        self,
        *,
        departed_ids: Sequence[int] = (),
        unseen_collision_pairs: int = 0,
        unseen_non_collision_pairs: int = 0,
    ) -> None:
        self._handle.request(
            "account_migration",
            {
                "departed_ids": [int(i) for i in departed_ids],
                "unseen_collision_pairs": int(unseen_collision_pairs),
                "unseen_non_collision_pairs": int(unseen_non_collision_pairs),
            },
        )

    def close(self) -> None:
        if not self._handle.broken and not self._handle.conn.closed:
            self._handle.request("close_estimator")


class ClusterCoordinator(ShardedMutableIndex):
    """A :class:`ShardedMutableIndex` served by one worker process per shard.

    Parameters beyond the inherited ones
    ------------------------------------
    addresses:
        ``["host:port", …]`` of pre-started ``repro worker`` processes,
        one per shard.  When omitted (the default) the coordinator
        spawns local worker processes itself and reaps them on
        :meth:`close`.
    token:
        Shared handshake secret.  Auto-generated for spawned workers;
        for external workers pass the value their ``--token`` expects.
    request_timeout:
        Seconds before a pending worker reply raises
        :class:`~repro.errors.WorkerCrashError` instead of blocking
        forever.
    start_method:
        ``multiprocessing`` start method for spawned workers (default:
        ``forkserver`` where available, else ``spawn`` — both keep the
        coordinator's sockets out of the children).
    """

    def __init__(
        self,
        dimension: int,
        *,
        num_shards: int = 4,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: Any = "cosine",
        random_state: RandomState = None,
        partitioner: Any = "modulo",
        shard_estimators: bool = True,
        estimator_kwargs: Optional[Dict[str, object]] = None,
        addresses: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        token: Optional[str] = None,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        start_method: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._init_cluster_plumbing(
            addresses=addresses,
            token=token,
            request_timeout=request_timeout,
            spawn_timeout=spawn_timeout,
            start_method=start_method,
            metrics=metrics,
        )
        if self._addresses is not None and len(self._addresses) != int(num_shards):
            self.close()
            raise ValidationError(
                f"got {len(self._addresses)} worker addresses for "
                f"{num_shards} shards (need exactly one each)"
            )
        try:
            super().__init__(
                dimension,
                num_shards=num_shards,
                num_hashes=num_hashes,
                num_tables=num_tables,
                family=family,
                random_state=random_state,
                partitioner=partitioner,
                shard_estimators=shard_estimators,
                estimator_kwargs=estimator_kwargs,
            )
        except BaseException:  # reprolint: disable=R007 - cleanup-and-reraise
            # never leak worker processes from a half-built coordinator
            self.close()
            raise

    def _init_cluster_plumbing(
        self,
        *,
        addresses: Optional[Sequence[Union[str, Tuple[str, int]]]],
        token: Optional[str],
        request_timeout: Optional[float],
        spawn_timeout: float,
        start_method: Optional[str],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._metrics = metrics  # resolved lazily by the `metrics` property
        #: live id → primary bucket key; answers signature_key / SampleL
        #: rejection tests without any worker round trip
        self._key_of_id: Dict[int, bytes] = {}
        self._handles: List[WorkerHandle] = []
        self._broken: Optional[str] = None
        self._closed = False
        self._addresses = (
            [parse_address(a) if isinstance(a, str) else (str(a[0]), int(a[1])) for a in addresses]
            if addresses
            else None
        )
        self._token = token if token is not None else secrets.token_hex(16)
        self._request_timeout = request_timeout
        self._spawn_timeout = float(spawn_timeout)
        self._start_method = start_method
        self._mp_context = None
        self._listener: Optional[socket.socket] = None
        if self._addresses is None:
            self._listener = socket.create_server(("127.0.0.1", 0))
            self._listener.settimeout(1.0)

    # ------------------------------------------------------------------
    # lifecycle / failure bookkeeping
    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        if self._closed:
            raise ClusterError("the cluster coordinator is closed")
        if self._broken is not None:
            raise ClusterError(
                f"the cluster is broken ({self._broken}); its state may be "
                "partially applied — restore a snapshot onto a fresh cluster"
            )

    def _mark_broken(self, reason: str) -> None:
        if self._broken is None:
            self._broken = reason

    @property
    def broken(self) -> Optional[str]:
        """Why the cluster became unusable, or ``None`` while healthy."""
        return self._broken

    def close(self) -> None:
        """Shut down every worker; idempotent, never hangs.

        Healthy workers get the ``shutdown`` handshake; broken ones (or
        any that ignore it) are terminated and, as a last resort,
        killed.  Spawned processes are always reaped.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.stop(graceful=self._broken is None)
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    @property
    def worker_infos(self) -> List[Dict[str, Any]]:
        """Shard → worker diagnostics (pid, endpoint, liveness)."""
        return [
            {
                "shard_id": handle.shard_id,
                "pid": handle.pid,
                "address": None
                if handle.address is None
                else f"{handle.address[0]}:{handle.address[1]}",
                "spawned": handle.process is not None,
                "alive": handle.alive,
            }
            for handle in self._handles
        ]

    def stats(self) -> Dict[str, Any]:
        """Cluster-wide operational statistics in one batched round trip.

        Sends ``stats`` (with the metrics opt-in) to every worker before
        awaiting any reply — the fan-out costs one round-trip latency,
        not one per shard.  Returns per-worker rows (size, buckets,
        staleness, :attr:`WorkerHandle.blocked_seconds`,
        :attr:`RemoteIndexProxy.worker_ingest_seconds`) plus a single
        merged metrics snapshot: the coordinator's own registry folded
        together with every worker's process-global registry.
        """
        self._check_usable()
        with trace("cluster.stats", shards=len(self.shards)):
            for shard in self.shards:
                shard.index._handle.send_request("stats", {"metrics": True})
            merged = self.metrics.snapshot()
            workers: List[Dict[str, Any]] = []
            for shard in self.shards:
                handle = shard.index._handle
                reply = dict(handle.recv_reply("stats"))
                worker_metrics = reply.pop("metrics", None)
                if worker_metrics:
                    merged = merged.merge(MetricsSnapshot.from_dict(worker_metrics))
                row: Dict[str, Any] = {
                    "shard_id": handle.shard_id,
                    "pid": handle.pid,
                    "address": None
                    if handle.address is None
                    else f"{handle.address[0]}:{handle.address[1]}",
                    "alive": handle.alive,
                    "blocked_seconds": handle.blocked_seconds,
                    "worker_ingest_seconds": shard.index.worker_ingest_seconds,
                }
                for key in ("size", "num_buckets", "staleness_h", "staleness_l"):
                    if key in reply:
                        row[key] = reply[key]
                workers.append(row)
            return {"workers": workers, "metrics": merged.to_dict()}

    # ------------------------------------------------------------------
    # worker construction
    # ------------------------------------------------------------------
    def _context(self) -> Any:
        if self._mp_context is None:
            method = self._start_method or _default_start_method()
            context = multiprocessing.get_context(method)
            if method == "forkserver":
                # pre-import the worker stack (numpy/scipy) once, so
                # every later worker forks from a warm server
                with contextlib.suppress(Exception):  # reprolint: disable=R007 - preload is a warm-up optimisation; a cold forkserver is still correct
                    context.set_forkserver_preload(["repro.cluster.worker"])
            self._mp_context = context
        return self._mp_context

    def _spawn_worker(self, shard_id: int) -> WorkerHandle:
        host, port = self._listener.getsockname()[:2]
        process = self._context().Process(
            target=run_spawned_worker,
            args=(host, port, self._token, shard_id),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + self._spawn_timeout
        while True:
            try:
                client, _peer = self._listener.accept()
                break
            except socket.timeout:
                if process.exitcode is not None:
                    raise WorkerCrashError(
                        f"shard {shard_id} worker exited with code "
                        f"{process.exitcode} before connecting"
                    ) from None
                if time.monotonic() > deadline:
                    process.terminate()
                    raise WorkerCrashError(
                        f"shard {shard_id} worker did not connect within "
                        f"{self._spawn_timeout:.0f}s"
                    ) from None
        conn = Connection(client, timeout=self._request_timeout, metrics=self.metrics)
        try:
            op, payload, _meta = conn.recv()
            if op != "hello":
                raise ClusterError(f"expected worker 'hello', got {op!r}")
            payload = payload or {}
            if payload.get("token") != self._token:
                raise ClusterError("a connecting worker presented a wrong token")
            if int(payload.get("protocol", -1)) != PROTOCOL_VERSION:
                raise ClusterError(
                    f"worker speaks protocol {payload.get('protocol')!r}, "
                    f"coordinator speaks {PROTOCOL_VERSION}"
                )
            if int(payload.get("shard_id", -1)) != shard_id:
                raise ClusterError(
                    f"worker identified as shard {payload.get('shard_id')!r}, "
                    f"expected {shard_id}"
                )
            conn.send("ok", {"protocol": PROTOCOL_VERSION})
        except BaseException:  # reprolint: disable=R007 - never leak the spawned process on a failed handshake
            conn.close()
            process.terminate()
            raise
        return WorkerHandle(
            shard_id, conn, self, process=process, pid=payload.get("pid")
        )

    def _connect_external(self, shard_id: int) -> WorkerHandle:
        if shard_id >= len(self._addresses):
            raise ClusterError(
                f"no worker address for shard {shard_id}: an address-connected "
                f"cluster cannot grow beyond its {len(self._addresses)} "
                "configured workers"
            )
        address = self._addresses[shard_id]
        try:
            sock = socket.create_connection(address, timeout=self._request_timeout)
        except OSError as error:
            raise WorkerCrashError(
                f"cannot reach the shard {shard_id} worker at "
                f"{address[0]}:{address[1]}: {error}"
            ) from error
        conn = Connection(sock, timeout=self._request_timeout, metrics=self.metrics)
        try:
            conn.send(
                "hello",
                {"protocol": PROTOCOL_VERSION, "token": self._token, "shard_id": shard_id},
            )
            payload = conn.recv_reply(context=f"handshake with shard {shard_id}")
        except BaseException:  # reprolint: disable=R007 - close the socket on a failed handshake before re-raising
            conn.close()
            raise
        return WorkerHandle(
            shard_id, conn, self, pid=(payload or {}).get("pid"), address=address
        )

    def _connect_worker(self, shard_id: int) -> WorkerHandle:
        if self._addresses is not None:
            return self._connect_external(shard_id)
        return self._spawn_worker(shard_id)

    def _new_shard(self, shard_id: int, estimator_rng: RandomState = None) -> IndexShard:
        """Bring up (or dial) one worker and configure its empty shard."""
        handle = self._connect_worker(shard_id)
        try:
            reply = handle.request(
                "configure",
                {
                    "shard_id": shard_id,
                    "dimension": self.dimension,
                    "num_hashes": self.num_hashes,
                    "num_tables": self.num_tables,
                    "families": self.families,
                    "shard_estimators": self._shard_estimators,
                    "estimator_kwargs": self._estimator_kwargs,
                    "estimator_rng": estimator_rng,
                },
            )
        except BaseException:  # reprolint: disable=R007 - reap the worker whose bootstrap failed before re-raising
            handle.stop(graceful=False)
            raise
        self._handles.append(handle)
        proxy = RemoteIndexProxy(self, handle)
        proxy._apply_stats(reply)
        estimator = RemoteEstimatorProxy(handle) if self._shard_estimators else None
        return IndexShard(shard_id, proxy, estimator)

    def drop_trailing_shards(self, new_total: int) -> None:
        dropped = self._handles[new_total:]
        super().drop_trailing_shards(new_total)  # validates emptiness first
        for handle in dropped:
            handle.stop(graceful=True)
        del self._handles[new_total:]

    # ------------------------------------------------------------------
    # merge-layer touch points (one batched round trip per shard)
    # ------------------------------------------------------------------
    def _bucket_members_on_shard(self, shard_id: int, keys: Sequence[bytes]) -> List[List[int]]:
        return self._handles[shard_id].request("bucket_members", {"keys": list(keys)})[
            "members"
        ]

    def _gather_rows_on_shard(
        self, shard_id: int, ids: np.ndarray, *, normalized: bool
    ) -> sparse.csr_matrix:
        return self._handles[shard_id].request(
            "gather_rows",
            {"ids": np.asarray(ids, dtype=np.int64), "normalized": normalized},
        )["matrix"]

    # ------------------------------------------------------------------
    # mutation (pipelined ingest + key bookkeeping)
    # ------------------------------------------------------------------
    def _track_insert(self, vector_id: int, key: bytes, shard_id: int) -> None:
        super()._track_insert(vector_id, key, shard_id)
        self._key_of_id[vector_id] = key

    def delete(self, vector_id: int) -> None:
        self._check_usable()
        super().delete(vector_id)  # reads the key via the table proxy first
        self._key_of_id.pop(vector_id, None)

    def commit_batch(self, batch: PreparedBatch, *, executor: Any = None) -> np.ndarray:
        """Apply a prepared batch with every worker ingesting in parallel.

        All shard slices are *sent* before any reply is awaited
        (``executor`` is accepted for interface compatibility and
        ignored — process parallelism replaces the thread pool), and the
        coordinator interleaves its own merge bookkeeping with the
        workers' ingest.  A transport failure mid-commit leaves shard
        slices partially applied, so it marks the cluster broken — the
        router layer above then refuses further flushes, exactly like an
        in-process partial commit.
        """
        self._check_usable()
        histogram, rows_total = self._commit_instruments()
        commit_started = time.perf_counter()
        with trace("cluster.commit_batch", rows=len(batch)):
            jobs = []
            for shard in self.shards:
                rows = np.flatnonzero(batch.shard_ids == shard.shard_id)
                if rows.size == 0:
                    continue
                payload = {
                    "ids": batch.ids[rows],
                    "csr": batch.csr[rows],
                    "signatures": [
                        table_signatures[rows] for table_signatures in batch.signatures
                    ],
                }
                jobs.append((shard, payload))
            for shard, payload in jobs:
                shard.index._handle.send_request("insert_prepared", payload)
            # merge bookkeeping overlaps with the workers' bucket inserts
            for position in range(len(batch)):
                self._track_insert(
                    int(batch.ids[position]), batch.keys[position], int(batch.shard_ids[position])
                )
            for shard, payload in jobs:
                reply = shard.index._handle.recv_reply("insert_prepared")
                shard.index._mirror_insert_many(payload["ids"])
                shard.index._apply_stats(reply)
                shard.index.worker_ingest_seconds += shard.index._handle.last_op_seconds
            for position in range(len(batch)):
                vector_id = int(batch.ids[position])
                for observer in self._observers:
                    observer.on_insert(vector_id)
        histogram.observe(time.perf_counter() - commit_started)
        rows_total.inc(len(batch))
        return batch.ids

    # ------------------------------------------------------------------
    # snapshot / restore / rebalance substrate
    # ------------------------------------------------------------------
    def _adopt_shard_state(self, shard_id: int, state: Mapping[str, Any]) -> None:
        """Ship a split/spliced shard state to its worker (remote rebalance)."""
        self._check_usable()
        handle = self._handles[shard_id]
        reply = handle.request(
            "restore",
            {
                "state": state,
                "shard_id": shard_id,
                "shard_estimators": self._shard_estimators,
                "estimator_kwargs": self._estimator_kwargs,
                "build_missing": False,
            },
        )
        proxy = self.shards[shard_id].index
        proxy._load_state_mirror(state, reply)
        self.shards[shard_id].estimator = (
            RemoteEstimatorProxy(handle) if reply["has_estimator"] else None
        )

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, Any],
        *,
        estimator_seed: RandomState = None,
        addresses: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        token: Optional[str] = None,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        start_method: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ClusterCoordinator":
        """Revive a cluster from a :meth:`ShardedMutableIndex.to_state` snapshot.

        Snapshots are portable across deployment shapes: the same state
        an in-process cluster writes restores here (each shard state is
        shipped to a fresh worker), and vice versa.
        """
        state = cls._unwrap_sharded_state(state)
        cluster = cls.__new__(cls)
        cluster._init_cluster_plumbing(
            addresses=addresses,
            token=token,
            request_timeout=request_timeout,
            spawn_timeout=spawn_timeout,
            start_method=start_method,
            metrics=metrics,
        )
        try:
            num_shards = int(state["num_shards"])
            if cluster._addresses is not None and len(cluster._addresses) != num_shards:
                raise ValidationError(
                    f"got {len(cluster._addresses)} worker addresses for a "
                    f"{num_shards}-shard snapshot"
                )
            cluster._restore_facade_fields(state)
            shard_states = state["shards"]
            cluster.families = shard_states[0]["families"] if shard_states else []
            estimator_rngs = spawn(ensure_rng(estimator_seed), num_shards)
            cluster.shards = []
            for shard_id, shard_state in enumerate(shard_states):
                handle = cluster._connect_worker(shard_id)
                cluster._handles.append(handle)
                reply = handle.request(
                    "restore",
                    {
                        "state": shard_state,
                        "shard_id": shard_id,
                        "shard_estimators": cluster._shard_estimators,
                        "estimator_kwargs": cluster._estimator_kwargs,
                        "estimator_rng": estimator_rngs[shard_id],
                        "build_missing": True,
                    },
                )
                proxy = RemoteIndexProxy(cluster, handle)
                proxy._load_state_mirror(shard_state, reply)
                estimator = RemoteEstimatorProxy(handle) if reply["has_estimator"] else None
                cluster.shards.append(IndexShard(shard_id, proxy, estimator))
            cluster._restore_facade_bookkeeping(state)
            # rebuild id → primary bucket key from the shard layouts
            cluster._key_of_id = {
                int(member): bytes(key)
                for shard_state in shard_states
                for key, members in shard_state["tables"][0]
                for member in members
            }
            cluster._refresh_owner_alignment()
            restore_estimator_states(cluster, state.get("estimators", ()))
        except BaseException:  # reprolint: disable=R007 - unwind the half-restored cluster before re-raising
            cluster.close()
            raise
        return cluster

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify coordinator mirrors against every worker's bookkeeping."""
        self._check_usable()
        if self.partitioner.num_shards != len(self.shards):
            raise AssertionError(
                f"partitioner covers {self.partitioner.num_shards} shards, "
                f"cluster has {len(self.shards)}"
            )
        total_buckets = 0
        for shard in self.shards:
            reply = shard.index._handle.request("check")  # worker-side invariants
            if int(reply["size"]) != shard.index.size:
                raise AssertionError(
                    f"shard {shard.shard_id} live-id mirror drifted from the worker"
                )
            if int(reply["num_collision_pairs"]) != shard.index.num_collision_pairs:
                raise AssertionError(
                    f"shard {shard.shard_id} N_H mirror drifted from the worker"
                )
            total_buckets += int(reply["num_buckets"])
        if sum(shard.size for shard in self.shards) != self.size:
            raise AssertionError("facade live-id count drifted from the shard mirrors")
        if total_buckets != len(self._bucket_refs):
            raise AssertionError("bucket key registry drifted from the workers")
        if len(self._key_of_id) != self.size:
            raise AssertionError("id → bucket-key map drifted from the live set")
        wanted: Dict[int, List[bytes]] = {}
        expected: Dict[int, List[int]] = {}
        for key, (count, shard_id) in self._bucket_refs.items():
            wanted.setdefault(shard_id, []).append(key)
            expected.setdefault(shard_id, []).append(int(count))
        for shard_id, keys in wanted.items():
            members = self._bucket_members_on_shard(shard_id, keys)
            for bucket, count in zip(members, expected[shard_id]):
                if len(bucket) != count:
                    raise AssertionError("bucket reference counts drifted from the workers")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "closed" if self._closed else ("broken" if self._broken else "live")
        return (
            f"ClusterCoordinator(n={self.size}, shards={self.num_shards}, "
            f"d={self.dimension}, k={self.num_hashes}, {status})"
        )


__all__ = [
    "ClusterCoordinator",
    "RemoteIndexProxy",
    "RemoteEstimatorProxy",
    "WorkerHandle",
    "DEFAULT_REQUEST_TIMEOUT",
]
