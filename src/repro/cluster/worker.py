"""The shard worker: one process hosting one mutable index + estimator.

A worker owns exactly one shard of a multi-process cluster: a
:class:`~repro.streaming.mutable_index.MutableLSHIndex` (sharing the
coordinator's hash families, shipped at configure time, so every worker
hashes identically) plus an optional locally repaired
:class:`~repro.streaming.estimator.StreamingEstimator`.  It speaks the
length-prefixed pickle protocol of :mod:`repro.cluster.transport` and
understands a small op set, all of whose payloads are the library's
existing serialisations:

=====================  ====================================================
``configure``          build an empty index from families + estimator spec
``restore``            revive the index from a ``to_state`` snapshot
``snapshot``           return the index ``to_state`` (estimators embedded)
``insert_prepared``    apply a routed batch slice (ids, CSR rows, signatures)
``delete``             delete one id; reply carries its bucket key
``bucket_members``     member lists for a batch of owned bucket keys
``gather_rows``        (normalized) CSR rows for a batch of ids
``sample_pairs``       SampleH / SampleL draw with generator-state shipping
``reservoir``          the estimator's current reservoir pairs for a stratum
``account_migration``  repair reservoirs after a key-range migration
``close_estimator``    detach the estimator (pre-shutdown of a drained shard)
``check`` / ``stats``  invariants / size + ``N_H`` bookkeeping
``ping`` / ``shutdown``  liveness / end of session
=====================  ====================================================

Mutating ops reply with the post-op ``(size, N_H)`` so the coordinator's
local mirrors never need a second round trip.  ``sample_pairs`` ships the
coordinator's generator *state* in and the advanced state back out, so a
draw executed in the worker consumes the coordinator's stream exactly as
an in-process draw would — the keystone of the bit-identical exact mode.

Run modes: :func:`run_spawned_worker` (connect back to the coordinator
that spawned this process) and :func:`serve` (standalone ``repro
worker`` — listen on an address, serve one coordinator session at a
time).
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Dict, Optional, Tuple

from repro.cluster.transport import (
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    describe_error,
)
from repro.errors import ClusterError, ValidationError
from repro.obs.metrics import get_global_registry
from repro.obs.tracing import activate_trace_context, get_tracer, trace
from repro.rng import generator_from_state, generator_state
from repro.streaming.estimator import StreamingEstimator
from repro.streaming.mutable_index import MutableLSHIndex


class ShardWorker:
    """Dispatch table + state for one shard-hosting worker process."""

    def __init__(self, shard_id: Optional[int] = None) -> None:
        self.shard_id = shard_id
        self.index: Optional[MutableLSHIndex] = None
        self.estimator: Optional[StreamingEstimator] = None

    # ------------------------------------------------------------------
    def _require_index(self) -> MutableLSHIndex:
        if self.index is None:
            raise ClusterError("worker holds no index yet (send 'configure' or 'restore')")
        return self.index

    def _require_estimator(self) -> StreamingEstimator:
        if self.estimator is None:
            raise ClusterError("this shard carries no streaming estimator")
        return self.estimator

    def _stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "size": 0,
            "num_collision_pairs": 0,
            "num_buckets": 0,
            "has_estimator": self.estimator is not None,
        }
        if self.index is not None:
            stats["size"] = self.index.size
            stats["num_collision_pairs"] = self.index.num_collision_pairs
            stats["num_buckets"] = self.index.primary_table.num_buckets
        if self.estimator is not None:
            stats["staleness_h"] = self.estimator.staleness_h
            stats["staleness_l"] = self.estimator.staleness_l
        return stats

    def _attach_estimator(
        self,
        *,
        shard_estimators: bool,
        estimator_kwargs: Dict[str, Any],
        estimator_rng: Any,
        build_missing: bool,
    ) -> None:
        """Adopt a restored estimator, build a fresh one, or detach."""
        index = self._require_index()
        restored = index.estimators
        if not shard_estimators:
            for estimator in restored:
                estimator.close()
            self.estimator = None
        elif restored:
            self.estimator = restored[0]
        elif build_missing:
            self.estimator = StreamingEstimator(
                index, random_state=estimator_rng, **dict(estimator_kwargs or {})
            )
        else:
            self.estimator = None

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def op_ping(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"pid": os.getpid(), "shard_id": self.shard_id, **self._stats()}

    def op_configure(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.index is not None:
            raise ClusterError("worker is already configured")
        self.shard_id = int(payload["shard_id"])
        self.index = MutableLSHIndex(
            int(payload["dimension"]),
            num_hashes=int(payload["num_hashes"]),
            num_tables=int(payload["num_tables"]),
            families=payload["families"],
        )
        if payload.get("shard_estimators"):
            self.estimator = StreamingEstimator(
                self.index,
                random_state=payload.get("estimator_rng"),
                **dict(payload.get("estimator_kwargs") or {}),
            )
        return self._stats()

    def op_restore(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if "shard_id" in payload and payload["shard_id"] is not None:
            self.shard_id = int(payload["shard_id"])
        if self.estimator is not None:
            self.estimator.close()
            self.estimator = None
        self.index = MutableLSHIndex.from_state(payload["state"])
        self._attach_estimator(
            shard_estimators=bool(payload.get("shard_estimators")),
            estimator_kwargs=payload.get("estimator_kwargs") or {},
            estimator_rng=payload.get("estimator_rng"),
            build_missing=bool(payload.get("build_missing")),
        )
        return self._stats()

    def op_snapshot(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"state": self._require_index().to_state()}

    def op_insert_prepared(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        index = self._require_index()
        index.insert_many_prepared(payload["ids"], payload["csr"], payload["signatures"])
        return self._stats()

    def op_delete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        index = self._require_index()
        vector_id = int(payload["vector_id"])
        key = index.primary_table.signature_key(vector_id)
        index.delete(vector_id)
        return {"key": key, **self._stats()}

    def op_bucket_members(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        table = self._require_index().primary_table
        return {
            "members": [list(table.bucket_members_by_key(key)) for key in payload["keys"]]
        }

    def op_gather_rows(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        store = self._require_index()._rows
        ids = payload["ids"]
        matrix = (
            store.gather_normalized(ids)
            if payload.get("normalized")
            else store.gather_raw(ids)
        )
        return {"matrix": matrix}

    def op_sample_pairs(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        index = self._require_index()
        stratum = payload["stratum"]
        rng = generator_from_state(dict(payload["rng"]))
        count = int(payload["count"])
        if stratum == "h":
            left, right = index.sample_collision_pairs(count, random_state=rng)
        elif stratum == "l":
            left, right = index.sample_non_collision_pairs(count, random_state=rng)
        else:
            raise ValidationError(f"stratum must be 'h' or 'l', got {stratum!r}")
        return {"left": left, "right": right, "rng": generator_state(rng)}

    def op_reservoir(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        estimator = self._require_estimator()
        stratum = payload["stratum"]
        usable = estimator.reservoir_usable(stratum)
        left, right = estimator.reservoir_pairs(stratum)
        return {"usable": usable, "left": left, "right": right}

    def op_account_migration(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._require_estimator().account_for_migration(
            departed_ids=payload.get("departed_ids", ()),
            unseen_collision_pairs=int(payload.get("unseen_collision_pairs", 0)),
            unseen_non_collision_pairs=int(payload.get("unseen_non_collision_pairs", 0)),
        )
        return self._stats()

    def op_close_estimator(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.estimator is not None:
            self.estimator.close()
            self.estimator = None
        return self._stats()

    def op_check(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._require_index().check_invariants()
        return self._stats()

    def op_stats(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        stats = self._stats()
        if payload.get("metrics"):
            # opt-in: the worker's process-global registry (per-op latency
            # histograms etc.), merged coordinator-side by stats fan-outs
            stats["metrics"] = get_global_registry().snapshot().to_dict()
        return stats

    # ------------------------------------------------------------------
    def handle(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise ClusterError(f"unknown worker op {op!r}")
        return handler(payload or {})


def serve_connection(conn: Connection, worker: ShardWorker) -> bool:
    """Serve one coordinator session; returns True on explicit shutdown.

    The loop survives per-op failures (the error is reported in the
    reply and the session continues) and ends cleanly on EOF — a
    coordinator that crashed without saying goodbye must not leave the
    worker process spinning.

    Telemetry lives in the reply *meta* envelope, never the payload: every
    reply carries ``{"seconds": <handler wall time>}`` (this feeds
    ``RemoteIndexProxy.worker_ingest_seconds`` and the bench_cluster
    pipeline model), and when the request meta shipped a trace context the
    worker's finished spans ride back as ``{"spans": [...]}`` so the
    coordinator stitches them into the caller's trace tree.  Per-op wall
    time also lands in this process's global metrics registry
    (``worker_op_seconds{op=...}``), exported on ``stats`` fan-outs.
    """
    registry = get_global_registry()
    tracer = get_tracer()
    op_histograms: Dict[str, Any] = {}
    while True:
        try:
            op, payload, request_meta = conn.recv()
        except ConnectionClosed:
            return False  # coordinator went away: end of session
        if op == "shutdown":
            try:
                conn.send("ok", {})
            except ConnectionClosed:
                pass
            return True
        trace_ctx = request_meta.get("trace")
        started = time.perf_counter()
        span = None
        try:
            if trace_ctx is not None:
                with activate_trace_context(trace_ctx):
                    with trace(f"worker.{op}", shard_id=worker.shard_id) as span:
                        result = worker.handle(op, payload)
            else:
                result = worker.handle(op, payload)
        except Exception as error:  # noqa: BLE001  # reprolint: disable=R007 - protocol boundary: every failure becomes an error reply to the coordinator
            status, body = "error", describe_error(error)
            if span is not None:
                span.set_attribute("error", body["type"])
        else:
            status, body = "ok", result
        elapsed = time.perf_counter() - started
        histogram = op_histograms.get(op)
        if histogram is None:
            histogram = op_histograms[op] = registry.histogram(
                "worker_op_seconds", op=op
            )
        histogram.observe(elapsed)
        reply_meta: Dict[str, Any] = {"seconds": elapsed}
        if trace_ctx is not None:
            # ship only this trace's spans; anything else (same-process
            # test harnesses sharing the global tracer) goes back in the
            # buffer untouched
            drained = tracer.drain()
            mine = [s for s in drained if s.trace_id == trace_ctx["trace_id"]]
            tracer.adopt(s for s in drained if s.trace_id != trace_ctx["trace_id"])
            reply_meta["spans"] = [s.to_dict() for s in mine]
        try:
            conn.send(status, body, reply_meta)
        except ConnectionClosed:
            return False


# ----------------------------------------------------------------------
# run modes
# ----------------------------------------------------------------------
def run_spawned_worker(
    host: str, port: int, token: str, shard_id: int, connect_timeout: float = 30.0
) -> None:
    """Entry point of a coordinator-spawned worker process.

    Connects back to the coordinator's rendezvous listener, identifies
    itself (token + shard id), then serves until shutdown or EOF.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    conn = Connection(sock, timeout=connect_timeout)
    conn.send(
        "hello",
        {
            "protocol": PROTOCOL_VERSION,
            "token": token,
            "shard_id": shard_id,
            "pid": os.getpid(),
        },
    )
    conn.recv_reply(context="worker handshake")
    # session established: block indefinitely for requests (the socket
    # EOFs if the coordinator dies, which ends the serve loop)
    sock.settimeout(None)
    try:
        serve_connection(conn, ShardWorker(shard_id))
    finally:
        conn.close()


def _check_hello(payload: Dict[str, Any], token: Optional[str]) -> None:
    if int(payload.get("protocol", -1)) != PROTOCOL_VERSION:
        raise ClusterError(
            f"protocol mismatch: worker speaks {PROTOCOL_VERSION}, "
            f"coordinator sent {payload.get('protocol')!r}"
        )
    if token is not None and payload.get("token") != token:
        raise ClusterError("coordinator presented a wrong or missing token")


def serve(
    address: Tuple[str, int],
    *,
    token: Optional[str] = None,
    once: bool = False,
    on_ready: Any = None,
) -> None:
    """Standalone worker loop (the ``repro worker`` CLI command).

    Listens on ``address`` and serves one coordinator session at a time;
    each session begins with the coordinator's ``hello`` (protocol +
    token check) and ends at shutdown/EOF.  With ``once`` the process
    returns after the first session instead of waiting for the next
    coordinator.  ``on_ready`` (if given) is called with the bound
    ``(host, port)`` once the socket is listening.
    """
    listener = socket.create_server(address, backlog=1)
    try:
        if on_ready is not None:
            on_ready(listener.getsockname()[:2])
        while True:
            client, _peer = listener.accept()
            conn = Connection(client, timeout=None)
            try:
                op, payload, _meta = conn.recv()
                if op != "hello":
                    raise ClusterError(f"expected 'hello', got {op!r}")
                _check_hello(payload or {}, token)
            except ClusterError as error:
                try:
                    conn.send("error", describe_error(error))
                except ConnectionClosed:
                    pass  # the peer is gone; nothing to tell it
                finally:
                    conn.close()
                continue
            except ConnectionClosed:
                conn.close()
                continue
            try:
                conn.send("ok", {"pid": os.getpid(), "protocol": PROTOCOL_VERSION})
            except ConnectionClosed:
                # the client vanished between hello and our reply: this was
                # never a session — keep listening (even under ``once``)
                conn.close()
                continue
            shard_id = payload.get("shard_id")
            try:
                serve_connection(
                    conn, ShardWorker(None if shard_id is None else int(shard_id))
                )
            finally:
                conn.close()
            if once:
                return
    finally:
        listener.close()


__all__ = ["ShardWorker", "serve", "serve_connection", "run_spawned_worker"]
