"""A sharded mutable LSH index: scale-out with a drop-in single-index surface.

:class:`ShardedMutableIndex` partitions the bucket-key space of a
:class:`~repro.streaming.mutable_index.MutableLSHIndex` across ``S``
shards.  Every shard wraps its own ``MutableLSHIndex`` (sharing the *same*
hash-family instances, so all shards hash identically) plus an optional
per-shard :class:`~repro.streaming.estimator.StreamingEstimator` whose
reservoirs are repaired locally as mutations arrive.

The facade exposes the full single-index surface — ``insert`` /
``insert_many`` / ``delete``, observers, SampleH / SampleL, per-pair
cosine — with the *merge layer* built in:

* ``N_H`` is the sum of per-shard ``N_H`` (buckets never straddle
  shards), ``N_L = C(n, 2) − N_H`` (cross-shard pairs are all stratum L);
* the SampleH layout stitches per-shard buckets together in the *global*
  first-appearance order of their keys, which the facade tracks as events
  flow through it — so the stitched layout is exactly the layout one
  unsharded index would have built, and sampling draws are **bit-identical
  for the same seed**;
* member lists inside a bucket evolve only through operations on that
  bucket, all routed to one shard in arrival order, so they too match the
  unsharded index element for element.

Consequently a :class:`~repro.streaming.estimator.StreamingEstimator`
constructed over the facade behaves bit-identically to one constructed
over an unsharded index fed the same event sequence, and the dedicated
:class:`~repro.shard.merge.ShardedStreamingEstimator` adds a
reservoir-pooling mode that merges per-shard samples without touching
any bucket at query time.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from concurrent.futures import Executor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np
from scipy import sparse

from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh.families import LSHFamily
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, get_global_registry
from repro.obs.tracing import trace
from repro.lsh.index import resolve_family
from repro.lsh.table import sample_uniform_pairs, sample_weighted_bucket_pairs
from repro.rng import RandomState, ensure_rng, spawn
from repro.shard.partition import (
    Partitioner,
    key_signature_matrix,
    partitioner_from_state,
    partitioner_state,
    resolve_partitioner,
)
from repro.streaming.estimator import StreamingEstimator
from repro.streaming.mutable_index import (
    MutableLSHIndex,
    MutableLSHTable,
    VectorInput,
    claim_vector_id,
    coerce_matrix,
    coerce_row,
    collect_estimator_states,
    freeze_bucket_layout,
    restore_estimator_states,
    signature_bucket_key,
)
from repro.streaming.rowstore import pairwise_cosine
from repro.vectors.collection import VectorCollection


@dataclass
class IndexShard:
    """One shard: a mutable index plus its locally repaired estimator."""

    shard_id: int
    index: MutableLSHIndex
    estimator: Optional[StreamingEstimator] = None

    @property
    def size(self) -> int:
        return self.index.size

    @property
    def num_collision_pairs(self) -> int:
        """Shard-local ``N_H`` (additive across shards)."""
        return self.index.num_collision_pairs

    @property
    def intra_non_collision_pairs(self) -> int:
        """Shard-local ``N_L`` over *intra-shard* pairs only."""
        return self.index.num_non_collision_pairs

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexShard(id={self.shard_id}, n={self.size}, NH={self.num_collision_pairs})"


@dataclass
class PreparedBatch:
    """A routed insert batch: coerced rows, signatures, and shard targets."""

    ids: np.ndarray
    csr: sparse.csr_matrix
    signatures: List[np.ndarray]
    keys: List[bytes]
    shard_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.size)


class _MergedPrimaryView:
    """The facade's stand-in for ``index.primary_table``.

    Implements the subset of the :class:`MutableLSHTable` surface the
    estimators and samplers touch, answering from the owning shards.
    """

    def __init__(self, owner: "ShardedMutableIndex") -> None:
        self._owner = owner

    @property
    def num_vectors(self) -> int:
        return self._owner.size

    @property
    def num_hashes(self) -> int:
        return self._owner.num_hashes

    @property
    def num_collision_pairs(self) -> int:
        return self._owner.num_collision_pairs

    @property
    def num_buckets(self) -> int:
        return len(self._owner._bucket_refs)

    @property
    def bucket_sizes(self) -> np.ndarray:
        return np.asarray(
            [count for count, _ in self._owner._bucket_refs.values()], dtype=np.int64
        )

    def _shard_table(self, vector_id: int) -> MutableLSHTable:
        return self._owner.shard_of(vector_id).index.primary_table

    def signature_key(self, vector_id: int) -> bytes:
        return self._shard_table(int(vector_id)).signature_key(int(vector_id))

    def bucket_size_of(self, vector_id: int) -> int:
        return self._shard_table(int(vector_id)).bucket_size_of(int(vector_id))

    def same_bucket(self, u: int, v: int) -> bool:
        return self.signature_key(u) == self.signature_key(v)

    def same_bucket_many(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        key = self.signature_key
        return np.fromiter(
            (key(int(u)) == key(int(v)) for u, v in zip(left, right)),
            dtype=bool,
            count=len(left),
        )

    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._owner.sample_collision_pairs(sample_size, random_state=random_state)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MergedPrimaryView(n={self.num_vectors}, "
            f"buckets={self.num_buckets}, NH={self.num_collision_pairs})"
        )


class ShardedMutableIndex:
    """``S`` bucket-key-partitioned shards behind one mutable-index surface.

    Parameters
    ----------
    dimension, num_hashes, num_tables, family, random_state:
        As in :class:`~repro.streaming.mutable_index.MutableLSHIndex`;
        the hash families are drawn once with exactly the same generator
        sequence, so an unsharded index with the same seed hashes (and
        therefore buckets) every vector identically.
    num_shards:
        ``S`` — number of shards.
    partitioner:
        Bucket-key → shard assignment: a kind string (``"modulo"``, the
        default, or ``"rendezvous"`` for minimal-movement resizes via
        :mod:`repro.shard.rebalance`), a partitioner class, or a
        pre-built instance covering ``num_shards`` shards.
    shard_estimators:
        When true (default), every shard carries a
        :class:`~repro.streaming.estimator.StreamingEstimator` that
        repairs its reservoirs as mutations are routed in; the merge
        layer pools them for bucket-free query serving.
    estimator_kwargs:
        Extra keyword arguments for the per-shard estimators
        (``reservoir_size``, ``staleness_budget``, …).
    """

    def __init__(
        self,
        dimension: int,
        *,
        num_shards: int = 4,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: Union[str, Type[LSHFamily]] = "cosine",
        random_state: RandomState = None,
        partitioner: Union[str, Partitioner, type] = "modulo",
        shard_estimators: bool = True,
        estimator_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        if num_tables < 1:
            raise ValidationError(f"num_tables (ℓ) must be >= 1, got {num_tables}")
        self.dimension = int(dimension)
        self.num_hashes = int(num_hashes)
        self.num_tables = int(num_tables)
        self.partitioner = resolve_partitioner(partitioner, num_shards)
        # identical family-draw sequence to an unsharded MutableLSHIndex
        family_class = resolve_family(family)
        rng = ensure_rng(random_state)
        self.families: List[LSHFamily] = []
        for child in spawn(rng, num_tables):
            family_instance = family_class(self.num_hashes, random_state=child)
            family_instance.ensure_initialised(self.dimension)
            self.families.append(family_instance)
        self._shard_estimators = bool(shard_estimators)
        self._estimator_kwargs = dict(estimator_kwargs or {})
        self.shards: List[IndexShard] = []
        estimator_rngs = spawn(rng, num_shards) if self._shard_estimators else [None] * num_shards
        for shard_id in range(num_shards):
            self.shards.append(self._new_shard(shard_id, estimator_rngs[shard_id]))
        self._shard_of_id: Dict[int, int] = {}
        #: primary-table bucket key → [live member count, owning shard];
        #: dict order mirrors the unsharded table's bucket insertion order
        self._bucket_refs: Dict[bytes, List[int]] = {}
        self._live_ids: List[int] = []
        self._live_position: Dict[int, int] = {}
        self._next_id = 0
        self._observers: List[object] = []
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None
        #: True while some live bucket's owner differs from the current
        #: partitioner's pick (manual migrations, mid-rebalance snapshots);
        #: keeps owner re-checks off the hot ingest path otherwise
        self._owner_overrides = False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this cluster records into (global unless injected).

        Lazy ``getattr`` because :class:`ClusterCoordinator` wires its
        plumbing *before* this ``__init__`` runs and ``from_state``
        builds instances via ``__new__``.
        """
        registry = getattr(self, "_metrics", None)
        return registry if registry is not None else get_global_registry()

    @metrics.setter
    def metrics(self, registry: Optional[MetricsRegistry]) -> None:
        self._metrics = registry

    def _commit_instruments(self) -> Tuple[Histogram, Counter]:
        cached = getattr(self, "_commit_metric_handles", None)
        if cached is None:
            cached = self._commit_metric_handles = (
                self.metrics.histogram("commit_batch_seconds"),
                self.metrics.counter("commit_rows_total"),
            )
        return cached

    # ------------------------------------------------------------------
    @classmethod
    def from_collection(
        cls,
        collection: VectorCollection,
        *,
        num_shards: int = 4,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: Union[str, Type[LSHFamily]] = "cosine",
        random_state: RandomState = None,
        **kwargs: Any,
    ) -> "ShardedMutableIndex":
        """Bulk-load a collection (ids ``0 … n−1`` in row order)."""
        index = cls(
            collection.dimension,
            num_shards=num_shards,
            num_hashes=num_hashes,
            num_tables=num_tables,
            family=family,
            random_state=random_state,
            **kwargs,
        )
        index.insert_many(collection.matrix)
        return index

    # ------------------------------------------------------------------
    # shard management (construction + rebalance substrate)
    # ------------------------------------------------------------------
    def _new_shard(self, shard_id: int, estimator_rng: RandomState = None) -> IndexShard:
        """An empty shard sharing the cluster's families (hashing identically)."""
        index = MutableLSHIndex(
            self.dimension,
            num_hashes=self.num_hashes,
            num_tables=self.num_tables,
            families=self.families,
        )
        estimator = None
        if self._shard_estimators:
            estimator = StreamingEstimator(
                index, random_state=estimator_rng, **self._estimator_kwargs
            )
        return IndexShard(shard_id, index, estimator)

    def add_shards(self, new_total: int, *, estimator_seed: RandomState = None) -> None:
        """Grow the cluster to ``new_total`` (empty) shards.

        Existing shards and the partitioner are untouched — callers
        (:func:`repro.shard.rebalance.rebalance_cluster`) follow up by
        a plan under a partitioner that covers the new shard count.
        """
        if new_total < len(self.shards):
            raise ValidationError(
                f"add_shards cannot shrink the cluster "
                f"({len(self.shards)} → {new_total}); use a rebalance"
            )
        extra = new_total - len(self.shards)
        rngs = spawn(ensure_rng(estimator_seed), extra) if self._shard_estimators else [None] * extra
        for offset in range(extra):
            self.shards.append(self._new_shard(len(self.shards), rngs[offset]))

    def drop_trailing_shards(self, new_total: int) -> None:
        """Shrink the cluster to ``new_total`` shards; the rest must be empty."""
        if new_total < 1:
            raise ValidationError(f"a cluster needs >= 1 shard, got {new_total}")
        for shard in self.shards[new_total:]:
            if shard.size:
                raise ValidationError(
                    f"shard {shard.shard_id} still holds {shard.size} vectors; "
                    "rebalance them away before shrinking"
                )
            if shard.estimator is not None:
                shard.estimator.close()
        del self.shards[new_total:]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def size(self) -> int:
        """Number of live vectors ``n`` across all shards."""
        return len(self._live_ids)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, vector_id: int) -> bool:
        return vector_id in self._live_position

    @property
    def ids(self) -> np.ndarray:
        """Live vector ids (arbitrary but stable order, as unsharded)."""
        return np.asarray(self._live_ids, dtype=np.int64)

    @property
    def total_pairs(self) -> int:
        """``M = C(n, 2)`` over all live vectors, cross-shard included."""
        n = self.size
        return n * (n - 1) // 2

    @property
    def num_collision_pairs(self) -> int:
        """Global ``N_H``: the sum of per-shard counts (buckets are disjoint)."""
        return sum(shard.num_collision_pairs for shard in self.shards)

    @property
    def num_non_collision_pairs(self) -> int:
        """Global ``N_L = M − N_H`` (includes every cross-shard pair)."""
        return self.total_pairs - self.num_collision_pairs

    @property
    def primary_table(self) -> _MergedPrimaryView:
        """Merged view of the ``S`` primary tables (estimator compatibility)."""
        return _MergedPrimaryView(self)

    def shard_of(self, vector_id: int) -> IndexShard:
        """The shard holding a live vector."""
        try:
            return self.shards[self._shard_of_id[vector_id]]
        except KeyError:
            raise ValidationError(f"vector id {vector_id} is not in the index") from None

    def row(self, vector_id: int) -> sparse.csr_matrix:
        """The stored (raw) vector as a fresh 1×d CSR row."""
        return self.shard_of(int(vector_id)).index.row(int(vector_id))

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def register_observer(self, observer: object) -> None:
        """Register ``on_insert`` / ``on_delete`` hooks (as unsharded)."""
        self._observers.append(observer)

    def unregister_observer(self, observer: object) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _claim_id(self, vector_id: Optional[int]) -> int:
        vector_id, self._next_id = claim_vector_id(
            vector_id, self._next_id, self._live_position
        )
        return vector_id

    def _track_insert(self, vector_id: int, key: bytes, shard_id: int) -> None:
        self._shard_of_id[vector_id] = shard_id
        self._live_position[vector_id] = len(self._live_ids)
        self._live_ids.append(vector_id)
        ref = self._bucket_refs.get(key)
        if ref is None:
            self._bucket_refs[key] = [1, shard_id]
        else:
            ref[0] += 1
        self._frozen = None

    def _owning_shard(self, key: bytes) -> int:
        """Destination shard for a bucket key: the live bucket's owner, else
        the partitioner's pick.

        After a manual key migration (or mid-rebalance) a live bucket may
        sit on a different shard than the current partitioner would
        choose; routing to the *owner* keeps the never-straddle
        invariant under any owner assignment.  While owners and
        partitioner agree (`_owner_overrides` false — the common case),
        the partitioner's pick *is* the owner and the lookup is skipped.
        """
        if self._owner_overrides:
            ref = self._bucket_refs.get(key)
            if ref is not None:
                return ref[1]
        return self.partitioner(key)

    def _refresh_owner_alignment(self) -> None:
        """Recompute `_owner_overrides` in one vectorised pass over the keys.

        Called after rebalances and restores; everywhere else the flag
        only ever stays aligned (new buckets are placed by the
        partitioner, deletions cannot introduce divergence).
        """
        refs = self._bucket_refs
        if not refs:
            self._owner_overrides = False
            return
        keys = list(refs.keys())
        picks = self.partitioner.shard_of_signatures(
            key_signature_matrix(keys, self.num_hashes)
        )
        owners = np.fromiter(
            (ref[1] for ref in refs.values()), dtype=np.int64, count=len(keys)
        )
        self._owner_overrides = bool(np.any(picks != owners))

    def insert(self, vector: VectorInput, *, vector_id: Optional[int] = None) -> int:
        """Route one vector to its owning shard; returns the global id."""
        row = coerce_row(vector, self.dimension)
        signatures = [family.hash_matrix(row)[0] for family in self.families]
        vector_id = self._claim_id(vector_id)
        key = signature_bucket_key(signatures[0], self.num_hashes)
        shard_id = self._owning_shard(key)
        self.shards[shard_id].index._insert_prepared(vector_id, row, signatures)
        self._track_insert(vector_id, key, shard_id)
        for observer in self._observers:
            observer.on_insert(vector_id)
        return vector_id

    def prepare_batch(
        self,
        matrix: Union[sparse.spmatrix, np.ndarray, VectorCollection],
        *,
        vector_ids: Optional[Sequence[int]] = None,
        coerced: bool = False,
    ) -> PreparedBatch:
        """Coerce, hash (one batch product per table), and route a batch.

        Ids are claimed here; apply the batch with :meth:`commit_batch`.
        ``coerced=True`` skips re-canonicalisation for input that is
        canonical by construction (float64 CSR, sorted indices, no
        explicit zeros, finite) — the router's buffered rows already
        went through :func:`coerce_row` one by one.
        """
        csr = matrix if coerced else coerce_matrix(matrix, self.dimension)
        num_rows = csr.shape[0]
        signatures = [family.hash_matrix(csr) for family in self.families]
        if vector_ids is None:
            ids = np.arange(self._next_id, self._next_id + num_rows, dtype=np.int64)
            self._next_id += num_rows
        else:
            ids = np.asarray(list(vector_ids), dtype=np.int64)
            if ids.size != num_rows:
                raise ValidationError(f"got {ids.size} vector ids for {num_rows} rows")
            if np.unique(ids).size != ids.size:
                raise ValidationError("vector ids must be unique within a batch")
            ids = np.array([self._claim_id(int(i)) for i in ids], dtype=np.int64)
        primary = np.ascontiguousarray(signatures[0])
        keys = [primary[position].tobytes() for position in range(num_rows)]
        shard_ids = self.partitioner.shard_of_signatures(primary)
        if self._owner_overrides:
            # live buckets own their key even when a migration has moved
            # them off the partitioner's current pick (see _owning_shard)
            refs = self._bucket_refs
            for position, key in enumerate(keys):
                ref = refs.get(key)
                if ref is not None and ref[1] != shard_ids[position]:
                    shard_ids[position] = ref[1]
        return PreparedBatch(ids=ids, csr=csr, signatures=signatures, keys=keys, shard_ids=shard_ids)

    def commit_batch(
        self, batch: PreparedBatch, *, executor: Optional[Executor] = None
    ) -> np.ndarray:
        """Apply a prepared batch: shard-grouped ingestion + merge bookkeeping.

        Rows are grouped per shard (arrival order preserved within each
        group, so bucket member lists match an unsharded build) and fed
        through :meth:`MutableLSHIndex.insert_many_prepared` — optionally
        in parallel via ``executor`` (the shard groups touch disjoint
        state).  Facade bucket bookkeeping follows the original row
        order, so the merged SampleH layout is unaffected by the
        grouping; facade observers are notified once the whole batch is
        live (per-event granularity needs the unbatched :meth:`insert`).
        """
        histogram, rows_total = self._commit_instruments()
        started = time.perf_counter()
        with trace("shard.commit_batch", rows=len(batch)):
            result = self._commit_batch_inner(batch, executor=executor)
        histogram.observe(time.perf_counter() - started)
        rows_total.inc(len(batch))
        return result

    def _commit_batch_inner(
        self, batch: PreparedBatch, *, executor: Optional[Executor] = None
    ) -> np.ndarray:
        jobs = []
        for shard in self.shards:
            rows = np.flatnonzero(batch.shard_ids == shard.shard_id)
            if rows.size == 0:
                continue
            sub_ids = batch.ids[rows]
            sub_csr = batch.csr[rows]
            sub_signatures = [table_signatures[rows] for table_signatures in batch.signatures]
            jobs.append((shard, sub_ids, sub_csr, sub_signatures))
        if executor is None:
            for shard, sub_ids, sub_csr, sub_signatures in jobs:
                shard.index.insert_many_prepared(sub_ids, sub_csr, sub_signatures)
        else:
            futures = [
                executor.submit(
                    shard.index.insert_many_prepared, sub_ids, sub_csr, sub_signatures
                )
                for shard, sub_ids, sub_csr, sub_signatures in jobs
            ]
            for future in futures:
                future.result()
        for position in range(len(batch)):
            self._track_insert(
                int(batch.ids[position]), batch.keys[position], int(batch.shard_ids[position])
            )
        for position in range(len(batch)):
            vector_id = int(batch.ids[position])
            for observer in self._observers:
                observer.on_insert(vector_id)
        return batch.ids

    def insert_many(
        self,
        matrix: Union[sparse.spmatrix, np.ndarray, VectorCollection],
        *,
        vector_ids: Optional[Sequence[int]] = None,
        executor: Optional[Executor] = None,
    ) -> np.ndarray:
        """Batched ingestion: hash once, scatter rows to their shards."""
        return self.commit_batch(
            self.prepare_batch(matrix, vector_ids=vector_ids), executor=executor
        )

    def delete(self, vector_id: int) -> None:
        """Remove a live vector from its owning shard."""
        if vector_id not in self._live_position:
            raise ValidationError(f"vector id {vector_id} is not in the index")
        shard_id = self._shard_of_id.pop(vector_id)
        shard = self.shards[shard_id]
        key = shard.index.primary_table.signature_key(vector_id)
        shard.index.delete(vector_id)
        position = self._live_position.pop(vector_id)
        last = self._live_ids.pop()
        if last != vector_id:
            self._live_ids[position] = last
            self._live_position[last] = position
        ref = self._bucket_refs[key]
        ref[0] -= 1
        if ref[0] == 0:
            del self._bucket_refs[key]
        self._frozen = None
        for observer in self._observers:
            observer.on_delete(vector_id)

    # ------------------------------------------------------------------
    # merged sampling + similarity (the query-side merge layer)
    # ------------------------------------------------------------------
    def _bucket_members_on_shard(
        self, shard_id: int, keys: Sequence[bytes]
    ) -> List[List[int]]:
        """Member lists for ``keys`` (all owned by ``shard_id``), in order.

        The one bucket-content accessor of the merge layer — the
        multi-process coordinator overrides it with a single batched
        worker round trip per shard.
        """
        table = self.shards[shard_id].index.primary_table
        return [table.bucket_members_by_key(key) for key in keys]

    def _frozen_layout(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Global SampleH layout stitched from per-shard buckets.

        Buckets appear in the facade's global key order and carry the
        owning shard's member lists verbatim, which reproduces the layout
        of one unsharded table over the same event sequence — the basis
        of the bit-identical merged estimates.  Members are fetched
        through :meth:`_bucket_members_on_shard` in one batch per shard,
        then reassembled in the global order.
        """
        if self._frozen is None:
            wanted: Dict[int, List[bytes]] = {}
            order: List[Tuple[int, int]] = []  # (shard_id, position in its batch)
            for key, (count, shard_id) in self._bucket_refs.items():
                if count < 2:
                    continue
                batch = wanted.setdefault(shard_id, [])
                order.append((shard_id, len(batch)))
                batch.append(key)
            members = {
                shard_id: self._bucket_members_on_shard(shard_id, keys)
                for shard_id, keys in wanted.items()
            }
            self._frozen = freeze_bucket_layout(
                members[shard_id][position] for shard_id, position in order
            )
        return self._frozen

    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from the merged stratum H (SampleH)."""
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self.num_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum H is empty: every LSH bucket contains a single vector"
            )
        rng = ensure_rng(random_state)
        counts, offsets, members_flat, pair_counts = self._frozen_layout()
        return sample_weighted_bucket_pairs(
            counts, offsets, members_flat, pair_counts, sample_size, rng
        )

    def sample_non_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None, max_attempts: int = 64
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from the merged stratum L via rejection (SampleL)."""
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self.num_non_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum L is empty: every pair of vectors shares a bucket"
            )
        rng = ensure_rng(random_state)
        live = self.ids
        view = self.primary_table
        lefts: List[np.ndarray] = []
        rights: List[np.ndarray] = []
        remaining = sample_size
        for _attempt in range(max_attempts):
            batch = max(remaining, 16)
            left_pos, right_pos = sample_uniform_pairs(live.size, batch, rng)
            left, right = live[left_pos], live[right_pos]
            keep = ~view.same_bucket_many(left, right)
            if keep.any():
                lefts.append(left[keep][:remaining])
                rights.append(right[keep][:remaining])
                remaining -= lefts[-1].size
            if remaining <= 0:
                return (
                    np.concatenate(lefts).astype(np.int64),
                    np.concatenate(rights).astype(np.int64),
                )
        raise InsufficientSampleError(
            "could not sample enough stratum-L pairs; the LSH table groups "
            "almost every pair into a single bucket (k is far too small)"
        )

    def _gather_rows_on_shard(
        self, shard_id: int, ids: np.ndarray, *, normalized: bool
    ) -> sparse.csr_matrix:
        """Stack the rows of ``ids`` (all living on ``shard_id``) in order.

        The one row accessor of the query-side merge layer — the
        multi-process coordinator overrides it with a worker round trip.
        """
        store = self.shards[shard_id].index._rows
        return store.gather_normalized(ids) if normalized else store.gather_raw(ids)

    def _gather(self, ids: np.ndarray, *, normalized: bool) -> sparse.csr_matrix:
        """Stack rows living on many shards back into the order of ``ids``."""
        shard_ids = np.fromiter(
            (self._shard_of_id.get(int(i), -1) for i in ids), dtype=np.int64, count=ids.size
        )
        if shard_ids.size and shard_ids.min() < 0:
            missing = int(ids[int(np.argmin(shard_ids >= 0))])
            raise ValidationError(f"vector id {missing} is not in the index")

        def gather_on(shard_id: int, subset: np.ndarray) -> sparse.csr_matrix:
            return self._gather_rows_on_shard(shard_id, subset, normalized=normalized)

        present = np.unique(shard_ids)
        if present.size == 1:
            return gather_on(int(present[0]), ids)
        parts: List[sparse.csr_matrix] = []
        order: List[np.ndarray] = []
        for shard_id in present:
            rows = np.flatnonzero(shard_ids == shard_id)
            parts.append(gather_on(int(shard_id), ids[rows]))
            order.append(rows)
        stacked = sparse.vstack(parts, format="csr")
        permutation = np.concatenate(order)
        inverse = np.empty_like(permutation)
        inverse[permutation] = np.arange(permutation.size)
        return stacked[inverse]

    def _gather_normalized(self, ids: np.ndarray) -> sparse.csr_matrix:
        return self._gather(ids, normalized=True)

    def cosine_pairs(self, left_ids: Sequence[int], right_ids: Sequence[int]) -> np.ndarray:
        """Cosine similarities for live ``(left, right)`` id pairs across shards."""
        left = np.asarray(left_ids, dtype=np.int64)
        right = np.asarray(right_ids, dtype=np.int64)
        if left.shape != right.shape:
            raise ValidationError("left and right id arrays must have the same length")
        if left.size == 0:
            return np.zeros(0, dtype=np.float64)
        return pairwise_cosine(self._gather_normalized(left), self._gather_normalized(right))

    # ------------------------------------------------------------------
    # export / verification
    # ------------------------------------------------------------------
    def to_collection(self) -> Tuple[VectorCollection, np.ndarray]:
        """Materialise all live vectors as one collection (facade id order)."""
        if not self._live_ids:
            raise ValidationError("cannot materialise an empty index as a collection")
        ids = self.ids
        return VectorCollection(self._gather(ids, normalized=False), copy=False), ids

    def check_invariants(self) -> None:
        """Verify the merge bookkeeping against the shards (tests aid)."""
        if self.partitioner.num_shards != len(self.shards):
            raise AssertionError(
                f"partitioner covers {self.partitioner.num_shards} shards, "
                f"cluster has {len(self.shards)}"
            )
        for shard in self.shards:
            shard.index.check_invariants()
        if sum(shard.size for shard in self.shards) != self.size:
            raise AssertionError("facade live-id count drifted from the shards")
        for key, (count, shard_id) in self._bucket_refs.items():
            members = self.shards[shard_id].index.primary_table.bucket_members_by_key(key)
            if len(members) != count:
                raise AssertionError("bucket reference counts drifted from the shards")
        total_buckets = sum(shard.index.primary_table.num_buckets for shard in self.shards)
        if total_buckets != len(self._bucket_refs):
            raise AssertionError("bucket key registry drifted from the shards")

    # ------------------------------------------------------------------
    # snapshot / restore (checkpointing + rebalancing substrate)
    # ------------------------------------------------------------------
    def _adopt_shard_state(self, shard_id: int, state: Mapping[str, object]) -> None:
        """Replace one shard's index (and estimator) with a rebuilt state.

        The rebalance layer calls this after splitting/splicing shard
        snapshots: here the state is revived in process; the
        multi-process coordinator overrides it to ship the state to the
        shard's worker instead.  Estimators embedded in the state are
        adopted; a shard whose state carries none ends up with none (the
        caller decides whether to redraw).
        """
        shard = self.shards[shard_id]
        new_index = MutableLSHIndex.from_state(state)
        restored = new_index.estimators
        shard.index = new_index
        shard.estimator = restored[0] if restored else None

    def to_state(self) -> Dict[str, object]:
        """A picklable checkpoint of the facade and every shard.

        Per-shard estimator reservoirs travel inside each shard's state
        (:meth:`MutableLSHIndex.to_state` embeds its registered
        estimators); estimators observing the facade itself are captured
        under ``"estimators"``.  Restores therefore replay estimates
        bit-identically instead of redrawing sampled state.
        """
        state = {
            "format": 1,
            "kind": "sharded",
            "dimension": self.dimension,
            "num_hashes": self.num_hashes,
            "num_tables": self.num_tables,
            "num_shards": self.num_shards,
            "partitioner": partitioner_state(self.partitioner),
            "next_id": self._next_id,
            "live_ids": list(self._live_ids),
            "shard_of": [self._shard_of_id[i] for i in self._live_ids],
            "bucket_refs": [
                (key, count, shard_id)
                for key, (count, shard_id) in self._bucket_refs.items()
            ],
            "shard_estimators": self._shard_estimators,
            "estimator_kwargs": self._estimator_kwargs,
            "shards": [shard.index.to_state() for shard in self.shards],
        }
        facade_estimators = collect_estimator_states(self._observers)
        if facade_estimators:
            state["estimators"] = facade_estimators
        return state

    @classmethod
    def from_state(
        cls, state: Mapping[str, object], *, estimator_seed: RandomState = None
    ) -> "ShardedMutableIndex":
        """Rebuild a sharded index from :meth:`to_state` output.

        Per-shard estimators embedded in the shard states are reattached
        with their reservoirs, staleness counters, and generator
        positions intact, so restored clusters serve the *same* sampled
        state the original would — the substrate key-range migration
        relies on.  Only when a shard state carries no estimator (older
        snapshots, or ``shard_estimators`` toggled on after the
        snapshot) is a fresh estimator drawn, seeded from
        ``estimator_seed``.
        """
        state = cls._unwrap_sharded_state(state)
        sharded = cls.__new__(cls)
        sharded._restore_facade_fields(state)
        estimator_rngs = spawn(ensure_rng(estimator_seed), int(state["num_shards"]))
        sharded.shards = []
        for shard_id, shard_state in enumerate(state["shards"]):
            index = MutableLSHIndex.from_state(shard_state)
            restored = index.estimators
            if not sharded._shard_estimators:
                for estimator in restored:  # flag toggled off: detach
                    estimator.close()
                estimator = None
            elif restored:
                estimator = restored[0]
            else:
                estimator = StreamingEstimator(
                    index, random_state=estimator_rngs[shard_id], **sharded._estimator_kwargs
                )
            sharded.shards.append(IndexShard(shard_id, index, estimator))
        sharded.families = sharded.shards[0].index.families if sharded.shards else []
        sharded._restore_facade_bookkeeping(state)
        sharded._refresh_owner_alignment()
        restore_estimator_states(sharded, state.get("estimators", ()))
        return sharded

    @staticmethod
    def _unwrap_sharded_state(state: Mapping[str, object]) -> Mapping[str, object]:
        """Validate (and engine-unwrap) a sharded-index snapshot state."""
        if state.get("kind") == "engine-snapshot":
            # engine bundles wrap the index state; unwrap so low-level
            # tooling keeps working on front-door snapshots
            state = state.get("backend", {}).get("index", {})
        if state.get("format") != 1 or state.get("kind") != "sharded":
            raise ValidationError("not a sharded-index snapshot")
        return state

    def _restore_facade_fields(self, state: Mapping[str, object]) -> None:
        """Restore the scalar facade fields (shared with the cluster restore)."""
        self.dimension = int(state["dimension"])
        self.num_hashes = int(state["num_hashes"])
        self.num_tables = int(state["num_tables"])
        if "partitioner" in state:
            self.partitioner = partitioner_from_state(state["partitioner"])
        else:  # pre-rebalance snapshots carried only the shard count
            self.partitioner = resolve_partitioner("modulo", int(state["num_shards"]))
        self._shard_estimators = bool(state["shard_estimators"])
        self._estimator_kwargs = dict(state["estimator_kwargs"])
        budget = self._estimator_kwargs.get("staleness_budget")
        if isinstance(budget, (int, float)) and budget > 1.0:
            # legacy snapshots could carry budgets > 1, which behaved
            # exactly like 1.0 (staleness is a capped fraction); clamp so
            # they keep restoring under the tightened validation
            self._estimator_kwargs["staleness_budget"] = 1.0

    def _restore_facade_bookkeeping(self, state: Mapping[str, object]) -> None:
        """Restore the merge-layer bookkeeping (shared with the cluster restore)."""
        self._live_ids = [int(i) for i in state["live_ids"]]
        self._live_position = {
            vector_id: position for position, vector_id in enumerate(self._live_ids)
        }
        self._shard_of_id = {
            int(vector_id): int(shard_id)
            for vector_id, shard_id in zip(state["live_ids"], state["shard_of"])
        }
        self._bucket_refs = {
            bytes(key): [int(count), int(shard_id)]
            for key, count, shard_id in state["bucket_refs"]
        }
        self._next_id = int(state["next_id"])
        self._observers = []
        self._frozen = None

    def snapshot(self, path: Union[str, Path]) -> None:
        """Serialise the whole cluster state to one file."""
        with open(path, "wb") as handle:
            pickle.dump(self.to_state(), handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(
        cls, path: Union[str, Path], *, estimator_seed: RandomState = None
    ) -> "ShardedMutableIndex":
        """Revive a cluster from a :meth:`snapshot` file."""
        with open(path, "rb") as handle:
            state = pickle.load(handle)  # reprolint: disable=R005 - operator-supplied local snapshot file, same trust domain as the process
        return cls.from_state(state, estimator_seed=estimator_seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardedMutableIndex(n={self.size}, shards={self.num_shards}, "
            f"d={self.dimension}, k={self.num_hashes})"
        )


__all__ = ["IndexShard", "PreparedBatch", "ShardedMutableIndex"]
