"""Deterministic bucket-key → shard assignment.

The LSH-SS estimator's strata statistics are additive across disjoint
*bucket-key* partitions: a bucket lives wholly inside one shard, so
per-shard ``N_H = Σ C(b_j, 2)`` counts sum to the global ``N_H``, and
every cross-shard pair is guaranteed to be a stratum-L pair (different
shards ⇒ different signatures ⇒ different buckets).  The partitioners
therefore route on the *primary-table signature* — the same ``k``
integers the tables serialise into bucket keys.

Assignment is a content hash of the signature values (a splitmix64
finalizer per hash value folded FNV-style, which avalanches even the
0/1-valued SimHash signatures), so it is stable across processes,
platforms, and restarts — a requirement for checkpoint/restore and for
replaying a :class:`~repro.streaming.events.ChangeLog` onto a fresh
cluster.  Python's salted built-in ``hash`` must never be used here.
The hash is computed either from an ``(n, k)`` signature matrix in one
vectorised pass (``shard_of_signatures``, the router batch path) or from
the serialised key bytes (``shard_of``); both give identical
assignments.

Two partitioners share that hash:

* :class:`KeyPartitioner` — ``hash mod S``.  Fastest, but changing ``S``
  remaps almost every key (a full reshuffle).
* :class:`RendezvousPartitioner` — highest-random-weight (HRW) hashing:
  every shard is assigned a pseudo-random 64-bit weight per key (one
  more splitmix64 avalanche of ``key_hash XOR shard_salt``) and the key
  lives on the shard with the largest weight.  Growing ``S → S + 1``
  moves exactly the keys whose weight under the *new* shard beats all
  old ones — an expected ``1/(S+1)`` fraction — and shrinking moves only
  the departing shard's keys.  This is what makes online rebalancing
  (:mod:`repro.shard.rebalance`) cheap.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

import numpy as np

from repro.errors import ValidationError

_MASK_64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_FNV_PRIME = np.uint64(0x100000001B3)
_FNV_OFFSET = np.uint64(0xCBF29CE484222325)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, element-wise over ``uint64`` arrays."""
    mixed = (values ^ (values >> np.uint64(30))) * _MIX_1
    mixed = (mixed ^ (mixed >> np.uint64(27))) * _MIX_2
    return mixed ^ (mixed >> np.uint64(31))


def signature_shard_hash(signatures: np.ndarray) -> np.ndarray:
    """64-bit content hash per signature row, fully vectorised.

    Each of the ``k`` values is offset by a column constant, avalanched
    with the splitmix64 finalizer, and folded into an FNV-style
    accumulator.  All arithmetic is modular ``uint64`` (NumPy wraps
    silently on arrays), so the result is platform-independent.
    """
    values = np.ascontiguousarray(np.asarray(signatures, dtype=np.int64))
    if values.ndim == 1:
        values = values[None, :]
    bits = values.view(np.uint64)
    accumulator = np.full(bits.shape[0], _FNV_OFFSET, dtype=np.uint64)
    for column in range(bits.shape[1]):
        mixed = _splitmix64(
            bits[:, column] + np.uint64(((column + 1) * _GOLDEN) & _MASK_64)
        )
        accumulator = (accumulator ^ mixed) * _FNV_PRIME
    return accumulator ^ (accumulator >> np.uint64(33))


def key_signature_matrix(keys: Iterable[bytes], num_hashes: int) -> np.ndarray:
    """Decode serialised bucket keys back into an ``(n, k)`` signature matrix.

    Bucket keys are the little-endian ``int64`` bytes of the signature
    (:func:`repro.streaming.mutable_index.signature_bucket_key`), so the
    round trip is exact — the rebalance planner uses it to re-partition
    every live bucket key in one vectorised pass.
    """
    keys = list(keys)
    if not keys:
        return np.zeros((0, num_hashes), dtype=np.int64)
    flat = np.frombuffer(b"".join(keys), dtype=np.int64)
    if flat.size != len(keys) * num_hashes:
        raise ValidationError(
            f"bucket keys do not decode into k={num_hashes} signature values"
        )
    return flat.reshape(len(keys), num_hashes)


class _SignatureHashPartitioner:
    """Shared scaffolding: key decoding, equality, shard-count plumbing.

    Subclasses set :attr:`kind` and implement ``shard_of_signatures``
    over the shared :func:`signature_shard_hash` content hash; the
    key-bytes path is derived from it, so both entry points always
    agree.
    """

    kind = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def shard_of_signatures(self, signatures: np.ndarray) -> np.ndarray:
        """Owning shards for an ``(n, k)`` signature matrix (batch path)."""
        raise NotImplementedError

    def shard_of(self, key: bytes) -> int:
        """The shard owning the bucket with serialised signature ``key``.

        ``key`` is the bucket-key byte string the tables use
        (little-endian ``int64`` values); the assignment equals
        :meth:`shard_of_signatures` on the corresponding signature row.
        """
        if self.num_shards == 1:
            return 0
        values = np.frombuffer(key, dtype=np.int64)
        return int(self.shard_of_signatures(values)[0])

    def with_num_shards(self, num_shards: int) -> "_SignatureHashPartitioner":
        """The same partitioning scheme over a different shard count."""
        return type(self)(num_shards)

    def __call__(self, key: bytes) -> int:
        return self.shard_of(key)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.num_shards == self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class KeyPartitioner(_SignatureHashPartitioner):
    """Stable modulo assignment of bucket keys to ``num_shards`` shards."""

    kind = "modulo"

    def shard_of_signatures(self, signatures: np.ndarray) -> np.ndarray:
        """Owning shards for an ``(n, k)`` signature matrix (batch path)."""
        hashes = signature_shard_hash(signatures)
        if self.num_shards == 1:
            return np.zeros(hashes.size, dtype=np.int64)
        return (hashes % np.uint64(self.num_shards)).astype(np.int64)


class RendezvousPartitioner(_SignatureHashPartitioner):
    """Highest-random-weight (HRW) assignment with minimal-movement resizes.

    Every shard gets a fixed 64-bit salt (a splitmix64 avalanche of its
    id); a key's weight under a shard is one more avalanche of
    ``key_hash XOR salt``, and the key lives wherever its weight is
    highest.  Each (key, shard) weight is an independent-looking uniform
    draw, so resizing ``S → S'`` moves only the keys whose winner
    changes — an expected ``1/max(S, S')`` fraction — instead of the
    ``(S−1)/S`` a modulo partitioner reshuffles.  Salts depend only on
    the shard id, so shards ``0 … min(S, S')−1`` keep their weights
    across :meth:`with_num_shards` — the minimal-movement property.
    """

    kind = "rendezvous"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        shard_ids = np.arange(1, self.num_shards + 1, dtype=np.uint64)
        self._salts = _splitmix64(shard_ids * np.uint64(_GOLDEN))

    def shard_of_signatures(self, signatures: np.ndarray) -> np.ndarray:
        """Owning shards for an ``(n, k)`` signature matrix (batch path)."""
        hashes = signature_shard_hash(signatures)
        if self.num_shards == 1:
            return np.zeros(hashes.size, dtype=np.int64)
        weights = _splitmix64(hashes[:, None] ^ self._salts[None, :])
        return np.argmax(weights, axis=1).astype(np.int64)


Partitioner = Union[KeyPartitioner, RendezvousPartitioner]

_PARTITIONER_KINDS: Dict[str, type] = {
    KeyPartitioner.kind: KeyPartitioner,
    RendezvousPartitioner.kind: RendezvousPartitioner,
}


def resolve_partitioner(
    spec: Union[str, type, KeyPartitioner, RendezvousPartitioner],
    num_shards: int,
) -> Partitioner:
    """Normalise a partitioner spec: kind string, class, or instance.

    An instance must already match ``num_shards``; a kind string
    (``"modulo"`` / ``"rendezvous"``) or partitioner class is
    instantiated for it.
    """
    if isinstance(spec, str):
        try:
            return _PARTITIONER_KINDS[spec](num_shards)
        except KeyError:
            raise ValidationError(
                f"unknown partitioner kind {spec!r}; "
                f"expected one of {sorted(_PARTITIONER_KINDS)}"
            ) from None
    if isinstance(spec, type):
        return spec(num_shards)
    if spec.num_shards != num_shards:
        raise ValidationError(
            f"partitioner covers {spec.num_shards} shards, expected {num_shards}"
        )
    return spec


def partitioner_state(partitioner: Partitioner) -> Dict[str, object]:
    """A picklable description of a partitioner (snapshot substrate)."""
    return {"kind": partitioner.kind, "num_shards": partitioner.num_shards}


def partitioner_from_state(state: Mapping[str, object]) -> Partitioner:
    """Rebuild a partitioner from :func:`partitioner_state` output."""
    return resolve_partitioner(str(state["kind"]), int(state["num_shards"]))


__all__ = [
    "KeyPartitioner",
    "RendezvousPartitioner",
    "Partitioner",
    "signature_shard_hash",
    "key_signature_matrix",
    "resolve_partitioner",
    "partitioner_state",
    "partitioner_from_state",
]
