"""Deterministic bucket-key → shard assignment.

The LSH-SS estimator's strata statistics are additive across disjoint
*bucket-key* partitions: a bucket lives wholly inside one shard, so
per-shard ``N_H = Σ C(b_j, 2)`` counts sum to the global ``N_H``, and
every cross-shard pair is guaranteed to be a stratum-L pair (different
shards ⇒ different signatures ⇒ different buckets).  The partitioner
therefore routes on the *primary-table signature* — the same ``k``
integers the tables serialise into bucket keys.

Assignment is a content hash of the signature values (a splitmix64
finalizer per hash value folded FNV-style, which avalanches even the
0/1-valued SimHash signatures), so it is stable across processes,
platforms, and restarts — a requirement for checkpoint/restore and for
replaying a :class:`~repro.streaming.events.ChangeLog` onto a fresh
cluster.  Python's salted built-in ``hash`` must never be used here.
The hash is computed either from an ``(n, k)`` signature matrix in one
vectorised pass (:meth:`KeyPartitioner.shard_of_signatures`, the router
batch path) or from the serialised key bytes
(:meth:`KeyPartitioner.shard_of`); both give identical assignments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

_MASK_64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_FNV_PRIME = np.uint64(0x100000001B3)
_FNV_OFFSET = np.uint64(0xCBF29CE484222325)


def signature_shard_hash(signatures: np.ndarray) -> np.ndarray:
    """64-bit content hash per signature row, fully vectorised.

    Each of the ``k`` values is offset by a column constant, avalanched
    with the splitmix64 finalizer, and folded into an FNV-style
    accumulator.  All arithmetic is modular ``uint64`` (NumPy wraps
    silently on arrays), so the result is platform-independent.
    """
    values = np.ascontiguousarray(np.asarray(signatures, dtype=np.int64))
    if values.ndim == 1:
        values = values[None, :]
    bits = values.view(np.uint64)
    accumulator = np.full(bits.shape[0], _FNV_OFFSET, dtype=np.uint64)
    for column in range(bits.shape[1]):
        mixed = bits[:, column] + np.uint64(((column + 1) * _GOLDEN) & _MASK_64)
        mixed = (mixed ^ (mixed >> np.uint64(30))) * _MIX_1
        mixed = (mixed ^ (mixed >> np.uint64(27))) * _MIX_2
        mixed ^= mixed >> np.uint64(31)
        accumulator = (accumulator ^ mixed) * _FNV_PRIME
    return accumulator ^ (accumulator >> np.uint64(33))


class KeyPartitioner:
    """Stable assignment of bucket keys to ``num_shards`` shards."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def shard_of_signatures(self, signatures: np.ndarray) -> np.ndarray:
        """Owning shards for an ``(n, k)`` signature matrix (batch path)."""
        hashes = signature_shard_hash(signatures)
        if self.num_shards == 1:
            return np.zeros(hashes.size, dtype=np.int64)
        return (hashes % np.uint64(self.num_shards)).astype(np.int64)

    def shard_of(self, key: bytes) -> int:
        """The shard owning the bucket with serialised signature ``key``.

        ``key`` is the bucket-key byte string the tables use
        (little-endian ``int64`` values); the assignment equals
        :meth:`shard_of_signatures` on the corresponding signature row.
        """
        if self.num_shards == 1:
            return 0
        values = np.frombuffer(key, dtype=np.int64)
        return int(self.shard_of_signatures(values)[0])

    def __call__(self, key: bytes) -> int:
        return self.shard_of(key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeyPartitioner) and other.num_shards == self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"KeyPartitioner(num_shards={self.num_shards})"


__all__ = ["KeyPartitioner", "signature_shard_hash"]
