"""Merging per-shard strata statistics and reservoirs into one estimate.

The LSH-SS decomposition survives sharding because the strata are
additive over the bucket-key partition:

* ``N_H = Σ_s N_H^{(s)}`` — a bucket lives wholly inside one shard;
* every cross-shard pair has differing signatures, hence lies in
  stratum L: ``N_L = C(n, 2) − N_H``, with the intra-shard share
  ``Σ_s (C(n_s, 2) − N_H^{(s)})`` and the rest cross-shard.

:func:`merge_strata` exposes those identities as numbers;
:class:`ShardedStreamingEstimator` turns them into estimates through two
paths:

* ``mode="exact"`` — the facade's merged SampleH / SampleL primitives.
  The merged bucket layout reproduces the unsharded one (see
  :mod:`repro.shard.sharded_index`), so for the same seed the estimate
  is **bit-identical** to an unsharded
  :class:`~repro.streaming.estimator.StreamingEstimator` in exact mode
  over the same event sequence.
* ``mode="merged"`` (and ``"auto"``, its alias with per-shard repairs
  already applied by the routed mutations) — pool the per-shard
  reservoirs without touching any bucket at query time: stratum-H draws
  pick a shard with probability ``N_H^{(s)} / N_H`` and then a reservoir
  pair; stratum-L draws mix the per-shard intra-L reservoirs with
  directly sampled cross-shard pairs (shard pair ``(i, j)`` with
  probability ``n_i·n_j / N_L^{cross}``, members uniform).  Each draw is
  i.i.d. uniform over its stratum, so the LSH-SS kernels apply
  unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Callable, Optional, Tuple

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.core.lsh_ss import (
    Dampening,
    default_answer_threshold,
    default_sample_size,
    sample_stratum_h,
    sample_stratum_l,
)
from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry, get_global_registry
from repro.obs.tracing import trace
from repro.rng import RandomState, ensure_rng
from repro.shard.sharded_index import IndexShard, ShardedMutableIndex

if TYPE_CHECKING:  # the router imports this package's index; stay acyclic
    from repro.shard.router import ShardRouter

_MODES = ("auto", "exact", "merged")

#: draws ``size`` pair ids: (left ids, right ids)
PairSource = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class MergedStrata:
    """Global strata sizes reassembled from per-shard statistics."""

    size: int
    num_collision_pairs: int
    shard_sizes: Tuple[int, ...]
    shard_collision_pairs: Tuple[int, ...]

    @property
    def total_pairs(self) -> int:
        return self.size * (self.size - 1) // 2

    @property
    def num_non_collision_pairs(self) -> int:
        return self.total_pairs - self.num_collision_pairs

    @property
    def shard_intra_non_collision_pairs(self) -> Tuple[int, ...]:
        return tuple(
            n * (n - 1) // 2 - collisions
            for n, collisions in zip(self.shard_sizes, self.shard_collision_pairs)
        )

    @property
    def cross_shard_pairs(self) -> int:
        """Pairs spanning two shards — all of them stratum L."""
        return self.total_pairs - sum(n * (n - 1) // 2 for n in self.shard_sizes)


def merge_strata(sharded: ShardedMutableIndex) -> MergedStrata:
    """Assemble the additive strata identities from the live shards."""
    return MergedStrata(
        size=sharded.size,
        num_collision_pairs=sharded.num_collision_pairs,
        shard_sizes=tuple(shard.size for shard in sharded.shards),
        shard_collision_pairs=tuple(shard.num_collision_pairs for shard in sharded.shards),
    )


class ShardedStreamingEstimator(SimilarityJoinSizeEstimator):
    """LSH-SS served from a sharded index (see module docs for the modes).

    Parameters mirror :class:`~repro.streaming.estimator.StreamingEstimator`;
    the sample-size and ``δ`` defaults track the current *global* ``n``.
    ``details`` adds the per-shard strata (``shard_sizes`` /
    ``shard_collision_pairs``) and the sources used per stratum.

    ``router`` optionally attaches the cluster's
    :class:`~repro.shard.router.ShardRouter`: its buffer is flushed
    before every estimate, so inserts still sitting in the write buffer
    can never be silently missing from a served estimate.
    """

    name = "LSH-SS(sharded)"

    def __init__(
        self,
        sharded: ShardedMutableIndex,
        *,
        sample_size_h: Optional[int] = None,
        sample_size_l: Optional[int] = None,
        answer_threshold: Optional[int] = None,
        dampening: Dampening = None,
        router: Optional["ShardRouter"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        for name, value in (
            ("sample_size_h (m_H)", sample_size_h),
            ("sample_size_l (m_L)", sample_size_l),
            ("answer_threshold (δ)", answer_threshold),
        ):
            if value is not None and value < 1:
                raise ValidationError(f"{name} must be >= 1, got {value}")
        if dampening is not None and dampening != "auto":
            if not 0.0 < float(dampening) <= 1.0:
                raise ValidationError(f"dampening must be in (0, 1] or 'auto', got {dampening}")
        self.sharded = sharded
        self.router = router
        self.sample_size_h = sample_size_h
        self.sample_size_l = sample_size_l
        self.answer_threshold = answer_threshold
        self.dampening: Dampening = dampening
        registry = metrics if metrics is not None else get_global_registry()
        self._estimate_seconds = registry.histogram("merged_estimate_seconds")
        self._estimates_total = registry.counter("merged_estimates_total")

    @property
    def total_pairs(self) -> int:
        return self.sharded.total_pairs

    # ------------------------------------------------------------------
    # merged-reservoir pair sources
    # ------------------------------------------------------------------
    def _shard_h_draw(
        self, shard: IndexShard, count: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``count`` stratum-H pairs from one shard: reservoir, else fresh."""
        estimator = shard.estimator
        if estimator is not None and estimator.reservoir_usable("h"):
            left, right = estimator.reservoir_pairs("h")
            positions = rng.integers(0, left.size, size=count)
            return left[positions], right[positions]
        return shard.index.sample_collision_pairs(count, random_state=rng)

    def _shard_l_draw(
        self, shard: IndexShard, count: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``count`` intra-shard stratum-L pairs: reservoir, else fresh."""
        estimator = shard.estimator
        if estimator is not None and estimator.reservoir_usable("l"):
            left, right = estimator.reservoir_pairs("l")
            positions = rng.integers(0, left.size, size=count)
            return left[positions], right[positions]
        return shard.index.sample_non_collision_pairs(count, random_state=rng)

    def _merged_source_h(self, strata: MergedStrata) -> PairSource:
        weights = np.asarray(strata.shard_collision_pairs, dtype=np.float64)
        total = weights.sum()
        probabilities = weights / total

        def source(size: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
            picks = rng.choice(len(self.sharded.shards), size=size, p=probabilities)
            left = np.empty(size, dtype=np.int64)
            right = np.empty(size, dtype=np.int64)
            for shard_id in np.unique(picks):
                mask = picks == shard_id
                left[mask], right[mask] = self._shard_h_draw(
                    self.sharded.shards[int(shard_id)], int(mask.sum()), rng
                )
            return left, right

        return source

    def _merged_source_l(self, strata: MergedStrata) -> PairSource:
        num_shards = len(self.sharded.shards)
        intra = np.asarray(strata.shard_intra_non_collision_pairs, dtype=np.float64)
        # component num_shards + index(i, j) = the cross-shard block (i, j)
        cross_blocks = list(combinations(range(num_shards), 2))
        cross_weights = np.asarray(
            [strata.shard_sizes[i] * strata.shard_sizes[j] for i, j in cross_blocks],
            dtype=np.float64,
        )
        weights = np.concatenate([intra, cross_weights])
        probabilities = weights / weights.sum()
        shard_ids_arrays = [shard.index.ids for shard in self.sharded.shards]

        def source(size: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
            picks = rng.choice(weights.size, size=size, p=probabilities)
            left = np.empty(size, dtype=np.int64)
            right = np.empty(size, dtype=np.int64)
            for component in np.unique(picks):
                mask = picks == component
                count = int(mask.sum())
                if component < num_shards:
                    left[mask], right[mask] = self._shard_l_draw(
                        self.sharded.shards[int(component)], count, rng
                    )
                else:
                    i, j = cross_blocks[int(component) - num_shards]
                    left[mask] = shard_ids_arrays[i][
                        rng.integers(0, shard_ids_arrays[i].size, size=count)
                    ]
                    right[mask] = shard_ids_arrays[j][
                        rng.integers(0, shard_ids_arrays[j].size, size=count)
                    ]
            return left, right

        return source

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        threshold: float,
        *,
        random_state: RandomState = None,
        mode: str = "auto",
    ) -> Estimate:
        """Estimate the join size at ``threshold`` (see module docs for modes).

        Validation of ``mode`` happens here; the threshold check and the
        ``[0, M]`` clamp live in the base class.
        """
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        return super().estimate(threshold, random_state=random_state, mode=mode)

    def _estimate(
        self, threshold: float, *, random_state: RandomState = None, mode: str = "auto"
    ) -> Estimate:
        return self._estimate_with_mode(threshold, mode, random_state=random_state)

    def _estimate_with_mode(
        self, threshold: float, mode: str, *, random_state: RandomState = None
    ) -> Estimate:
        started = time.perf_counter()
        with trace("merge.estimate", mode=mode, threshold=threshold):
            estimate = self._estimate_with_mode_inner(
                threshold, mode, random_state=random_state
            )
        self._estimate_seconds.observe(time.perf_counter() - started)
        self._estimates_total.inc()
        return estimate

    def _estimate_with_mode_inner(
        self, threshold: float, mode: str, *, random_state: RandomState = None
    ) -> Estimate:
        if self.router is not None:
            self.router.flush()  # buffered inserts must be visible to estimates
        rng = ensure_rng(random_state)
        strata = merge_strata(self.sharded)
        n = strata.size
        num_h = strata.num_collision_pairs
        num_l = strata.num_non_collision_pairs
        sample_size_h = (
            self.sample_size_h if self.sample_size_h is not None else default_sample_size(n)
        )
        sample_size_l = (
            self.sample_size_l if self.sample_size_l is not None else default_sample_size(n)
        )
        answer_threshold = (
            self.answer_threshold
            if self.answer_threshold is not None
            else default_answer_threshold(n)
        )
        if mode == "exact":
            source_h = lambda size, generator: self.sharded.sample_collision_pairs(  # noqa: E731
                size, random_state=generator
            )
            source_l = lambda size, generator: self.sharded.sample_non_collision_pairs(  # noqa: E731
                size, random_state=generator
            )
        else:
            source_h = self._merged_source_h(strata) if num_h > 0 else None
            source_l = self._merged_source_l(strata) if num_l > 0 else None
        stratum_h = sample_stratum_h(
            num_h,
            source_h,
            self.sharded.cosine_pairs,
            threshold,
            sample_size_h,
            rng,
        )
        stratum_l = sample_stratum_l(
            num_l,
            source_l,
            self.sharded.cosine_pairs,
            threshold,
            answer_threshold,
            sample_size_l,
            self.dampening,
            rng,
        )
        return Estimate(
            value=stratum_h.estimate + stratum_l.estimate,
            estimator=self.name,
            threshold=threshold,
            details={
                "stratum_h": stratum_h.estimate,
                "stratum_l": stratum_l.estimate,
                "true_in_sample_h": stratum_h.true_in_sample,
                "true_in_sample_l": stratum_l.true_in_sample,
                "samples_taken_l": stratum_l.samples_taken,
                "reached_answer_threshold": stratum_l.reached_answer_threshold,
                "dampening_used": stratum_l.dampening_used,
                "n": n,
                "num_collision_pairs": num_h,
                "num_non_collision_pairs": num_l,
                "num_shards": self.sharded.num_shards,
                "shard_sizes": list(strata.shard_sizes),
                "shard_collision_pairs": list(strata.shard_collision_pairs),
                "cross_shard_pairs": strata.cross_shard_pairs,
                "mode": mode,
            },
        )


__all__ = ["MergedStrata", "merge_strata", "ShardedStreamingEstimator"]
