"""Event routing into a sharded index: replay + async batched ingestion.

:class:`ShardRouter` is the write path of the sharded deployment.  It
accepts the same event stream a single
:class:`~repro.streaming.mutable_index.MutableLSHIndex` would (inserts,
deletes, checkpoints — usually replayed from a
:class:`~repro.streaming.events.ChangeLog`) and applies it to a
:class:`~repro.shard.sharded_index.ShardedMutableIndex`:

* **inserts buffer** up to ``batch_size`` rows; a flush coerces the
  buffered vectors, hashes them in one batch matrix product per table,
  partitions the rows by bucket key, and feeds every shard its slice
  through :meth:`MutableLSHIndex.insert_many_prepared` — concurrently
  across shards on a thread pool (shard groups touch disjoint state, so
  the result is identical to the serial order);
* **deletes flush first** — a delete may target a still-buffered row, so
  buffered inserts are materialised before the delete is routed;
* **checkpoints flush** and, when an estimator is attached to the
  replay, emit an estimate.

The batch grouping preserves arrival order within every bucket, so the
replayed cluster reaches exactly the bucket layout — and therefore the
same merged estimates — as an unsharded index fed the same log.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Tuple

from repro.core.base import SimilarityJoinSizeEstimator

from scipy import sparse

from repro.errors import StrandedWritesError, ValidationError
from repro.obs.metrics import MetricsRegistry, get_global_registry
from repro.obs.tracing import trace
from repro.rng import RandomState, ensure_rng
from repro.shard.sharded_index import ShardedMutableIndex
from repro.streaming.events import ChangeLog, Checkpoint, Delete, Insert
from repro.streaming.mutable_index import VectorInput, coerce_row


class ShardRouter:
    """Buffered, shard-parallel writer for a :class:`ShardedMutableIndex`."""

    def __init__(
        self,
        index: ShardedMutableIndex,
        *,
        batch_size: int = 256,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        self.index = index
        self.batch_size = int(batch_size)
        registry = metrics if metrics is not None else get_global_registry()
        # handles cached here: flush-path instrumentation never touches
        # the registry lock
        self._flush_seconds = registry.histogram("router_flush_seconds")
        self._flushed_rows = registry.counter("router_flushed_rows_total")
        self._routed_events = registry.counter("router_events_total")
        workers = index.num_shards if max_workers is None else int(max_workers)
        if workers < 0:
            raise ValidationError(f"max_workers must be >= 0, got {workers}")
        # 0 workers = synchronous shard-by-shard ingestion (useful in tests)
        self._executor = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-shard")
            if workers > 1
            else None
        )
        self._pending_rows: List[sparse.csr_matrix] = []
        self._events_routed = 0
        #: set when a batch commit raised partway — shard slices may be
        #: applied while the facade saw nothing, so a retry would claim
        #: fresh ids and ingest those rows a second time
        self._commit_failed = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of buffered (not yet flushed) inserts."""
        return len(self._pending_rows)

    @property
    def events_routed(self) -> int:
        """Total insert/delete events applied (flushed inserts only)."""
        return self._events_routed

    @property
    def commit_failed(self) -> bool:
        """True after a batch commit raised partway (see :meth:`flush`)."""
        return self._commit_failed

    def drain_pending(self) -> List[sparse.csr_matrix]:
        """Take the buffered (never applied) insert rows out of the router.

        Returns the 1×d CSR rows in arrival order and clears the buffer —
        after a partial commit failure this is how callers recover the
        inserts that can no longer be flushed here (re-route them to a
        fresh cluster); a subsequent :meth:`close` then has nothing to
        strand and succeeds.
        """
        rows = self._pending_rows
        self._pending_rows = []
        return rows

    def insert(self, vector: VectorInput) -> None:
        """Buffer one insert; flushes automatically at ``batch_size``."""
        self._pending_rows.append(coerce_row(vector, self.index.dimension))
        if len(self._pending_rows) >= self.batch_size:
            self.flush()

    def delete(self, vector_id: int) -> None:
        """Flush buffered inserts, then route the delete to its shard."""
        self.flush()
        self.index.delete(vector_id)
        self._events_routed += 1
        self._routed_events.inc()

    def flush(self) -> int:
        """Hash, partition, and ingest the buffered inserts; returns the count.

        The buffer is cleared only after the batch commits.  A failure
        *before* the commit (e.g. while coercing a later event) leaves
        the buffer intact and retryable; a failure *during* the commit
        may have applied some shard slices already, so the router
        refuses further flushes instead of re-claiming ids and
        ingesting those rows twice — recover by replaying the log onto
        a fresh cluster (replay semantics, not transactions).
        """
        if not self._pending_rows:
            return 0
        if self._commit_failed:
            raise ValidationError(
                "a previous batch commit failed partway; the cluster may hold "
                "a partial batch — replay the log onto a fresh cluster instead "
                "of retrying this router"
            )
        if len(self._pending_rows) == 1:
            stacked = self._pending_rows[0]
        else:
            stacked = sparse.vstack(self._pending_rows, format="csr")
        count = len(self._pending_rows)
        started = time.perf_counter()
        with trace("router.flush", rows=count):
            # buffered rows are coerce_row output: canonical by construction
            batch = self.index.prepare_batch(stacked, coerced=True)
            try:
                self.index.commit_batch(batch, executor=self._executor)
            except BaseException:  # reprolint: disable=R007 - any escape here means buffered rows may be lost; latch the failure flag before re-raising
                self._commit_failed = True
                raise
        self._flush_seconds.observe(time.perf_counter() - started)
        self._flushed_rows.inc(count)
        self._routed_events.inc(count)
        self._pending_rows = []
        self._events_routed += count
        return count

    # ------------------------------------------------------------------
    def replay(
        self,
        log: ChangeLog,
        *,
        estimator: Optional[SimilarityJoinSizeEstimator] = None,
        threshold: Optional[float] = None,
        mode: str = "auto",
        random_state: RandomState = None,
    ) -> List[Tuple[str, object]]:
        """Route every event of ``log`` through the buffered write path.

        At each :class:`~repro.streaming.events.Checkpoint`, when both
        ``estimator`` and ``threshold`` are given, the buffer is flushed
        and an estimate collected as ``(label, Estimate)`` — mirroring
        :meth:`ChangeLog.replay` on a single index.

        A final flush is guaranteed even when the replay ends mid-batch
        or an event fails to apply: inserts buffered before the failing
        event are committed rather than silently dropped (at-least-once,
        as :meth:`flush` documents), and the original error propagates.
        """
        rng = ensure_rng(random_state)
        results: List[Tuple[str, object]] = []
        try:
            for event in log:
                if isinstance(event, Insert):
                    self.insert(event.vector)
                elif isinstance(event, Delete):
                    self.delete(event.vector_id)
                elif isinstance(event, Checkpoint):
                    self.flush()
                    if estimator is not None and threshold is not None:
                        results.append(
                            (event.label, estimator.estimate(threshold, random_state=rng, mode=mode))
                        )
                else:  # pragma: no cover - defensive
                    raise ValidationError(f"unknown event type: {type(event).__name__}")
        except BaseException as error:  # reprolint: disable=R007 - recovery flush must run before anything (even KeyboardInterrupt) propagates
            try:
                self.flush()
            except Exception as flush_error:  # reprolint: disable=R007 - chained into the original error below, never swallowed
                # the original error propagates, but the recovery-flush
                # failure must stay diagnosable: splice it into the
                # context chain (original → flush failure → whatever the
                # original was already chained to) instead of discarding
                flush_error.__context__ = error.__context__
                error.__context__ = flush_error
            raise
        self.flush()
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush remaining inserts and stop the worker pool.

        Idempotent: after the pool is shut down, later ``flush`` /
        ``close`` calls fall back to synchronous ingestion, so no
        buffered insert can be stranded by closing twice or by writing
        after close.

        After a partial commit failure the final flush cannot run
        (retrying would double-ingest; see :meth:`flush`).  Rows still
        buffered at that point are **not** silently dropped: the pool is
        shut down, the rows are drained, and
        :class:`~repro.errors.StrandedWritesError` is raised carrying
        them, so callers always learn which inserts were never applied
        (call :meth:`drain_pending` first to recover them and close
        quietly).
        """
        if not self._commit_failed:
            self.flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._commit_failed and self._pending_rows:
            stranded = self.drain_pending()
            raise StrandedWritesError(
                f"closing after a partial batch-commit failure strands "
                f"{len(stranded)} buffered insert(s) that were never applied; "
                "they are attached as .pending_rows — replay them onto a "
                "fresh cluster",
                pending_rows=stranded,
            )

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            self.close()
        except Exception as close_error:  # reprolint: disable=R007 - chained into the already-propagating exception below, never swallowed
            if exc_type is None:
                raise
            # an exception is already leaving the with-body (most likely
            # the commit failure itself): keep it primary and chain the
            # close-time error instead of masking the root cause
            close_error.__context__ = exc.__context__
            exc.__context__ = close_error

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardRouter(shards={self.index.num_shards}, batch={self.batch_size}, "
            f"pending={self.pending}, routed={self._events_routed})"
        )


__all__ = ["ShardRouter"]
