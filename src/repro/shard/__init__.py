"""Sharded scale-out of the streaming estimation subsystem.

The LSH-SS strata statistics are additive across disjoint bucket-key
partitions, which makes the PR-1 streaming subsystem shardable without
approximation:

* :mod:`~repro.shard.partition` — the stable bucket-key → shard
  assignments (a vectorised splitmix64/FNV content hash of the
  signature values; identical from key bytes or signature matrices):
  :class:`KeyPartitioner` (modulo) and :class:`RendezvousPartitioner`
  (highest-random-weight, minimal key movement under resizes).
* :mod:`~repro.shard.sharded_index` — :class:`ShardedMutableIndex`, ``S``
  shards (each a :class:`~repro.streaming.mutable_index.MutableLSHIndex`
  plus an optional locally repaired
  :class:`~repro.streaming.estimator.StreamingEstimator`) behind a
  drop-in single-index surface with the query-side merge layer built in.
* :mod:`~repro.shard.router` — :class:`ShardRouter`, the buffered write
  path: batch hashing, bucket-key partitioning, and shard-parallel
  ingestion on top of ``insert_many``; replays
  :class:`~repro.streaming.events.ChangeLog` streams.
* :mod:`~repro.shard.merge` — :func:`merge_strata` /
  :class:`ShardedStreamingEstimator`, combining per-shard ``N_H`` /
  ``N_L`` counts and reservoirs into one LSH-SS estimate; the exact mode
  is bit-identical (same seed) to an unsharded estimator over the same
  event sequence.
* :mod:`~repro.shard.rebalance` — online key-range migration over the
  snapshot/restore substrate: :func:`plan_rebalance` /
  :func:`apply_plan` / :func:`rebalance_cluster` resize or re-partition a
  cluster while exact-mode estimates stay bit-identical and per-shard
  estimator reservoirs are repaired rather than redrawn.
"""

from repro.shard.merge import MergedStrata, ShardedStreamingEstimator, merge_strata
from repro.shard.partition import (
    KeyPartitioner,
    RendezvousPartitioner,
    resolve_partitioner,
)
from repro.shard.rebalance import (
    KeyMove,
    RebalancePlan,
    apply_plan,
    plan_rebalance,
    rebalance_cluster,
)
from repro.shard.router import ShardRouter
from repro.shard.sharded_index import IndexShard, PreparedBatch, ShardedMutableIndex

__all__ = [
    "KeyPartitioner",
    "RendezvousPartitioner",
    "resolve_partitioner",
    "IndexShard",
    "PreparedBatch",
    "ShardedMutableIndex",
    "ShardRouter",
    "MergedStrata",
    "merge_strata",
    "ShardedStreamingEstimator",
    "KeyMove",
    "RebalancePlan",
    "plan_rebalance",
    "apply_plan",
    "rebalance_cluster",
]
