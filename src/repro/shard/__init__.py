"""Sharded scale-out of the streaming estimation subsystem.

The LSH-SS strata statistics are additive across disjoint bucket-key
partitions, which makes the PR-1 streaming subsystem shardable without
approximation:

* :mod:`~repro.shard.partition` — :class:`KeyPartitioner`, the stable
  bucket-key → shard assignment (a vectorised splitmix64/FNV content
  hash of the signature values; identical from key bytes or signature
  matrices).
* :mod:`~repro.shard.sharded_index` — :class:`ShardedMutableIndex`, ``S``
  shards (each a :class:`~repro.streaming.mutable_index.MutableLSHIndex`
  plus an optional locally repaired
  :class:`~repro.streaming.estimator.StreamingEstimator`) behind a
  drop-in single-index surface with the query-side merge layer built in.
* :mod:`~repro.shard.router` — :class:`ShardRouter`, the buffered write
  path: batch hashing, bucket-key partitioning, and shard-parallel
  ingestion on top of ``insert_many``; replays
  :class:`~repro.streaming.events.ChangeLog` streams.
* :mod:`~repro.shard.merge` — :func:`merge_strata` /
  :class:`ShardedStreamingEstimator`, combining per-shard ``N_H`` /
  ``N_L`` counts and reservoirs into one LSH-SS estimate; the exact mode
  is bit-identical (same seed) to an unsharded estimator over the same
  event sequence.
"""

from repro.shard.merge import MergedStrata, ShardedStreamingEstimator, merge_strata
from repro.shard.partition import KeyPartitioner
from repro.shard.router import ShardRouter
from repro.shard.sharded_index import IndexShard, PreparedBatch, ShardedMutableIndex

__all__ = [
    "KeyPartitioner",
    "IndexShard",
    "PreparedBatch",
    "ShardedMutableIndex",
    "ShardRouter",
    "MergedStrata",
    "merge_strata",
    "ShardedStreamingEstimator",
]
