"""Online shard rebalancing: key-range migration on the snapshot substrate.

A :class:`~repro.shard.sharded_index.ShardedMutableIndex` assigns every
*bucket key* to one shard.  Growing, shrinking, or re-partitioning the
cluster therefore reduces to moving sets of bucket keys — whole buckets,
with their member lists and rows — between shards.  This module does that
**online**, without rebuilding the cluster from the raw vectors:

* :func:`split_index_state` / :func:`splice_index_state` operate on
  :meth:`~repro.streaming.mutable_index.MutableLSHIndex.to_state`
  snapshots: the first filters a shard's state by a bucket-key
  predicate into a *remaining* state and a picklable *migration
  payload* (rows, per-table bucket fragments, moved-pair counts); the
  second splices a payload into another shard's state.  Payloads are
  plain picklable dicts, so a key range can be shipped to a shard on
  another node exactly like a checkpoint can.
* :func:`plan_rebalance` diffs the facade's live bucket owners against
  a target partitioner in one vectorised pass and returns a
  :class:`RebalancePlan` of :class:`KeyMove` entries.
* :func:`apply_plan` executes a plan: each affected shard is split /
  spliced at the state level and revived via ``from_state`` — member
  lists move verbatim and the facade's global bucket-order map only
  changes *owners*, so the merged SampleH layout (and with it every
  exact-mode estimate) stays bit-identical to an unsharded build.
  Per-shard estimator reservoirs travel inside the shard states
  (reservoir persistence) and are then *repaired*, not redrawn:
  departed vectors are evicted like deletes, arriving pair mass is
  booked as staleness, and the usual budget decides how much to
  resample.
* :func:`rebalance_cluster` is the driver: grow/shrink the shard list, swap the
  partitioner (a :class:`~repro.shard.partition.RendezvousPartitioner`
  moves only ``~1/(S+1)`` of the keys on a resize to ``S+1``), plan,
  and apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ValidationError
from repro.rng import RandomState
from repro.shard.partition import (
    Partitioner,
    key_signature_matrix,
    resolve_partitioner,
)
from repro.shard.sharded_index import ShardedMutableIndex


# ----------------------------------------------------------------------
# state-level key-range extraction / splicing
# ----------------------------------------------------------------------
def _split_index_state_groups(
    state: Mapping[str, object], groups: Mapping[object, Iterable[bytes]]
) -> Tuple[Dict[str, object], Dict[object, Dict[str, object]]]:
    """Split a shard snapshot into one payload per key group, in one pass.

    The workhorse behind :func:`split_index_state` and
    :func:`apply_plan`: a source shard shipping keys to many targets is
    scanned and copied once, not once per target.
    """
    key_group: Dict[bytes, object] = {}
    for group, keys in groups.items():
        for key in keys:
            key_group[bytes(key)] = group
    primary = state["tables"][0]
    present = {key for key, _ in primary}
    missing = set(key_group) - present
    if missing:
        raise ValidationError(
            f"{len(missing)} bucket key(s) are not live in this shard state"
        )
    moved_buckets: Dict[object, List[Tuple[bytes, List[int]]]] = {g: [] for g in groups}
    collision_pairs: Dict[object, int] = {g: 0 for g in groups}
    id_group: Dict[int, object] = {}
    for key, members in primary:
        group = key_group.get(key)
        if group is None:
            continue
        bucket = [int(member) for member in members]
        moved_buckets[group].append((key, bucket))
        collision_pairs[group] += len(bucket) * (len(bucket) - 1) // 2
        for member in bucket:
            id_group[member] = group
    remaining_tables: List[List[Tuple[bytes, List[int]]]] = []
    fragments: Dict[object, List[List[Tuple[bytes, List[int]]]]] = {g: [] for g in groups}
    for position, buckets in enumerate(state["tables"]):
        if position == 0:
            remaining_tables.append([(k, m) for k, m in buckets if k not in key_group])
            for group in groups:
                fragments[group].append(moved_buckets[group])
            continue
        # non-primary tables key on their own signatures: buckets there
        # may split — keep member order on all sides
        remaining: List[Tuple[bytes, List[int]]] = []
        table_fragments: Dict[object, List[Tuple[bytes, List[int]]]] = {g: [] for g in groups}
        for key, members in buckets:
            kept: List[int] = []
            split: Dict[object, List[int]] = {}
            for member in members:
                group = id_group.get(int(member))
                if group is None:
                    kept.append(member)
                else:
                    split.setdefault(group, []).append(member)
            if kept:
                remaining.append((key, kept))
            for group, moved in split.items():
                table_fragments[group].append((key, moved))
        remaining_tables.append(remaining)
        for group in groups:
            fragments[group].append(table_fragments[group])
    kept_live: List[int] = []
    moved_live: Dict[object, List[int]] = {g: [] for g in groups}
    for vector_id in state["live_ids"]:
        group = id_group.get(int(vector_id))
        if group is None:
            kept_live.append(int(vector_id))
        else:
            moved_live[group].append(int(vector_id))
    rows_state = state["rows"]
    row_position = {
        int(vector_id): position
        for position, vector_id in enumerate(rows_state["ids"])
    }
    matrix = rows_state["matrix"].tocsr()

    def select_rows(subset: List[int]) -> Dict[str, object]:
        if subset:
            selected = matrix[
                np.asarray([row_position[v] for v in subset], dtype=np.int64)
            ]
        else:
            selected = sparse.csr_matrix((0, int(rows_state["dimension"])))
        return {"dimension": rows_state["dimension"], "ids": list(subset), "matrix": selected}

    remaining_state = dict(state)
    remaining_state["live_ids"] = kept_live
    remaining_state["rows"] = select_rows(kept_live)
    remaining_state["tables"] = remaining_tables
    payloads = {
        group: {
            "format": 1,
            "kind": "bucket-migration",
            "dimension": state["dimension"],
            "num_hashes": state["num_hashes"],
            "num_tables": state["num_tables"],
            "ids": moved_live[group],
            "rows": select_rows(moved_live[group]),
            "tables": fragments[group],
            "collision_pairs": collision_pairs[group],
        }
        for group in groups
    }
    return remaining_state, payloads


def split_index_state(
    state: Mapping[str, object], keys: Iterable[bytes]
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split a shard snapshot by primary bucket key.

    Returns ``(remaining_state, payload)``: the snapshot with the
    selected buckets (and every vector they contain) removed, and a
    picklable migration payload for :func:`splice_index_state`.  The
    selected keys must all be live primary buckets.  Bucket member
    lists and live-id order are preserved on both sides, which is what
    keeps the facade's merged SampleH layout — and therefore exact-mode
    estimates — bit-identical across a migration.
    """
    remaining_state, payloads = _split_index_state_groups(state, {0: keys})
    return remaining_state, payloads[0]


def splice_index_state(
    state: Mapping[str, object], payload: Mapping[str, object]
) -> Dict[str, object]:
    """Merge a :func:`split_index_state` payload into a shard snapshot.

    Migrated primary buckets are appended whole (their keys cannot
    already live here — a bucket has exactly one owner); non-primary
    fragments extend existing buckets or open new ones.
    """
    if payload.get("kind") != "bucket-migration" or payload.get("format") != 1:
        raise ValidationError("not a bucket-migration payload")
    for field_name in ("dimension", "num_hashes", "num_tables"):
        if int(payload[field_name]) != int(state[field_name]):
            raise ValidationError(
                f"payload {field_name}={payload[field_name]} does not match "
                f"target state {field_name}={state[field_name]}"
            )
    arriving = [int(i) for i in payload["ids"]]
    existing = {int(i) for i in state["live_ids"]}
    duplicate = existing.intersection(arriving)
    if duplicate:
        raise ValidationError(
            f"{len(duplicate)} migrating vector id(s) already live in the target"
        )
    merged_tables: List[List[Tuple[bytes, List[int]]]] = []
    for position, (buckets, fragment) in enumerate(zip(state["tables"], payload["tables"])):
        merged = [(key, list(members)) for key, members in buckets]
        if position == 0:
            taken = {key for key, _ in merged}
            straddle = [key for key, _ in fragment if key in taken]
            if straddle:
                raise ValidationError(
                    f"{len(straddle)} migrating bucket key(s) already live in the "
                    "target shard; a bucket must have exactly one owner"
                )
            merged.extend((key, list(members)) for key, members in fragment)
        else:
            index_of = {key: position_ for position_, (key, _) in enumerate(merged)}
            for key, members in fragment:
                slot = index_of.get(key)
                if slot is None:
                    merged.append((key, list(members)))
                else:
                    merged[slot][1].extend(members)
        merged_tables.append(merged)
    target_rows = state["rows"]
    payload_rows = payload["rows"]
    merged_rows = {
        "dimension": target_rows["dimension"],
        "ids": list(target_rows["ids"]) + list(payload_rows["ids"]),
        "matrix": sparse.vstack(
            [target_rows["matrix"].tocsr(), payload_rows["matrix"].tocsr()], format="csr"
        )
        if arriving
        else target_rows["matrix"],
    }
    merged_state = dict(state)
    merged_state["live_ids"] = [int(i) for i in state["live_ids"]] + arriving
    merged_state["rows"] = merged_rows
    merged_state["tables"] = merged_tables
    if arriving:
        merged_state["next_id"] = max(int(state["next_id"]), max(arriving) + 1)
    return merged_state


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KeyMove:
    """One bucket key relocating from shard ``source`` to shard ``target``."""

    key: bytes
    source: int
    target: int


@dataclass
class RebalancePlan:
    """A set of key moves, optionally tied to a new target partitioner.

    ``partitioner`` is the assignment the cluster adopts once the moves
    are applied (``None`` for a manual key-range migration that keeps
    the current partitioner — the facade routes by live bucket owner,
    so manual placements stay consistent).
    """

    moves: List[KeyMove]
    total_keys: int
    partitioner: Optional[Partitioner] = None
    #: vectors actually relocated; filled in by :func:`apply_plan`
    moved_vectors: int = field(default=0, compare=False)

    @property
    def moved_keys(self) -> int:
        return len(self.moves)

    @property
    def moved_fraction(self) -> float:
        """Fraction of live bucket keys the plan relocates."""
        return len(self.moves) / self.total_keys if self.total_keys else 0.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RebalancePlan(moves={len(self.moves)}, total_keys={self.total_keys}, "
            f"fraction={self.moved_fraction:.4f}, partitioner={self.partitioner!r})"
        )


def plan_rebalance(sharded: ShardedMutableIndex, partitioner: Partitioner) -> RebalancePlan:
    """Diff live bucket owners against ``partitioner`` in one vectorised pass."""
    if partitioner.num_shards > sharded.num_shards:
        raise ValidationError(
            f"target partitioner covers {partitioner.num_shards} shards but the "
            f"cluster has {sharded.num_shards}; grow it first (add_shards)"
        )
    refs = sharded._bucket_refs
    keys = list(refs.keys())
    plan_moves: List[KeyMove] = []
    if keys:
        signatures = key_signature_matrix(keys, sharded.num_hashes)
        targets = partitioner.shard_of_signatures(signatures)
        owners = np.fromiter(
            (ref[1] for ref in refs.values()), dtype=np.int64, count=len(keys)
        )
        for position in np.flatnonzero(owners != targets):
            plan_moves.append(
                KeyMove(keys[position], int(owners[position]), int(targets[position]))
            )
    return RebalancePlan(moves=plan_moves, total_keys=len(keys), partitioner=partitioner)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def apply_plan(sharded: ShardedMutableIndex, plan: RebalancePlan) -> RebalancePlan:
    """Execute a rebalance plan: migrate keys, repair estimators, remap owners.

    Affected shards are round-tripped through the snapshot substrate
    (``to_state`` → split/splice → ``from_state``), so the operation is
    exactly as lossless as checkpoint/restore — including each shard
    estimator's reservoirs, which are restored and then repaired for
    the migrated pair mass instead of being redrawn.  Facade-level
    state (live-id order, bucket-key order, merged SampleH layout) is
    untouched apart from the owner column, which keeps exact-mode
    estimates bit-identical across the migration.
    """
    refs = sharded._bucket_refs
    num_shards = sharded.num_shards
    outgoing: Dict[int, Dict[int, List[bytes]]] = {}
    for move in plan.moves:
        ref = refs.get(move.key)
        if ref is None:
            raise ValidationError("plan moves a bucket key that is not live")
        if ref[1] != move.source:
            raise ValidationError(
                f"plan expects a bucket on shard {move.source} but it lives on "
                f"shard {ref[1]}"
            )
        if not 0 <= move.target < num_shards:
            raise ValidationError(
                f"plan targets shard {move.target} of a {num_shards}-shard cluster"
            )
        if move.target == move.source:
            raise ValidationError("plan moves a bucket key onto its current shard")
        outgoing.setdefault(move.source, {}).setdefault(move.target, []).append(move.key)
    if not plan.moves:
        if plan.partitioner is not None and plan.partitioner.num_shards == num_shards:
            sharded.partitioner = plan.partitioner
            sharded._refresh_owner_alignment()
        return plan

    affected = set(outgoing)
    for by_target in outgoing.values():
        affected.update(by_target)
    states = {shard_id: sharded.shards[shard_id].index.to_state() for shard_id in affected}
    departed: Dict[int, List[int]] = {}
    arrivals: Dict[int, List[Dict[str, object]]] = {}
    for source, by_target in outgoing.items():
        states[source], payloads = _split_index_state_groups(states[source], by_target)
        for target, payload in payloads.items():
            departed.setdefault(source, []).extend(payload["ids"])
            arrivals.setdefault(target, []).append(payload)

    # book arriving pair mass as reservoir staleness: moved buckets bring
    # their C(b, 2) collision pairs; every (arriving, resident) and
    # (arriving, arriving) non-colliding combination is a new intra-shard
    # stratum-L pair for the target
    unseen_h: Dict[int, int] = {}
    unseen_l: Dict[int, int] = {}
    moved_vectors = 0
    for target, payloads in arrivals.items():
        for payload in payloads:
            resident = len(states[target]["live_ids"])
            arriving = len(payload["ids"])
            collision_pairs = int(payload["collision_pairs"])
            unseen_h[target] = unseen_h.get(target, 0) + collision_pairs
            unseen_l[target] = unseen_l.get(target, 0) + (
                arriving * resident + arriving * (arriving - 1) // 2 - collision_pairs
            )
            states[target] = splice_index_state(states[target], payload)
            moved_vectors += arriving

    for shard_id in sorted(affected):
        # in process this revives the state locally; the multi-process
        # coordinator overrides the hook to ship it to the shard's worker
        sharded._adopt_shard_state(shard_id, states[shard_id])

    for move in plan.moves:
        refs[move.key][1] = move.target
    for target, payloads in arrivals.items():
        for payload in payloads:
            for vector_id in payload["ids"]:
                sharded._shard_of_id[int(vector_id)] = target
    sharded._frozen = None

    for shard_id in sorted(affected):
        estimator = sharded.shards[shard_id].estimator
        if estimator is not None:
            estimator.account_for_migration(
                departed_ids=departed.get(shard_id, ()),
                unseen_collision_pairs=unseen_h.get(shard_id, 0),
                unseen_non_collision_pairs=unseen_l.get(shard_id, 0),
            )
    if plan.partitioner is not None and plan.partitioner.num_shards == num_shards:
        sharded.partitioner = plan.partitioner
    sharded._refresh_owner_alignment()
    plan.moved_vectors = moved_vectors
    return plan


def rebalance_cluster(
    sharded: ShardedMutableIndex,
    *,
    num_shards: Optional[int] = None,
    partitioner: Optional[object] = None,
    estimator_seed: RandomState = None,
) -> RebalancePlan:
    """Resize and/or re-partition a live cluster with minimal key movement.

    Parameters
    ----------
    sharded:
        The cluster to rebalance, mutated in place.
    num_shards:
        Target shard count (default: unchanged).  Growing appends empty
        shards before migration; shrinking migrates every key off the
        trailing shards, then drops them.
    partitioner:
        Target partitioner kind/class/instance (default: the current
        partitioner's kind).  Under a
        :class:`~repro.shard.partition.RendezvousPartitioner`, a resize
        ``S → S+1`` relocates an expected ``1/(S+1)`` of the bucket
        keys; a modulo :class:`~repro.shard.partition.KeyPartitioner`
        reshuffles almost everything.
    estimator_seed:
        Seed for the estimators of newly added shards (existing shard
        estimators keep their state).

    Returns the executed :class:`RebalancePlan` (moved keys/vectors and
    the adopted partitioner).
    """
    current = sharded.num_shards
    target = current if num_shards is None else int(num_shards)
    if target < 1:
        raise ValidationError(f"a cluster needs >= 1 shard, got {target}")
    if partitioner is None:
        new_partitioner = (
            sharded.partitioner
            if target == current
            else sharded.partitioner.with_num_shards(target)
        )
    else:
        new_partitioner = resolve_partitioner(partitioner, target)
    if target > current:
        sharded.add_shards(target, estimator_seed=estimator_seed)
    plan = plan_rebalance(sharded, new_partitioner)
    apply_plan(sharded, plan)
    if target < current:
        sharded.drop_trailing_shards(target)
    if sharded.partitioner is not new_partitioner:
        # shrink path: apply_plan could not adopt a partitioner covering
        # fewer shards than the then-live cluster — adopt it now.  The
        # plan covered every key whose owner differed from it, so owners
        # are aligned by construction; no rescan needed.
        sharded.partitioner = new_partitioner
        sharded._owner_overrides = False
    return plan


__all__ = [
    "KeyMove",
    "RebalancePlan",
    "split_index_state",
    "splice_index_state",
    "plan_rebalance",
    "apply_plan",
    "rebalance_cluster",
]
