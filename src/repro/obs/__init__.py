"""Observability: metrics registry, span tracing, and JSON export.

Three small layers, all stdlib+numpy and all silent by default:

- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket latency
  histograms in a :class:`MetricsRegistry`; snapshots are plain dicts
  that merge associatively, so per-worker registries fold into one.
- :mod:`repro.obs.tracing` — ``trace(name)`` context managers building
  span trees whose context propagates through the cluster protocol, so
  one estimate stitches into a single trace across processes.
- :mod:`repro.obs.export` — JSON-line logging through the stdlib
  ``repro.obs`` logger (``NullHandler`` attached; opt in with
  :func:`enable_json_logging`).

``set_enabled(False)`` turns all collection off process-wide; the hot
paths then pay a single flag read.
"""

from repro.obs._state import obs_enabled, set_enabled
from repro.obs.export import enable_json_logging, log_json, logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    format_metric_name,
    get_global_registry,
    histogram_quantile,
    set_global_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    activate_trace_context,
    current_trace_context,
    get_tracer,
    set_tracer,
    trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "activate_trace_context",
    "current_trace_context",
    "enable_json_logging",
    "format_metric_name",
    "get_global_registry",
    "get_tracer",
    "histogram_quantile",
    "log_json",
    "logger",
    "obs_enabled",
    "set_enabled",
    "set_global_registry",
    "set_tracer",
    "trace",
]
