"""Span tracing with context propagation across the process boundary.

A :class:`Tracer` produces :class:`Span` records from ``trace(name)``
context managers.  The active span lives in a :mod:`contextvars`
variable, so nested ``trace`` blocks build a parent→child tree and the
*current* trace context — ``{"trace_id", "span_id"}`` — can be read at
any point with :func:`current_trace_context`.

Cross-process stitching: the cluster coordinator ships the current
context in the optional meta field of every protocol frame
(:mod:`repro.cluster.transport`); the worker activates it with
:func:`activate_trace_context` around the op handler, so worker-side
spans carry the *same* trace id with the coordinator's request span as
parent — and ships its finished spans back in the reply meta, where the
coordinator adopts them.  One estimate therefore yields a single span
tree covering the coordinator and every worker process it touched.

Retry stability: the context is derived from the *caller's* open span,
so resending a request (same span still active) ships an identical
``trace_id``/parent ``span_id`` — each attempt's worker span gets a
fresh ``span_id`` but attaches to the same parent.

Finished spans are buffered in a bounded deque (:meth:`Tracer.drain`
empties it) and logged as JSON lines at DEBUG level through
:mod:`repro.obs.export` — silent unless a handler is attached.
"""

from __future__ import annotations

import logging
import os
import random
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs import _state
from repro.obs.export import log_json, logger

#: (trace_id, span_id) of the innermost open span, per execution context.
#: Ids are raw 64-bit ints here — hex formatting is deferred to the
#: export boundary (``current_trace_context``, ``Span`` materialisation)
#: because an f-string per id is measurable on per-event hot paths.
_current: ContextVar[Optional[Tuple[int, int]]] = ContextVar(
    "repro_obs_current_span", default=None
)

# Span ids come from a private PRNG seeded with os.urandom once per
# process — independent of every estimator RNG stream, and far cheaper
# than a urandom syscall per span.  The seeding pid is remembered so a
# fork (spawned worker processes, forking servers) reseeds instead of
# letting parent and child emit identical id sequences.
_id_rng = random.Random(os.urandom(16))  # reprolint: disable=R001 - span ids must be unique across runs, not reproducible
_id_pid = os.getpid()
_ID_MASK = (1 << 64) - 1


def _new_id() -> int:
    """A fresh 64-bit id (independent of every estimator RNG stream)."""
    global _id_rng, _id_pid
    pid = os.getpid()
    if pid != _id_pid:
        _id_rng = random.Random(os.urandom(16))  # reprolint: disable=R001 - span ids must be unique across runs, not reproducible
        _id_pid = pid
    return _id_rng.getrandbits(64)


def _new_trace_ids() -> Tuple[int, int]:
    """A fresh (trace_id, span_id) pair from one 128-bit PRNG draw."""
    global _id_rng, _id_pid
    pid = os.getpid()
    if pid != _id_pid:
        _id_rng = random.Random(os.urandom(16))  # reprolint: disable=R001 - span ids must be unique across runs, not reproducible
        _id_pid = pid
    both = _id_rng.getrandbits(128)
    return both >> 64, both & _ID_MASK


def _hex(identifier: int) -> str:
    return f"{identifier:016x}"


@dataclass
class Span:
    """One timed operation inside a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_time: float = 0.0  # epoch seconds
    duration: Optional[float] = None  # seconds; None while open
    pid: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_time=float(payload.get("start_time", 0.0)),
            duration=payload.get("duration"),
            pid=int(payload.get("pid", 0)),
            attributes=dict(payload.get("attributes", {})),
        )


class _NullSpan:
    """The disabled-mode context manager: one shared, stateless instance."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Hand-rolled span context manager and lightweight span record.

    A slotted class instead of ``@contextmanager`` + an eager
    :class:`Span`: no generator object, no frame suspension, no
    dataclass construction, no hex formatting — the record itself is
    appended to the tracer's buffer and only turned into a full
    :class:`Span` (with hex ids) when someone actually reads it via
    :meth:`Tracer.drain` / :meth:`Tracer.spans`.  Together this keeps
    the per-span cost within the ≤ 3 % overhead budget gated by
    ``benchmarks/bench_obs.py``.
    """

    __slots__ = (
        "_tracer", "name", "_trace_id", "_span_id", "_parent_id",
        "start_time", "duration", "pid", "attributes", "_token", "_started",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self._trace_id = trace_id
        self._span_id = span_id
        self._parent_id = parent_id
        self.pid = _id_pid  # _new_id()/_new_trace_ids() just refreshed it
        self.attributes = attributes
        self.duration: Optional[float] = None

    # hex views, for callers that hold the span object directly
    @property
    def trace_id(self) -> str:
        return _hex(self._trace_id)

    @property
    def span_id(self) -> str:
        return _hex(self._span_id)

    @property
    def parent_id(self) -> Optional[str]:
        return None if self._parent_id is None else _hex(self._parent_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def _materialize(self) -> Span:
        return Span(
            name=self.name,
            trace_id=_hex(self._trace_id),
            span_id=_hex(self._span_id),
            parent_id=None if self._parent_id is None else _hex(self._parent_id),
            start_time=self.start_time,
            duration=self.duration,
            pid=self.pid,
            attributes=self.attributes,
        )

    def __enter__(self) -> "_ActiveSpan":
        self._token = _current.set((self._trace_id, self._span_id))
        self.start_time = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration = time.perf_counter() - self._started
        _current.reset(self._token)
        self._tracer._finished.append(self)
        # DEBUG-level span lines; the isEnabledFor check keeps the
        # materialisation off the hot path when nobody listens
        if logger.isEnabledFor(logging.DEBUG):
            log_json("span", level=logging.DEBUG, **self._materialize().to_dict())
        return False


class Tracer:
    """Creates spans and buffers the finished ones (bounded)."""

    def __init__(self, *, max_spans: int = 4096) -> None:
        self._finished: deque = deque(maxlen=int(max_spans))

    # ------------------------------------------------------------------
    def trace(self, name: str, **attributes: Any) -> Any:
        """Open a span named ``name``; ``with`` yields it (``None`` when
        disabled).

        Nested calls chain ``parent_id`` automatically; the outermost
        span starts a fresh trace unless a remote context was activated
        with :func:`activate_trace_context`.
        """
        if not _state.enabled:
            return _NULL_SPAN
        parent = _current.get()
        if parent is None:
            trace_id, span_id = _new_trace_ids()
            parent_id = None
        else:
            trace_id = parent[0]
            span_id = _new_id()
            parent_id = parent[1]
        # **attributes is already a fresh dict owned by this call
        return _ActiveSpan(self, name, trace_id, span_id, parent_id, attributes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._finished)

    def spans(self) -> List[Span]:
        """The buffered finished spans (oldest first), without draining."""
        return [
            entry if isinstance(entry, Span) else entry._materialize()
            for entry in self._finished
        ]

    def drain(self) -> List[Span]:
        """Remove and return every buffered finished span."""
        spans = self.spans()
        self._finished.clear()
        return spans

    def adopt(self, spans: Iterable[Union[Span, Mapping[str, Any]]]) -> None:
        """Append remotely produced spans (dicts or Span objects) to the buffer."""
        for span in spans:
            self._finished.append(
                span if isinstance(span, Span) else Span.from_dict(span)
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Tracer(buffered={len(self._finished)})"


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------
def current_trace_context() -> Optional[Dict[str, str]]:
    """The active span's ids as a wire-safe dict, or ``None`` outside spans."""
    current = _current.get()
    if current is None:
        return None
    return {"trace_id": _hex(current[0]), "span_id": _hex(current[1])}


@contextmanager
def activate_trace_context(context: Optional[Mapping[str, str]]) -> Any:
    """Adopt a remote trace context for the duration of the block.

    Spans opened inside join the remote trace (same ``trace_id``, the
    remote span as parent).  ``None`` deactivates any local context, so
    the block traces into a fresh tree.
    """
    if context is None:
        token = _current.set(None)
    else:
        token = _current.set(
            (int(str(context["trace_id"]), 16), int(str(context["span_id"]), 16))
        )
    try:
        yield
    finally:
        _current.reset(token)


# ----------------------------------------------------------------------
# the process-global tracer
# ----------------------------------------------------------------------
_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer every library layer records into."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def trace(name: str, **attributes: Any) -> Any:
    """``get_tracer().trace(...)`` — the library's one-line span spelling."""
    return _global_tracer.trace(name, **attributes)


__all__ = [
    "Span",
    "Tracer",
    "trace",
    "get_tracer",
    "set_tracer",
    "current_trace_context",
    "activate_trace_context",
]
