"""Low-overhead metrics: counters, gauges, fixed-bucket latency histograms.

A :class:`MetricsRegistry` hands out named instruments (optionally
labelled, e.g. ``registry.counter("cluster.round_trips", op="stats")``)
and snapshots the whole collection into plain dicts — JSON-safe,
mergeable, and restorable.  Everything is built for hot paths:

* instrument handles are plain objects cached by their construction
  site, so an increment is one attribute add (no registry lookup);
* a histogram observation is one :func:`bisect.bisect_right` into a
  fixed bound list plus an increment of a numpy ``int64`` counts cell —
  no allocation, no lock;
* the process-wide :mod:`repro.obs._state` switch makes every operation
  an early return when observability is off.

Thread-safety is "lock-cheap" by design: increments are not atomic
across threads, but each is a single bytecode-level add on a
GIL-protected object, so concurrent writers can at worst lose an
occasional sample — acceptable for operational telemetry, and the price
of keeping the estimate path inside the ≤ 3 % overhead gate.  Snapshots
are similarly relaxed (they read live values without stopping writers).

Merging is associative and commutative: counters and gauges add,
histogram bucket counts add element-wise (merging histograms with
different bounds raises).  That is what lets the cluster coordinator
fold per-worker registries into one view in any gather order.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.obs import _state

#: default latency bounds (seconds): 100 µs … 10 s, roughly log-spaced.
#: One overflow bucket beyond the last bound catches the tail.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: Any = ()) -> str:
    """``name{a=1,b=x}`` — the human-readable form used by ``repro stats``.

    Accepts either a mapping or the canonical tuple-of-pairs form.
    """
    if isinstance(labels, Mapping):
        labels = _labels_key(labels)
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically increasing sum (floats allowed: e.g. seconds, bytes)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if _state.enabled:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Counter({format_metric_name(self.name, self.labels)}={self._value})"


class Gauge:
    """A value that goes up and down (queue depth, pending writes, …)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        if _state.enabled:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if _state.enabled:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        if _state.enabled:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Gauge({format_metric_name(self.name, self.labels)}={self._value})"


class Histogram:
    """Fixed-bucket histogram (cumulative count/sum + per-bucket counts).

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one implicit overflow bucket catches everything beyond the
    last bound.  Counts live in a numpy ``int64`` array so merge and
    snapshot are vector operations.
    """

    __slots__ = ("name", "labels", "bounds", "_bounds_list", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        *,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(f"histogram bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._bounds_list = list(bounds)  # bisect is fastest on a plain list
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _state.enabled:
            return
        self._counts[bisect_right(self._bounds_list, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(int(c) for c in self._counts)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the q-bucket)."""
        return histogram_quantile(self.bounds, self._counts, q)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Histogram({format_metric_name(self.name, self.labels)}: "
            f"count={self._count}, sum={self._sum:.6f})"
        )


def histogram_quantile(
    bounds: Tuple[float, ...], counts: np.ndarray, q: float
) -> float:
    """Shared quantile logic for live histograms and snapshot dicts.

    Returns the upper bound of the bucket containing the ``q``-th sample
    (the overflow bucket reports the last finite bound — a floor, not an
    estimate).  An empty histogram reports 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile must be in [0, 1], got {q}")
    counts = np.asarray(counts)
    total = int(counts.sum())
    if total == 0:
        return 0.0
    rank = max(1, int(np.ceil(q * total)))
    cumulative = np.cumsum(counts)
    bucket = int(np.searchsorted(cumulative, rank))
    return float(bounds[min(bucket, len(bounds) - 1)])


class MetricsSnapshot:
    """A registry's contents as plain data: JSON-safe, mergeable, restorable.

    The dict layout (``to_dict``)::

        {"format": 1,
         "counters":   [{"name": ..., "labels": {...}, "value": ...}, ...],
         "gauges":     [{"name": ..., "labels": {...}, "value": ...}, ...],
         "histograms": [{"name": ..., "labels": {...}, "buckets": [...],
                         "counts": [...], "sum": ..., "count": ...}, ...]}

    :meth:`merge` is associative and commutative (counters/gauges add,
    histogram counts add element-wise), so folding any number of
    per-worker snapshots into one view gives the same answer in any
    order — property-tested in ``tests/test_obs.py``.
    """

    def __init__(self, payload: Mapping[str, Any]) -> None:
        if payload.get("format") != 1:
            raise ValidationError(
                f"unsupported metrics snapshot format {payload.get('format')!r}"
            )
        self._payload = {
            "format": 1,
            "counters": [dict(entry) for entry in payload.get("counters", [])],
            "gauges": [dict(entry) for entry in payload.get("gauges", [])],
            "histograms": [dict(entry) for entry in payload.get("histograms", [])],
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A deep plain-dict copy (safe to mutate, pickle, or JSON-dump)."""
        return {
            "format": 1,
            "counters": [dict(entry) for entry in self._payload["counters"]],
            "gauges": [dict(entry) for entry in self._payload["gauges"]],
            "histograms": [dict(entry) for entry in self._payload["histograms"]],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(payload)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls({"format": 1})

    # ------------------------------------------------------------------
    @staticmethod
    def _indexed(entries: List[Dict[str, Any]]) -> Dict[Tuple[str, LabelsKey], Dict[str, Any]]:
        return {(e["name"], _labels_key(e.get("labels", {}))): e for e in entries}

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot with ``other`` folded in (self is unchanged)."""
        merged = self.to_dict()
        other_payload = other.to_dict()
        for section, combine in (("counters", "add"), ("gauges", "add")):
            index = self._indexed(merged[section])
            for entry in other_payload[section]:
                key = (entry["name"], _labels_key(entry.get("labels", {})))
                if key in index:
                    index[key]["value"] += entry["value"]
                else:
                    merged[section].append(entry)
        index = self._indexed(merged["histograms"])
        for entry in other_payload["histograms"]:
            key = (entry["name"], _labels_key(entry.get("labels", {})))
            if key not in index:
                merged["histograms"].append(entry)
                continue
            mine = index[key]
            if list(mine["buckets"]) != list(entry["buckets"]):
                raise ValidationError(
                    f"cannot merge histogram {entry['name']!r}: bucket bounds differ "
                    f"({mine['buckets']} vs {entry['buckets']})"
                )
            mine["counts"] = [
                int(a) + int(b) for a, b in zip(mine["counts"], entry["counts"])
            ]
            mine["sum"] += entry["sum"]
            mine["count"] += entry["count"]
        return MetricsSnapshot(merged)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        p = self._payload
        return (
            f"MetricsSnapshot(counters={len(p['counters'])}, "
            f"gauges={len(p['gauges'])}, histograms={len(p['histograms'])})"
        )


class MetricsRegistry:
    """Named instruments behind one snapshot/merge/restore surface.

    Instrument creation takes a lock (it mutates the registry dict);
    the returned handles are lock-free.  Call sites on hot paths should
    create their instruments once and keep the handle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str, LabelsKey], Any] = {}

    # ------------------------------------------------------------------
    def _get(
        self, kind: str, name: str, labels: Mapping[str, Any], factory: Any
    ) -> Any:
        key = (kind, name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory(name, key[2])
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        bounds = DEFAULT_LATENCY_BUCKETS if buckets is None else tuple(buckets)
        return self._get(
            "histogram", name, labels,
            lambda n, lk: Histogram(n, lk, buckets=bounds),
        )

    # ------------------------------------------------------------------
    def instruments(self) -> List[Any]:
        """Live instrument handles, in creation order."""
        return list(self._instruments.values())

    def clear(self) -> None:
        """Drop every instrument (fresh handles must be re-created)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """The current values as a :class:`MetricsSnapshot`."""
        counters, gauges, histograms = [], [], []
        for (kind, name, labels), instrument in list(self._instruments.items()):
            entry: Dict[str, Any] = {"name": name, "labels": dict(labels)}
            if kind == "counter":
                entry["value"] = instrument.value
                counters.append(entry)
            elif kind == "gauge":
                entry["value"] = instrument.value
                gauges.append(entry)
            else:
                entry.update(
                    buckets=[float(b) for b in instrument.bounds],
                    counts=[int(c) for c in instrument._counts],
                    sum=float(instrument._sum),
                    count=int(instrument._count),
                )
                histograms.append(entry)
        return MetricsSnapshot(
            {"format": 1, "counters": counters, "gauges": gauges, "histograms": histograms}
        )

    def to_dict(self) -> Dict[str, Any]:
        return self.snapshot().to_dict()

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot's values *into* this registry's live instruments."""
        if isinstance(snapshot, MetricsSnapshot):
            payload = snapshot.to_dict()
        else:
            payload = MetricsSnapshot(snapshot).to_dict()
        for entry in payload["counters"]:
            self.counter(entry["name"], **entry.get("labels", {}))._value += entry["value"]
        for entry in payload["gauges"]:
            self.gauge(entry["name"], **entry.get("labels", {}))._value += entry["value"]
        for entry in payload["histograms"]:
            histogram = self.histogram(
                entry["name"], buckets=entry["buckets"], **entry.get("labels", {})
            )
            if list(histogram.bounds) != [float(b) for b in entry["buckets"]]:
                raise ValidationError(
                    f"cannot merge histogram {entry['name']!r}: bucket bounds differ"
                )
            histogram._counts += np.asarray(entry["counts"], dtype=np.int64)
            histogram._sum += entry["sum"]
            histogram._count += entry["count"]

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace this registry's contents with a snapshot's values."""
        self.clear()
        self.merge(snapshot)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MetricsRegistry(instruments={len(self._instruments)})"


# ----------------------------------------------------------------------
# the process-global default registry
# ----------------------------------------------------------------------
_global_registry = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-wide default registry (library code not bound to an engine)."""
    return _global_registry


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Note: instrument handles cached by already-constructed objects keep
    recording to the registry they were created from.
    """
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "format_metric_name",
    "histogram_quantile",
    "get_global_registry",
    "set_global_registry",
]
