"""Structured JSON-line export over stdlib :mod:`logging`.

The library never prints and never configures logging: everything goes
through the ``repro.obs`` logger, which carries a ``NullHandler`` so a
bare import stays silent.  Applications opt in either with their own
logging config or with the one-call :func:`enable_json_logging` helper,
after which every metric/span event arrives as one JSON object per line
— machine-parseable without a log-shipping stack.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Optional, TextIO

logger = logging.getLogger("repro.obs")
logger.addHandler(logging.NullHandler())


def log_json(event: str, *, level: int = logging.INFO, **fields: Any) -> None:
    """Emit ``{"event": ..., **fields}`` as one JSON line at ``level``.

    Serialisation is skipped entirely when no handler wants the record,
    so instrumented hot paths pay only an ``isEnabledFor`` check.
    """
    if not logger.isEnabledFor(level):
        return
    payload = {"event": event}
    payload.update(fields)
    logger.log(level, json.dumps(payload, default=str, sort_keys=False))


def enable_json_logging(
    stream: Optional[TextIO] = None, level: int = logging.DEBUG
) -> logging.Handler:
    """Attach a plain stream handler to the ``repro.obs`` logger.

    Returns the handler so callers can remove it again with
    ``logger.removeHandler(handler)``.  Records are already JSON lines,
    so the formatter is just the bare message.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler.setLevel(level)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


__all__ = ["logger", "log_json", "enable_json_logging"]
