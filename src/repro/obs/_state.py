"""The process-wide observability switch.

A single module-level flag read on every hot-path instrument operation
(counter increments, histogram observations, span creation).  Reading a
module attribute costs nanoseconds, which is what keeps the instrumented
estimate/ingest paths within the ≤ 3 % overhead gate of
``benchmarks/bench_obs.py`` even when callers leave observability on —
and makes turning it *off* genuinely free.

Split into its own module so :mod:`repro.obs.metrics` and
:mod:`repro.obs.tracing` share one flag without a circular import.
"""

from __future__ import annotations

#: collection switch: instruments early-return when False
enabled: bool = True


def set_enabled(value: bool) -> bool:
    """Enable/disable all metric and trace collection; returns the old value.

    Disabling never loses already-collected data — counters, histograms,
    and span buffers keep their contents; they just stop accumulating.
    """
    global enabled
    previous = enabled
    enabled = bool(value)
    return previous


def obs_enabled() -> bool:
    """Whether metric/trace collection is currently on."""
    return enabled
