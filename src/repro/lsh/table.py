"""A single LSH table ``D_g`` extended with bucket counts (§4.1.1).

The table hashes every vector of a collection with ``g = (h_1, …, h_k)``
and groups vectors by their full signature.  On top of the conventional
bucket → member lists, the table maintains the *bucket counts* ``b_j``
that the paper adds to the index, from which it derives:

* ``N_H = Σ_j C(b_j, 2)`` — the number of pairs of vectors that share a
  bucket (stratum H),
* ``N_L = M − N_H`` — the number of pairs that do not (stratum L),
* weighted bucket-pair sampling (the SampleH primitive of Algorithm 1),
* uniform sampling of stratum-L pairs via rejection (the SampleL
  primitive).

Buckets are stored in a CSR-like layout (flat member array plus offsets)
so that pair sampling is fully vectorised.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh.families import LSHFamily
from repro.lsh.signatures import signature_keys
from repro.rng import RandomState, ensure_rng
from repro.vectors.collection import VectorCollection


class LSHTable:
    """One LSH hash table with bucket counts.

    Parameters
    ----------
    family:
        The hash-function family instance representing ``g``.
    collection:
        The vector collection to index.
    signatures:
        Optional pre-computed ``(n, k)`` signature matrix (avoids hashing
        twice when the caller also needs the signatures, e.g. Lattice
        Counting).
    """

    def __init__(
        self,
        family: LSHFamily,
        collection: VectorCollection,
        *,
        signatures: Optional[np.ndarray] = None,
    ):
        self.family = family
        self.collection = collection
        if signatures is None:
            signatures = family.hash_collection(collection)
        else:
            signatures = np.asarray(signatures, dtype=np.int64)
            if signatures.shape != (collection.size, family.num_hashes):
                raise ValidationError(
                    f"signatures shape {signatures.shape} does not match "
                    f"(n={collection.size}, k={family.num_hashes})"
                )
        self.signatures = signatures
        self._build_buckets()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_buckets(self) -> None:
        keys = signature_keys(self.signatures)
        key_to_bucket: Dict[bytes, int] = {}
        bucket_of_vector = np.empty(self.collection.size, dtype=np.int64)
        for vector_id, key in enumerate(keys):
            bucket = key_to_bucket.setdefault(key, len(key_to_bucket))
            bucket_of_vector[vector_id] = bucket
        num_buckets = len(key_to_bucket)
        counts = np.bincount(bucket_of_vector, minlength=num_buckets).astype(np.int64)
        order = np.argsort(bucket_of_vector, kind="stable")
        offsets = np.zeros(num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        self._bucket_of_vector = bucket_of_vector
        self._bucket_counts = counts
        self._members_flat = order
        self._member_offsets = offsets
        self._num_buckets = num_buckets
        pair_counts = counts * (counts - 1) // 2
        self._bucket_pair_counts = pair_counts
        self._num_collision_pairs = int(pair_counts.sum())

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vectors(self) -> int:
        """Number of indexed vectors ``n``."""
        return self.collection.size

    @property
    def num_hashes(self) -> int:
        """Number of hash functions ``k`` in ``g``."""
        return self.family.num_hashes

    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets ``n_g``."""
        return self._num_buckets

    @property
    def bucket_counts(self) -> np.ndarray:
        """The bucket counts ``b_j`` (the paper's extension of the index)."""
        return self._bucket_counts

    @property
    def total_pairs(self) -> int:
        """``M = C(n, 2)``: all unordered distinct pairs in the collection."""
        return self.collection.total_pairs

    @property
    def num_collision_pairs(self) -> int:
        """``N_H = Σ_j C(b_j, 2)`` — size of stratum H."""
        return self._num_collision_pairs

    @property
    def num_non_collision_pairs(self) -> int:
        """``N_L = M − N_H`` — size of stratum L."""
        return self.total_pairs - self._num_collision_pairs

    def bucket_of(self, vector_id: int) -> int:
        """Return the bucket index ``B(v)`` of a vector."""
        if not 0 <= vector_id < self.num_vectors:
            raise ValidationError(f"vector id {vector_id} out of range [0, {self.num_vectors})")
        return int(self._bucket_of_vector[vector_id])

    @property
    def bucket_assignments(self) -> np.ndarray:
        """Array mapping every vector id to its bucket index."""
        return self._bucket_of_vector

    def bucket_members(self, bucket_id: int) -> np.ndarray:
        """Return the vector ids stored in bucket ``bucket_id``."""
        if not 0 <= bucket_id < self._num_buckets:
            raise ValidationError(f"bucket id {bucket_id} out of range [0, {self._num_buckets})")
        start = self._member_offsets[bucket_id]
        stop = self._member_offsets[bucket_id + 1]
        return self._members_flat[start:stop].copy()

    def same_bucket(self, u: int, v: int) -> bool:
        """``True`` iff vectors ``u`` and ``v`` share a bucket (event H)."""
        return bool(self._bucket_of_vector[u] == self._bucket_of_vector[v])

    def same_bucket_many(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`same_bucket` over arrays of vector ids."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        return self._bucket_of_vector[left] == self._bucket_of_vector[right]

    # ------------------------------------------------------------------
    # sampling primitives
    # ------------------------------------------------------------------
    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``sample_size`` uniform pairs from stratum H (SampleH lines 3–4).

        A bucket ``B_j`` is sampled with probability proportional to
        ``C(b_j, 2)`` and two distinct members are drawn uniformly, which
        yields a uniform sample (with replacement) of the pairs in SH.

        Raises
        ------
        InsufficientSampleError
            If no bucket contains two or more vectors (``N_H = 0``).
        """
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self._num_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum H is empty: every LSH bucket contains a single vector"
            )
        rng = ensure_rng(random_state)
        return sample_weighted_bucket_pairs(
            self._bucket_counts,
            self._member_offsets,
            self._members_flat,
            self._bucket_pair_counts,
            sample_size,
            rng,
        )

    def sample_non_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None, max_attempts: int = 64
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``sample_size`` uniform pairs from stratum L (SampleL line 3).

        Pairs are drawn uniformly from all distinct pairs and rejected
        when the two vectors share a bucket.  Because stratum H is a tiny
        fraction of all pairs for any selective ``g``, the rejection rate
        is negligible; a safety valve raises after ``max_attempts``
        batches in the degenerate case where nearly all pairs collide.
        """
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self.num_non_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum L is empty: every pair of vectors shares a bucket"
            )
        rng = ensure_rng(random_state)
        lefts = []
        rights = []
        remaining = sample_size
        for _attempt in range(max_attempts):
            batch = max(remaining, 16)
            left, right = sample_uniform_pairs(self.num_vectors, batch, rng)
            keep = ~self.same_bucket_many(left, right)
            if keep.any():
                lefts.append(left[keep][:remaining])
                rights.append(right[keep][:remaining])
                remaining -= lefts[-1].size
            if remaining <= 0:
                return (
                    np.concatenate(lefts).astype(np.int64),
                    np.concatenate(rights).astype(np.int64),
                )
        raise InsufficientSampleError(
            "could not sample enough stratum-L pairs; the LSH table groups "
            "almost every pair into a single bucket (k is far too small)"
        )

    # ------------------------------------------------------------------
    # exhaustive enumeration & bookkeeping
    # ------------------------------------------------------------------
    def iter_collision_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every pair of vectors that shares a bucket.

        Intended for tests and the virtual-bucket construction; the number
        of yielded pairs is exactly :attr:`num_collision_pairs`.
        """
        for bucket_id in range(self._num_buckets):
            members = self.bucket_members(bucket_id)
            size = members.size
            if size < 2:
                continue
            for i in range(size):
                for j in range(i + 1, size):
                    yield int(members[i]), int(members[j])

    def collision_pairs_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Enumerate every co-bucket pair as ``(left, right)`` index arrays.

        Vectorised counterpart of :meth:`iter_collision_pairs`.  Buckets
        are processed grouped by size: all buckets of size ``s`` share one
        ``np.triu_indices(s, 1)`` template applied to a ``(buckets, s)``
        member matrix, so the Python-level work is one iteration per
        *distinct* bucket size (a handful) rather than per bucket or per
        pair.  Members are stored in increasing vector-id order, hence
        ``left < right`` for every returned pair.  The total output length
        is exactly :attr:`num_collision_pairs`.
        """
        eligible = np.flatnonzero(self._bucket_counts >= 2)
        if eligible.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        sizes = self._bucket_counts[eligible]
        lefts: list = []
        rights: list = []
        for size in np.unique(sizes):
            starts = self._member_offsets[eligible[sizes == size]]
            members = self._members_flat[starts[:, None] + np.arange(size)[None, :]]
            i, j = np.triu_indices(int(size), k=1)
            lefts.append(members[:, i].ravel())
            rights.append(members[:, j].ravel())
        return (
            np.concatenate(lefts).astype(np.int64),
            np.concatenate(rights).astype(np.int64),
        )

    def memory_estimate_bytes(self) -> int:
        """Rough size of the table (§6.3's table-size-vs-k experiment).

        Counts the ``g`` values (k int64 per non-empty bucket), one bucket
        count per bucket, and one vector id per indexed vector, ignoring
        implementation-dependent overheads — the same accounting the paper
        uses.
        """
        g_values = self._num_buckets * self.num_hashes * 8
        bucket_count_bytes = self._num_buckets * 8
        vector_ids = self.num_vectors * 8
        return g_values + bucket_count_bytes + vector_ids

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"LSHTable(n={self.num_vectors}, k={self.num_hashes}, "
            f"buckets={self.num_buckets}, NH={self.num_collision_pairs})"
        )


def sample_weighted_bucket_pairs(
    counts: np.ndarray,
    offsets: np.ndarray,
    members_flat: np.ndarray,
    pair_counts: np.ndarray,
    sample_size: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform pairs from stratum H given a CSR-style bucket layout.

    The SampleH core shared by the static :class:`LSHTable` and the
    streaming :class:`repro.streaming.MutableLSHTable`: a bucket is
    chosen with probability proportional to ``C(b_j, 2)`` and two
    distinct members are drawn uniformly, which yields a uniform sample
    (with replacement) of all co-bucket pairs.  The caller guarantees
    ``pair_counts.sum() > 0``.
    """
    eligible = np.flatnonzero(pair_counts > 0)
    weights = pair_counts[eligible].astype(np.float64)
    weights /= weights.sum()
    chosen = rng.choice(eligible, size=sample_size, p=weights)
    sizes = counts[chosen]
    first_position = (rng.random(sample_size) * sizes).astype(np.int64)
    second_position = (rng.random(sample_size) * (sizes - 1)).astype(np.int64)
    second_position = second_position + (second_position >= first_position)
    starts = offsets[chosen]
    left = members_flat[starts + first_position]
    right = members_flat[starts + second_position]
    return left.astype(np.int64), right.astype(np.int64)


def sample_uniform_pairs(
    population_size: int, sample_size: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``sample_size`` uniform distinct-index pairs with replacement.

    The pair ``(i, j)`` is uniform over all ordered pairs with ``i ≠ j``;
    since similarity is symmetric this is equivalent to uniform sampling
    of unordered pairs.
    """
    if population_size < 2:
        raise InsufficientSampleError(
            f"need at least 2 vectors to form a pair, got {population_size}"
        )
    left = rng.integers(0, population_size, size=sample_size)
    right = rng.integers(0, population_size - 1, size=sample_size)
    right = right + (right >= left)
    return left.astype(np.int64), right.astype(np.int64)


__all__ = ["LSHTable", "sample_uniform_pairs", "sample_weighted_bucket_pairs"]
