"""LSH hash-function families.

Definition 3 of the paper idealises an LSH family as one where
``P(h(u) = h(v)) = sim(u, v)``.  Concrete families satisfy this for
*their* similarity measure:

* :class:`MinHashFamily` — exactly ``P = Jaccard(A, B)`` (Broder).
* :class:`SignRandomProjectionFamily` — ``P = 1 − θ(u, v)/π`` (Charikar),
  i.e. the property holds for the *angular* similarity, a monotone
  transform of cosine similarity.  The analytical estimators account for
  this via :func:`repro.vectors.similarity.cosine_to_angular_collision`.
* :class:`PStableL2Family` — the Datar et al. p-stable family for L2
  distance, provided as an extension point (the paper notes LSH families
  exist for several measures).

Each family knows how to hash an entire :class:`VectorCollection` into an
``(n, k)`` integer signature matrix, and exposes the collision-probability
curve ``P(h(u)=h(v))`` as a function of the underlying similarity, which
the analysis module uses for the f(s) = s^k reasoning of Figure 1.

Hashing is implemented once per family over a raw CSR matrix
(:meth:`LSHFamily.hash_matrix`); the batch path
(:meth:`LSHFamily.hash_collection`) and the streaming per-vector path
(:class:`repro.streaming.MutableLSHIndex`) both delegate to it, so a
vector inserted incrementally receives exactly the signature it would
have received in a build-once batch hash.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np
from scipy import sparse, stats

from repro.errors import ValidationError
from repro.rng import RandomState, ensure_rng
from repro.vectors.collection import VectorCollection

_MERSENNE_PRIME = (1 << 61) - 1
_MASK_30 = np.uint64((1 << 30) - 1)
_MASK_31 = np.uint64((1 << 31) - 1)
_PRIME_U64 = np.uint64(_MERSENNE_PRIME)
#: elements per ``(nnz × k)`` hash block — bounds temporary memory to a few MB
_MINHASH_BLOCK_ELEMENTS = 1 << 20


def _minhash_block(
    support: np.ndarray, a_hi: np.ndarray, a_lo: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """``(a·x + b) mod (2^61 − 1)`` for a block of support indices, vectorised.

    A plain ``a * x`` overflows 64 bits (``a < 2^61``, ``x < 2^31``), so the
    multiplier is split into 31-bit limbs: with ``a = a_hi·2³¹ + a_lo``,

    ``a·x ≡ a_lo·x + (t_hi + t_lo·2³¹)  (mod p)``

    where ``t = a_hi·x = t_hi·2³⁰ + t_lo`` and ``2⁶¹ ≡ 1 (mod p)`` folds the
    high limb back down.  Every intermediate fits in ``uint64``; the final
    Mersenne fold yields the canonical residue, so the result is bit-identical
    to exact (object-dtype) arithmetic.
    """
    x = support.astype(np.uint64)[:, None]
    term_lo = a_lo[None, :] * x                      # < 2^62
    t = a_hi[None, :] * x                            # < 2^61
    total = term_lo + (t >> np.uint64(30)) + ((t & _MASK_30) << np.uint64(31)) + b[None, :]
    total = (total & _PRIME_U64) + (total >> np.uint64(61))
    return np.where(total >= _PRIME_U64, total - _PRIME_U64, total).astype(np.int64)


class LSHFamily(abc.ABC):
    """Abstract base class for LSH hash-function families.

    A family instance represents ``k`` concrete hash functions
    ``g = (h_1, …, h_k)`` drawn from the family, i.e. exactly the ``g``
    used to build one LSH table.

    Parameters
    ----------
    num_hashes:
        The number of hash functions ``k`` concatenated into ``g``.
    random_state:
        Seed or generator controlling the random draws of the functions.
    """

    #: Name of the similarity measure the family is locality sensitive for.
    similarity: str = "abstract"

    def __init__(self, num_hashes: int, *, random_state: RandomState = None):
        if num_hashes < 1:
            raise ValidationError(f"num_hashes (k) must be >= 1, got {num_hashes}")
        self.num_hashes = int(num_hashes)
        self._rng = ensure_rng(random_state)
        self._initialised_dimension: Optional[int] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _initialise(self, dimension: int) -> None:
        """Draw the random parameters of the ``k`` hash functions."""

    @abc.abstractmethod
    def _hash_matrix(self, matrix: sparse.csr_matrix) -> np.ndarray:
        """Return the ``(rows, k)`` integer signature matrix for a CSR matrix."""

    @abc.abstractmethod
    def collision_probability(self, similarity: np.ndarray) -> np.ndarray:
        """Per-hash collision probability as a function of the native similarity."""

    # ------------------------------------------------------------------
    def ensure_initialised(self, dimension: int) -> None:
        """Bind the family to ``dimension``, drawing parameters on first use.

        The family lazily initialises its random parameters for the first
        dimensionality it sees and then requires every subsequent input to
        share that dimensionality, so the same ``g`` can hash both sides
        of a general (non-self) join, or a stream of vectors arriving one
        at a time.
        """
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        if self._initialised_dimension is None:
            self._initialise(int(dimension))
            self._initialised_dimension = int(dimension)
        elif self._initialised_dimension != dimension:
            raise ValidationError(
                "this family was initialised for dimension "
                f"{self._initialised_dimension}, got input of dimension "
                f"{dimension}"
            )

    def hash_matrix(self, matrix: Union[sparse.spmatrix, np.ndarray]) -> np.ndarray:
        """Hash the rows of a raw ``(rows, d)`` matrix into signatures.

        This is the single implementation point shared by the batch path
        (:meth:`hash_collection`) and the streaming per-vector path
        (:class:`repro.streaming.MutableLSHIndex`), guaranteeing that
        incremental and build-once signatures are identical.
        """
        if not sparse.issparse(matrix):
            matrix = sparse.csr_matrix(np.atleast_2d(np.asarray(matrix, dtype=np.float64)))
        csr = matrix.tocsr()
        if csr.data.size and not np.all(csr.data):
            # explicitly stored zeros would leak into support-based families
            # (MinHash); canonicalise on a copy so the caller's matrix is
            # never mutated
            csr = csr.copy()
            csr.eliminate_zeros()
        self.ensure_initialised(csr.shape[1])
        signatures = self._hash_matrix(csr)
        if signatures.shape != (csr.shape[0], self.num_hashes):
            raise ValidationError(
                "family produced a signature matrix of shape "
                f"{signatures.shape}, expected {(csr.shape[0], self.num_hashes)}"
            )
        return signatures

    def hash_collection(self, collection: VectorCollection) -> np.ndarray:
        """Hash every vector of ``collection``; returns an ``(n, k)`` int array."""
        return self.hash_matrix(collection.matrix)

    def bucket_collision_probability(self, similarity: np.ndarray) -> np.ndarray:
        """Probability that ``g(u) = g(v)``, i.e. all ``k`` hashes collide."""
        return self.collision_probability(similarity) ** self.num_hashes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(k={self.num_hashes}, similarity={self.similarity!r})"


class SignRandomProjectionFamily(LSHFamily):
    """Charikar's hyperplane (SimHash) family for cosine similarity.

    Each hash function ``h_r(u) = sign(r · u)`` with ``r`` a random
    Gaussian vector.  Collision probability is ``1 − θ(u, v)/π`` where
    ``θ`` is the angle between the vectors.
    """

    similarity = "cosine"

    def __init__(self, num_hashes: int, *, random_state: RandomState = None):
        super().__init__(num_hashes, random_state=random_state)
        self._projections: Optional[np.ndarray] = None

    def _initialise(self, dimension: int) -> None:
        self._projections = self._rng.standard_normal((dimension, self.num_hashes))

    def _hash_matrix(self, matrix: sparse.csr_matrix) -> np.ndarray:
        assert self._projections is not None
        projected = np.asarray(matrix @ self._projections)
        return (projected > 0.0).astype(np.int64)

    def collision_probability(self, similarity: np.ndarray) -> np.ndarray:
        clipped = np.clip(similarity, -1.0, 1.0)
        return 1.0 - np.arccos(clipped) / np.pi


class MinHashFamily(LSHFamily):
    """Broder's MinHash family for Jaccard similarity over vector supports.

    Vectors are interpreted as the set of their non-zero dimensions; each
    hash function applies a random linear permutation-hash
    ``π_i(x) = (a_i · x + b_i) mod p`` and keeps the minimum over the set.
    ``P(h(A) = h(B)) = Jaccard(A, B)`` exactly.
    """

    similarity = "jaccard"

    def __init__(self, num_hashes: int, *, random_state: RandomState = None):
        super().__init__(num_hashes, random_state=random_state)
        self._coefficients_a: Optional[np.ndarray] = None
        self._coefficients_b: Optional[np.ndarray] = None

    def _initialise(self, dimension: int) -> None:
        self._coefficients_a = self._rng.integers(
            1, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.int64
        )
        self._coefficients_b = self._rng.integers(
            0, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.int64
        )

    def _hash_matrix(self, matrix: sparse.csr_matrix) -> np.ndarray:
        assert self._coefficients_a is not None and self._coefficients_b is not None
        num_rows = matrix.shape[0]
        if matrix.shape[1] >= (1 << 31):
            raise ValidationError(
                "MinHashFamily supports dimensions below 2^31, got "
                f"{matrix.shape[1]}"
            )
        signatures = np.full(
            (num_rows, self.num_hashes), _MERSENNE_PRIME, dtype=np.int64
        )
        indptr, indices = matrix.indptr, matrix.indices
        if indices.size == 0:
            return signatures
        a = self._coefficients_a.astype(np.uint64)
        a_hi, a_lo = a >> np.uint64(31), a & _MASK_31
        b = self._coefficients_b.astype(np.uint64)
        # Hash in row-aligned blocks so the (block_nnz × k) temporary stays
        # bounded; per-row minima come from one reduceat per block (rows with
        # empty support keep the sentinel, so segment boundaries stay exact).
        budget = max(1, _MINHASH_BLOCK_ELEMENTS // self.num_hashes)
        start_row = 0
        while start_row < num_rows:
            end_row = int(np.searchsorted(indptr, int(indptr[start_row]) + budget, side="right")) - 1
            end_row = min(max(end_row, start_row + 1), num_rows)
            block = indices[indptr[start_row] : indptr[end_row]]
            if block.size:
                hashed = _minhash_block(block, a_hi, a_lo, b)
                lengths = np.diff(indptr[start_row : end_row + 1])
                occupied = np.flatnonzero(lengths > 0)
                segment_starts = (indptr[start_row + occupied] - indptr[start_row]).astype(np.int64)
                signatures[start_row + occupied] = np.minimum.reduceat(
                    hashed, segment_starts, axis=0
                )
            start_row = end_row
        return signatures

    def collision_probability(self, similarity: np.ndarray) -> np.ndarray:
        return np.clip(similarity, 0.0, 1.0)


class PStableL2Family(LSHFamily):
    """Datar et al. p-stable family for Euclidean (L2) distance.

    ``h(v) = floor((a · v + b) / w)`` with Gaussian ``a`` and uniform
    ``b ∈ [0, w)``.  Included as the extension point the paper mentions
    ("LSH families have been developed for several (dis)similarity
    measures including … ℓ_p distance"); the collision probability is a
    function of the L2 *distance* rather than a similarity in [0, 1].
    """

    similarity = "euclidean"

    def __init__(
        self,
        num_hashes: int,
        *,
        bucket_width: float = 4.0,
        random_state: RandomState = None,
    ):
        super().__init__(num_hashes, random_state=random_state)
        if bucket_width <= 0:
            raise ValidationError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = float(bucket_width)
        self._projections: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    def _initialise(self, dimension: int) -> None:
        self._projections = self._rng.standard_normal((dimension, self.num_hashes))
        self._offsets = self._rng.uniform(0.0, self.bucket_width, size=self.num_hashes)

    def _hash_matrix(self, matrix: sparse.csr_matrix) -> np.ndarray:
        assert self._projections is not None and self._offsets is not None
        projected = np.asarray(matrix @ self._projections)
        return np.floor((projected + self._offsets[None, :]) / self.bucket_width).astype(np.int64)

    def collision_probability(self, distance: np.ndarray) -> np.ndarray:
        """Collision probability as a function of L2 *distance* ``c``.

        ``p(c) = 1 − 2·Φ(−w/c) − (2c / (√(2π) w)) (1 − exp(−w² / 2c²))``.
        ``p(0)`` is defined as 1.
        """
        distance_array = np.asarray(distance, dtype=np.float64)
        width = self.bucket_width
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = width / distance_array
            term_normal = 1.0 - 2.0 * stats.norm.cdf(-ratio)
            term_density = (
                2.0
                * distance_array
                / (np.sqrt(2.0 * np.pi) * width)
                * (1.0 - np.exp(-(ratio**2) / 2.0))
            )
            probability = term_normal - term_density
        probability = np.where(distance_array <= 0.0, 1.0, probability)
        result = np.clip(probability, 0.0, 1.0)
        if np.isscalar(distance):
            return float(result)
        return result


__all__ = [
    "LSHFamily",
    "SignRandomProjectionFamily",
    "MinHashFamily",
    "PStableL2Family",
]
