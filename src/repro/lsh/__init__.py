"""Locality-Sensitive-Hashing substrate.

The paper's estimators sit on top of a conventional LSH index that is
extended with a per-bucket count (§4.1.1).  This subpackage provides:

* :mod:`~repro.lsh.families` — hash-function families: sign random
  projection (Charikar, for cosine similarity), MinHash (Broder, for
  Jaccard similarity) and a p-stable family for L2 distance.
* :mod:`~repro.lsh.signatures` — signature-matrix computation and the
  prefix-collision counts used by the Lattice-Counting adaptation.
* :mod:`~repro.lsh.table` — a single LSH table ``D_g`` for
  ``g = (h_1, …, h_k)`` with bucket counts, pair counting ``N_H`` and
  weighted bucket-pair sampling (the SampleH primitive).
* :mod:`~repro.lsh.index` — an index of ``ℓ`` tables plus the
  virtual-bucket view used by the multi-table extensions (§B.2.1).

The table and index here are build-once; their mutable counterparts —
sharing the per-family :meth:`~repro.lsh.families.LSHFamily.hash_matrix`
signature path so incremental and batch hashing agree bit-for-bit — live
in :mod:`repro.streaming`.
"""

from repro.lsh.families import (
    LSHFamily,
    MinHashFamily,
    PStableL2Family,
    SignRandomProjectionFamily,
)
from repro.lsh.signatures import prefix_collision_counts, signature_matrix
from repro.lsh.table import LSHTable
from repro.lsh.index import LSHIndex

__all__ = [
    "LSHFamily",
    "SignRandomProjectionFamily",
    "MinHashFamily",
    "PStableL2Family",
    "signature_matrix",
    "prefix_collision_counts",
    "LSHTable",
    "LSHIndex",
]
