"""Signature-matrix helpers shared by the LSH table and Lattice Counting.

A *signature* of a vector is the tuple ``g(v) = (h_1(v), …, h_k(v))``.
The LSH table groups vectors by their full signature; the
Lattice-Counting adaptation additionally needs, for every prefix length
``j ≤ k``, the number of pairs whose first ``j`` hash values all agree —
those counts are (noisy) observations of the ``j``-th moments of the
pair-similarity distribution.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.lsh.families import LSHFamily
from repro.vectors.collection import VectorCollection


def signature_matrix(family: LSHFamily, collection: VectorCollection) -> np.ndarray:
    """Compute the ``(n, k)`` signature matrix of ``collection`` under ``family``."""
    return family.hash_collection(collection)


def signature_keys(signatures: np.ndarray, prefix_length: int | None = None) -> List[bytes]:
    """Serialise each signature row (or a prefix of it) into a hashable key.

    Parameters
    ----------
    signatures:
        ``(n, k)`` integer matrix.
    prefix_length:
        Use only the first ``prefix_length`` hash values; defaults to all.
    """
    if signatures.ndim != 2:
        raise ValidationError("signatures must be a 2-D (n, k) matrix")
    k = signatures.shape[1]
    if prefix_length is None:
        prefix_length = k
    if not 1 <= prefix_length <= k:
        raise ValidationError(
            f"prefix_length must be in [1, {k}], got {prefix_length}"
        )
    prefix = np.ascontiguousarray(signatures[:, :prefix_length], dtype=np.int64)
    return [row.tobytes() for row in prefix]


def group_by_signature(
    signatures: np.ndarray, prefix_length: int | None = None
) -> Dict[bytes, np.ndarray]:
    """Group vector ids by (prefix of) signature; returns key → id array."""
    keys = signature_keys(signatures, prefix_length)
    groups: Dict[bytes, List[int]] = {}
    for vector_id, key in enumerate(keys):
        groups.setdefault(key, []).append(vector_id)
    return {key: np.asarray(ids, dtype=np.int64) for key, ids in groups.items()}


def collision_pair_count(bucket_sizes: np.ndarray) -> int:
    """``Σ_j C(b_j, 2)`` — the number of co-bucket pairs for given bucket sizes."""
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    return int(np.sum(sizes * (sizes - 1) // 2))


def prefix_collision_counts(signatures: np.ndarray) -> np.ndarray:
    """Number of pairs agreeing on the first ``j`` hashes, for ``j = 1..k``.

    Returns
    -------
    numpy.ndarray
        ``counts[j - 1] = |{(u, v): h_1..h_j all collide}|``.  Because a
        collision on a longer prefix implies one on every shorter prefix,
        the sequence is non-increasing.  Under the LSH property the
        expectation of ``counts[j-1]`` is ``Σ_pairs s(u,v)^j``, i.e. ``M``
        times the ``j``-th raw moment of the pair-similarity distribution
        — the quantity the Lattice-Counting adaptation fits its power law
        to.
    """
    if signatures.ndim != 2:
        raise ValidationError("signatures must be a 2-D (n, k) matrix")
    k = signatures.shape[1]
    counts = np.zeros(k, dtype=np.int64)
    for prefix_length in range(1, k + 1):
        groups = group_by_signature(signatures, prefix_length)
        sizes = np.asarray([ids.size for ids in groups.values()], dtype=np.int64)
        counts[prefix_length - 1] = collision_pair_count(sizes)
    return counts


def pack_signature(signature: np.ndarray) -> Tuple[int, ...]:
    """Return a hashable tuple form of a single signature row."""
    return tuple(int(value) for value in np.asarray(signature).ravel())


__all__ = [
    "signature_matrix",
    "signature_keys",
    "group_by_signature",
    "collision_pair_count",
    "prefix_collision_counts",
    "pack_signature",
]
