"""An LSH index: ``ℓ`` independent tables plus the virtual-bucket view.

A conventional LSH index for similarity *search* keeps ``ℓ`` tables, each
built from an independently drawn ``g_i = (h_1, …, h_k)``.  The paper's
core estimators need only a single table, but Appendix B.2.1 describes
two ways to exploit all ``ℓ`` tables:

* the **median estimator** — run the single-table estimator on every
  table and take the median of the estimates;
* the **virtual-bucket estimator** — treat a pair as "in the same bucket"
  if it collides in *any* of the ``ℓ`` tables.

:class:`LSHIndex` builds and owns the tables; the estimator-side logic
lives in :mod:`repro.core.multi_table`.
"""

from __future__ import annotations

from typing import List, Tuple, Type

import numpy as np

from repro.errors import ValidationError
from repro.lsh.families import LSHFamily, MinHashFamily, SignRandomProjectionFamily
from repro.lsh.table import LSHTable
from repro.rng import RandomState, ensure_rng, spawn
from repro.vectors.collection import VectorCollection

_FAMILY_BY_NAME = {
    "cosine": SignRandomProjectionFamily,
    "angular": SignRandomProjectionFamily,
    "jaccard": MinHashFamily,
}


def resolve_family(family: str | Type[LSHFamily]) -> Type[LSHFamily]:
    """Resolve a family name (``"cosine"``, ``"jaccard"``) or class to a class."""
    if isinstance(family, str):
        try:
            return _FAMILY_BY_NAME[family.lower()]
        except KeyError as error:
            raise ValidationError(
                f"unknown LSH family {family!r}; expected one of {sorted(_FAMILY_BY_NAME)}"
            ) from error
    if isinstance(family, type) and issubclass(family, LSHFamily):
        return family
    raise ValidationError(
        "family must be a name string or an LSHFamily subclass, got "
        f"{family!r}"
    )


class LSHIndex:
    """A collection of ``ℓ`` LSH tables over one vector collection.

    Parameters
    ----------
    collection:
        The vectors to index.
    num_hashes:
        ``k`` — number of hash functions per table.
    num_tables:
        ``ℓ`` — number of tables.
    family:
        Family name (``"cosine"`` / ``"jaccard"``) or an
        :class:`~repro.lsh.families.LSHFamily` subclass.  Each table draws
        its own independent hash functions from the family.
    random_state:
        Seed / generator for reproducibility; the ``ℓ`` tables receive
        independent child generators.
    """

    def __init__(
        self,
        collection: VectorCollection,
        *,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: str | Type[LSHFamily] = "cosine",
        random_state: RandomState = None,
    ):
        if num_tables < 1:
            raise ValidationError(f"num_tables (ℓ) must be >= 1, got {num_tables}")
        self.collection = collection
        self.num_hashes = int(num_hashes)
        self.num_tables = int(num_tables)
        family_class = resolve_family(family)
        rng = ensure_rng(random_state)
        child_rngs = spawn(rng, num_tables)
        self.tables: List[LSHTable] = []
        for child in child_rngs:
            family_instance = family_class(self.num_hashes, random_state=child)
            self.tables.append(LSHTable(family_instance, collection))

    # ------------------------------------------------------------------
    @property
    def primary_table(self) -> LSHTable:
        """The first table — used by the single-table estimators."""
        return self.tables[0]

    def __len__(self) -> int:
        return self.num_tables

    def __getitem__(self, table_index: int) -> LSHTable:
        return self.tables[table_index]

    def __iter__(self):
        return iter(self.tables)

    # ------------------------------------------------------------------
    # virtual-bucket view (§B.2.1)
    # ------------------------------------------------------------------
    def same_bucket_any(self, u: int, v: int) -> bool:
        """``True`` iff ``u`` and ``v`` share a bucket in *any* table."""
        return any(table.same_bucket(u, v) for table in self.tables)

    def same_bucket_any_many(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`same_bucket_any` over index arrays."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        result = np.zeros(left.shape, dtype=bool)
        for table in self.tables:
            result |= table.same_bucket_many(left, right)
        return result

    def virtual_collision_pairs(
        self, *, max_pairs: int = 5_000_000
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Enumerate the deduplicated set of pairs colliding in any table.

        These pairs form the virtual stratum H of the virtual-bucket
        estimator.  The construction walks each table's buckets and
        deduplicates pairs; the total work is ``Σ_i N_H(table_i)`` which
        is modest for any selective ``k``.  ``max_pairs`` guards against a
        degenerate configuration (tiny ``k``) where nearly every pair
        collides and enumeration would be quadratic.

        Returns
        -------
        (left, right):
            Arrays of equal length listing each colliding pair once with
            ``left < right``.
        """
        budget = sum(table.num_collision_pairs for table in self.tables)
        if budget > max_pairs:
            raise ValidationError(
                f"virtual bucket enumeration would touch {budget} pairs "
                f"(> max_pairs={max_pairs}); increase k or max_pairs"
            )
        n = self.collection.size
        # Each ordered pair (u < v) packs into the int64 key u * n + v,
        # which is collision-free and overflow-safe for n < ~3e9; a single
        # np.unique over the concatenated keys replaces the former Python
        # set of tuples.
        keys: List[np.ndarray] = []
        for table in self.tables:
            left, right = table.collision_pairs_arrays()
            low = np.minimum(left, right)
            high = np.maximum(left, right)
            keys.append(low * np.int64(n) + high)
        if not keys:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        unique_keys = np.unique(np.concatenate(keys))
        return unique_keys // n, unique_keys % n

    def memory_estimate_bytes(self) -> int:
        """Total estimated size across all tables."""
        return int(sum(table.memory_estimate_bytes() for table in self.tables))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"LSHIndex(n={self.collection.size}, k={self.num_hashes}, "
            f"tables={self.num_tables})"
        )


def build_index(
    collection: VectorCollection,
    *,
    num_hashes: int = 20,
    num_tables: int = 1,
    family: str | Type[LSHFamily] = "cosine",
    random_state: RandomState = None,
) -> LSHIndex:
    """Convenience wrapper mirroring :class:`LSHIndex`'s constructor."""
    return LSHIndex(
        collection,
        num_hashes=num_hashes,
        num_tables=num_tables,
        family=family,
        random_state=random_state,
    )


__all__ = ["LSHIndex", "build_index", "resolve_family"]
