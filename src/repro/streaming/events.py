"""Event layer of the streaming subsystem: change logs and replay.

A :class:`ChangeLog` is an ordered sequence of three event kinds:

* :class:`Insert` — a new vector enters the collection.  On replay the
  index assigns it the next sequential id (ids start at 0 and follow
  insertion order), so a log is self-contained: later :class:`Delete`
  events refer to those replay-assigned ids.
* :class:`Delete` — the vector with the given id leaves the collection.
* :class:`Checkpoint` — a marker at which an estimate should be emitted
  (by :meth:`ChangeLog.replay` or the ``repro stream`` CLI command).

Logs round-trip through JSON Lines, one event per line::

    {"op": "insert", "vector": {"0": 1.0, "7": 0.5}}
    {"op": "insert", "dense": [0.0, 1.0, 1.0]}
    {"op": "delete", "id": 0}
    {"op": "checkpoint", "label": "after-batch-1"}

Sparse vectors are ``{dimension_index: value}`` mappings (JSON object
keys are strings and are coerced back to ``int``); dense vectors are
plain lists.  This is the interchange format consumed by
``repro stream``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ValidationError
from repro.rng import RandomState, ensure_rng

if TYPE_CHECKING:  # imported lazily: events is the bottom of the layer stack
    from repro.streaming.estimator import StreamingEstimator
    from repro.streaming.mutable_index import MutableLSHIndex
    from repro.vectors.collection import VectorCollection

VectorPayload = Union[Mapping[int, float], Sequence[float]]


@dataclass(frozen=True)
class Insert:
    """A vector entering the collection (sparse mapping or dense sequence)."""

    vector: VectorPayload


@dataclass(frozen=True)
class Delete:
    """The vector with replay-assigned id ``vector_id`` leaving the collection."""

    vector_id: int


@dataclass(frozen=True)
class Checkpoint:
    """A marker at which replay emits an estimate."""

    label: str = ""


Event = Union[Insert, Delete, Checkpoint]


def event_to_dict(event: Event) -> Dict[str, object]:
    """Serialise one event into its JSONL dictionary form."""
    if isinstance(event, Insert):
        vector = event.vector
        if isinstance(vector, Mapping):
            return {"op": "insert", "vector": {str(int(k)): float(v) for k, v in vector.items()}}
        return {"op": "insert", "dense": [float(v) for v in vector]}
    if isinstance(event, Delete):
        return {"op": "delete", "id": int(event.vector_id)}
    if isinstance(event, Checkpoint):
        return {"op": "checkpoint", "label": event.label}
    raise ValidationError(f"unknown event type: {type(event).__name__}")


def event_from_dict(payload: Mapping[str, object]) -> Event:
    """Parse one JSONL dictionary back into an event."""
    op = payload.get("op")
    if op == "insert":
        if "vector" in payload:
            mapping = payload["vector"]
            if not isinstance(mapping, Mapping):
                raise ValidationError("insert event 'vector' must be an object")
            return Insert({int(k): float(v) for k, v in mapping.items()})
        if "dense" in payload:
            dense = payload["dense"]
            if not isinstance(dense, (list, tuple)):
                raise ValidationError("insert event 'dense' must be a list")
            return Insert([float(v) for v in dense])
        raise ValidationError("insert event needs a 'vector' or 'dense' field")
    if op == "delete":
        if "id" not in payload:
            raise ValidationError("delete event needs an 'id' field")
        return Delete(int(payload["id"]))  # type: ignore[arg-type]
    if op == "checkpoint":
        return Checkpoint(str(payload.get("label", "")))
    raise ValidationError(f"unknown event op {op!r}; expected insert/delete/checkpoint")


@dataclass
class ChangeLog:
    """An append-only, replayable sequence of collection-change events."""

    events: List[Event] = field(default_factory=list)

    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, item: int) -> Event:
        return self.events[item]

    @property
    def num_mutations(self) -> int:
        """Number of insert/delete events (checkpoints excluded)."""
        return sum(1 for e in self.events if not isinstance(e, Checkpoint))

    # ------------------------------------------------------------------
    @classmethod
    def from_collection(
        cls,
        collection: "VectorCollection",
        *,
        checkpoint_every: int = 0,
        label_format: str = "after-{count}",
    ) -> "ChangeLog":
        """Build a pure-insert log from a collection (row order = id order).

        With ``checkpoint_every > 0`` a checkpoint is appended after every
        that many inserts (and at the end).  Used by benchmarks and the
        shard CLI to turn a static corpus into a replayable stream.
        """
        if checkpoint_every < 0:
            raise ValidationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        log = cls()
        for row in range(collection.size):
            log.append(Insert(collection.row_dict(row)))
            count = row + 1
            if checkpoint_every and count % checkpoint_every == 0:
                log.append(Checkpoint(label_format.format(count=count)))
        if checkpoint_every and collection.size % checkpoint_every != 0:
            log.append(Checkpoint(label_format.format(count=collection.size)))
        return log

    # ------------------------------------------------------------------
    def replay(
        self,
        index: "MutableLSHIndex",
        *,
        estimator: Optional["StreamingEstimator"] = None,
        threshold: Optional[float] = None,
        random_state: RandomState = None,
    ) -> List[Tuple[str, object]]:
        """Apply every event to ``index`` in order.

        At each :class:`Checkpoint`, when both ``estimator`` and
        ``threshold`` are given, an estimate is produced and collected as
        ``(label, Estimate)``.  Insert events receive sequential ids from
        the index, so a log that was recorded against ids 0, 1, 2, … can
        be replayed onto a fresh index.
        """
        rng = ensure_rng(random_state)
        results: List[Tuple[str, object]] = []
        for event in self.events:
            if isinstance(event, Insert):
                index.insert(event.vector)
            elif isinstance(event, Delete):
                index.delete(event.vector_id)
            elif isinstance(event, Checkpoint):
                if estimator is not None and threshold is not None:
                    results.append((event.label, estimator.estimate(threshold, random_state=rng)))
            else:  # pragma: no cover - defensive
                raise ValidationError(f"unknown event type: {type(event).__name__}")
        return results

    # ------------------------------------------------------------------
    # JSON Lines round-trip
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the log to ``path``, one JSON event per line."""
        lines = [json.dumps(event_to_dict(event)) for event in self.events]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "ChangeLog":
        """Load a log previously written with :meth:`to_jsonl`."""
        log = cls()
        for line_number, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(f"line {line_number}: invalid JSON ({error})") from error
            log.append(event_from_dict(payload))
        return log


__all__ = [
    "Insert",
    "Delete",
    "Checkpoint",
    "Event",
    "ChangeLog",
    "event_to_dict",
    "event_from_dict",
]
