"""A mutable LSH index: the paper's extended index under insert/delete.

The static :class:`~repro.lsh.table.LSHTable` /
:class:`~repro.lsh.index.LSHIndex` pair hashes a whole collection once
and freezes the bucket layout; any change to the collection costs a full
``O(n·k)`` rebuild.  This module provides the mutable counterpart used by
the streaming estimators:

* :class:`MutableLSHTable` — one hash table whose buckets support O(1)
  amortised ``insert`` / ``delete`` while keeping the paper's bucket-count
  bookkeeping (``N_H = Σ_j C(b_j, 2)``) *exact* at every step.  A vector's
  signature — computed through the same
  :meth:`~repro.lsh.families.LSHFamily.hash_matrix` code path as the
  batch build — never changes, so a surviving pair never migrates between
  stratum H and stratum L; mutations only add or remove pairs.
* :class:`MutableLSHIndex` — ``ℓ`` mutable tables over one growing /
  shrinking set of vectors, with stable sequential ids (or caller-assigned
  ids, the substrate of the sharded deployment in :mod:`repro.shard`),
  pooled row storage (:class:`~repro.streaming.rowstore.RowStore`) for
  fast per-pair cosine evaluation, and the SampleH / SampleL primitives
  the LSH-SS kernels need
  (:class:`repro.streaming.estimator.StreamingEstimator` builds on these).

Because signatures are deterministic given the family seed, replaying a
:class:`~repro.streaming.events.ChangeLog` through a mutable index yields
exactly the strata sizes (``N_H`` / ``N_L``) a fresh batch build over the
final collection would produce.

Indexes can be checkpointed with :meth:`MutableLSHIndex.snapshot` and
revived with :meth:`MutableLSHIndex.restore`: the snapshot serialises the
rows, the bucket layout (including dict iteration order, so sampling
draws replay identically), and the hash families themselves.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np
from scipy import sparse

from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh.families import LSHFamily
from repro.lsh.index import resolve_family
from repro.lsh.table import sample_uniform_pairs, sample_weighted_bucket_pairs
from repro.rng import RandomState, ensure_rng, spawn
from repro.streaming.rowstore import _MAX_ID, RowStore, pairwise_cosine
from repro.vectors.collection import VectorCollection

VectorInput = Union[Mapping[int, float], Sequence[float], np.ndarray, sparse.spmatrix]

#: Per-table bucket layout in dict iteration order: ``[(key, [member, …]), …]``.
BucketState = List[Tuple[bytes, List[int]]]


def coerce_row(vector: VectorInput, dimension: int) -> sparse.csr_matrix:
    """Canonicalise one input vector into a fresh 1×``dimension`` CSR row.

    Shared by :meth:`MutableLSHIndex.insert` and the shard router, so a
    vector routed through a :class:`repro.shard.ShardedMutableIndex` is
    stored bit-for-bit as a direct insert would store it.
    """
    if isinstance(vector, Mapping):
        indices = np.asarray([int(i) for i in vector.keys()], dtype=np.int64)
        values = np.asarray([float(v) for v in vector.values()], dtype=np.float64)
        if indices.size and (indices.min() < 0 or indices.max() >= dimension):
            raise ValidationError(
                f"vector indices must lie in [0, {dimension}), got "
                f"[{indices.min()}, {indices.max()}]"
            )
        row = sparse.csr_matrix(
            (values, (np.zeros(indices.size, dtype=np.int64), indices)),
            shape=(1, dimension),
            dtype=np.float64,
        )
    elif sparse.issparse(vector):
        # always copy: the row is canonicalised in place and stored, and
        # must never alias (or mutate) the caller's matrix
        row = vector.tocsr().astype(np.float64, copy=True)
    else:
        dense = np.asarray(vector, dtype=np.float64)
        if dense.ndim == 1:
            dense = dense[None, :]
        row = sparse.csr_matrix(dense)
    if row.shape[0] != 1 or row.shape[1] != dimension:
        raise ValidationError(
            f"expected one vector of dimension {dimension}, got shape {row.shape}"
        )
    if not np.all(np.isfinite(row.data)):
        raise ValidationError("vector values must be finite (no NaN / inf)")
    row.eliminate_zeros()
    row.sort_indices()
    return row


def coerce_matrix(
    matrix: Union[sparse.spmatrix, np.ndarray, VectorCollection], dimension: int
) -> sparse.csr_matrix:
    """Canonicalise a whole input matrix the way :func:`coerce_row` does rows.

    Canonicalisation happens BEFORE hashing: families that hash the
    support (e.g. MinHash) must see the same rows ``insert`` / a fresh
    batch build would, or explicit stored zeros would change signatures.
    """
    if isinstance(matrix, VectorCollection):
        matrix = matrix.matrix
    if not sparse.issparse(matrix):
        matrix = sparse.csr_matrix(np.atleast_2d(np.asarray(matrix, dtype=np.float64)))
    csr = matrix.tocsr().astype(np.float64)
    if csr.shape[1] != dimension:
        raise ValidationError(
            f"matrix dimension {csr.shape[1]} does not match index dimension {dimension}"
        )
    if not np.all(np.isfinite(csr.data)):
        raise ValidationError("vector values must be finite (no NaN / inf)")
    csr.eliminate_zeros()
    csr.sort_indices()
    return csr


def claim_vector_id(
    vector_id: Optional[int], next_id: int, live_position: Mapping[int, int]
) -> Tuple[int, int]:
    """Validate / assign one vector id; returns ``(vector_id, new_next_id)``.

    Shared by :class:`MutableLSHIndex` and the sharded facade so both
    enforce the same id policy: non-negative, below the row store's id
    space, and never currently live.
    """
    if vector_id is None:
        vector_id = next_id
    else:
        vector_id = int(vector_id)
        if not 0 <= vector_id < _MAX_ID:
            raise ValidationError(
                f"vector ids must lie in [0, {_MAX_ID}), got {vector_id}"
            )
        if vector_id in live_position:
            raise ValidationError(f"vector id {vector_id} is already in the index")
    return vector_id, max(next_id, vector_id + 1)


def signature_bucket_key(signature: np.ndarray, num_hashes: int) -> bytes:
    """Serialise a ``(k,)`` signature into the bucket key used by the tables."""
    row = np.ascontiguousarray(np.asarray(signature, dtype=np.int64).ravel())
    if row.size != num_hashes:
        raise ValidationError(
            f"signature has {row.size} values, expected k={num_hashes}"
        )
    return row.tobytes()


class MutableLSHTable:
    """One mutable LSH hash table with exact ``N_H`` bookkeeping.

    Buckets are keyed by the serialised signature; members are kept in
    swap-pop lists with a position map so ``insert`` and ``delete`` are
    O(1) dictionary operations.  ``num_collision_pairs`` is maintained
    incrementally: inserting into a bucket of size ``b`` adds ``b`` new
    co-bucket pairs, deleting from a bucket of size ``b`` removes
    ``b − 1``.

    The weighted bucket-pair sampler (SampleH) uses a lazily rebuilt flat
    CSR-style view of the buckets; the view is invalidated by any
    mutation and rebuilt in ``O(n)`` on the next sampling call, so bursts
    of updates between queries pay for one rebuild only.
    """

    def __init__(self, family: LSHFamily) -> None:
        self.family = family
        self._key_of: Dict[int, bytes] = {}
        self._members: Dict[bytes, List[int]] = {}
        self._position: Dict[int, int] = {}
        self._num_collision_pairs = 0
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vectors(self) -> int:
        """Number of live vectors in the table."""
        return len(self._key_of)

    @property
    def num_hashes(self) -> int:
        """Number of hash functions ``k`` in ``g``."""
        return self.family.num_hashes

    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets."""
        return len(self._members)

    @property
    def num_collision_pairs(self) -> int:
        """``N_H = Σ_j C(b_j, 2)``, maintained exactly under mutation."""
        return self._num_collision_pairs

    @property
    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all non-empty buckets (arbitrary but stable order)."""
        return np.asarray([len(m) for m in self._members.values()], dtype=np.int64)

    def __contains__(self, vector_id: int) -> bool:
        return vector_id in self._key_of

    def signature_key(self, vector_id: int) -> bytes:
        """The serialised signature (bucket key) of a live vector."""
        try:
            return self._key_of[vector_id]
        except KeyError:
            raise ValidationError(f"vector id {vector_id} is not in the table") from None

    def bucket_size_of(self, vector_id: int) -> int:
        """Size of the bucket containing ``vector_id``."""
        return len(self._members[self.signature_key(vector_id)])

    def bucket_members_of(self, vector_id: int) -> np.ndarray:
        """Ids sharing a bucket with ``vector_id`` (including itself)."""
        return np.asarray(self._members[self.signature_key(vector_id)], dtype=np.int64)

    def same_bucket(self, u: int, v: int) -> bool:
        """``True`` iff live vectors ``u`` and ``v`` share a bucket."""
        return self.signature_key(u) == self.signature_key(v)

    def same_bucket_many(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`same_bucket` over arrays of live vector ids."""
        key_of = self._key_of
        return np.fromiter(
            (key_of[int(u)] == key_of[int(v)] for u, v in zip(left, right)),
            dtype=bool,
            count=len(left),
        )

    def bucket_members_by_key(self, key: bytes) -> List[int]:
        """The member list of the bucket keyed by ``key`` (do not mutate).

        Used by the sharded merge layer to stitch per-shard buckets into
        one global SampleH layout without copying through an accessor.
        """
        try:
            return self._members[key]
        except KeyError:
            raise ValidationError("no bucket with the given signature key") from None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, vector_id: int, signature: np.ndarray) -> int:
        """Insert a vector with a precomputed ``(k,)`` signature row.

        Returns the number of co-bucket pairs the insertion created (the
        size of the target bucket before insertion).
        """
        if vector_id in self._key_of:
            raise ValidationError(f"vector id {vector_id} is already in the table")
        key = signature_bucket_key(signature, self.num_hashes)
        bucket = self._members.setdefault(key, [])
        new_pairs = len(bucket)
        self._position[vector_id] = len(bucket)
        bucket.append(vector_id)
        self._key_of[vector_id] = key
        self._num_collision_pairs += new_pairs
        self._frozen = None
        return new_pairs

    def delete(self, vector_id: int) -> int:
        """Remove a live vector; returns the number of co-bucket pairs removed."""
        key = self.signature_key(vector_id)
        bucket = self._members[key]
        position = self._position.pop(vector_id)
        last = bucket.pop()
        if last != vector_id:
            bucket[position] = last
            self._position[last] = position
        del self._key_of[vector_id]
        removed_pairs = len(bucket)
        self._num_collision_pairs -= removed_pairs
        if not bucket:
            del self._members[key]
        self._frozen = None
        return removed_pairs

    # ------------------------------------------------------------------
    # sampling (SampleH primitive)
    # ------------------------------------------------------------------
    def _frozen_layout(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style (counts, offsets, members_flat, pair_counts) over buckets with ≥ 2 members."""
        if self._frozen is None:
            self._frozen = freeze_bucket_layout(
                members
                for members in self._members.values()
                if len(members) >= 2
            )
        return self._frozen

    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample uniform pairs from stratum H (same scheme as the static table)."""
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self._num_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum H is empty: every LSH bucket contains a single vector"
            )
        rng = ensure_rng(random_state)
        counts, offsets, members_flat, pair_counts = self._frozen_layout()
        return sample_weighted_bucket_pairs(
            counts, offsets, members_flat, pair_counts, sample_size, rng
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def bucket_state(self) -> BucketState:
        """The bucket layout in dict iteration order (snapshot substrate).

        Preserving the iteration order matters: the SampleH layout is
        derived from it, so a restored table replays the same draws the
        original would for the same generator state.
        """
        return [(key, list(members)) for key, members in self._members.items()]

    def load_bucket_state(self, buckets: BucketState) -> None:
        """Replace the bucket layout with a previously captured state."""
        self._key_of = {}
        self._members = {}
        self._position = {}
        self._num_collision_pairs = 0
        self._frozen = None
        for key, members in buckets:
            bucket = list(int(member) for member in members)
            self._members[bytes(key)] = bucket
            for position, vector_id in enumerate(bucket):
                if vector_id in self._key_of:
                    raise ValidationError(
                        f"bucket state repeats vector id {vector_id}"
                    )
                self._key_of[vector_id] = bytes(key)
                self._position[vector_id] = position
            size = len(bucket)
            self._num_collision_pairs += size * (size - 1) // 2

    def check_invariants(self) -> None:
        """Verify the incremental bookkeeping against a from-scratch recount."""
        sizes = self.bucket_sizes
        recomputed = int(np.sum(sizes * (sizes - 1) // 2)) if sizes.size else 0
        if recomputed != self._num_collision_pairs:
            raise AssertionError(
                f"N_H bookkeeping drifted: incremental={self._num_collision_pairs}, "
                f"recount={recomputed}"
            )
        if int(sizes.sum()) != len(self._key_of) or len(self._position) != len(self._key_of):
            raise AssertionError("member bookkeeping drifted")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MutableLSHTable(n={self.num_vectors}, k={self.num_hashes}, "
            f"buckets={self.num_buckets}, NH={self.num_collision_pairs})"
        )


def freeze_bucket_layout(
    buckets: Iterable[Union[Sequence[int], np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten an iterable of member lists into the SampleH CSR layout.

    Shared by :class:`MutableLSHTable` and the sharded merge layer
    (:mod:`repro.shard`), which feeds buckets gathered from many shards —
    identical inputs produce identical layouts, hence identical draws.
    """
    arrays = [np.asarray(members, dtype=np.int64) for members in buckets]
    if arrays:
        counts = np.asarray([a.size for a in arrays], dtype=np.int64)
        members_flat = np.concatenate(arrays)
    else:
        counts = np.zeros(0, dtype=np.int64)
        members_flat = np.zeros(0, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    pair_counts = counts * (counts - 1) // 2
    return counts, offsets, members_flat, pair_counts


def collect_estimator_states(observers: Sequence[object]) -> List[Dict[str, object]]:
    """Serialisable states of the estimator observers among ``observers``.

    Duck-typed (``to_state`` + the ``"streaming-estimator"`` kind tag)
    so this module never imports :mod:`repro.streaming.estimator`, which
    imports it back.
    """
    states = []
    for observer in observers:
        to_state = getattr(observer, "to_state", None)
        if not callable(to_state):
            continue
        state = to_state()
        if isinstance(state, dict) and state.get("kind") == "streaming-estimator":
            states.append(state)
    return states


def restore_estimator_states(
    index: "MutableLSHIndex", states: Sequence[Mapping[str, object]]
) -> List[object]:
    """Reattach checkpointed estimators to a restored index (in order)."""
    from repro.streaming.estimator import StreamingEstimator

    return [StreamingEstimator.from_state(index, state) for state in states]


class MutableLSHIndex:
    """``ℓ`` mutable LSH tables over a growing / shrinking vector set.

    Parameters
    ----------
    dimension:
        Dimensionality ``d`` of the vector space; the hash families are
        bound to it eagerly so inserts can be hashed one at a time.
    num_hashes:
        ``k`` — hash functions per table.
    num_tables:
        ``ℓ`` — number of tables.
    family:
        Family name (``"cosine"`` / ``"jaccard"``) or an
        :class:`~repro.lsh.families.LSHFamily` subclass.
    random_state:
        Seed / generator; the ``ℓ`` tables receive independent child
        generators exactly as in the static :class:`~repro.lsh.index.LSHIndex`,
        so the same seed produces the same hash functions.
    families:
        Pre-built family instances, one per table (advanced).  The shard
        layer passes the *same* instances to every shard so all shards
        hash identically; ``family`` / ``random_state`` are ignored when
        given.

    Ids are assigned sequentially from 0 in insertion order and are never
    reused, so a :class:`~repro.streaming.events.ChangeLog` recorded
    against one index replays identically onto a fresh one.  A caller may
    instead assign its own ids (``insert(vector, vector_id=…)``) — the
    shard router uses this to keep *global* ids inside per-shard indexes.
    """

    def __init__(
        self,
        dimension: int,
        *,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: Union[str, Type[LSHFamily]] = "cosine",
        random_state: RandomState = None,
        families: Optional[Sequence[LSHFamily]] = None,
    ) -> None:
        if num_tables < 1:
            raise ValidationError(f"num_tables (ℓ) must be >= 1, got {num_tables}")
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        self.dimension = int(dimension)
        self.num_hashes = int(num_hashes)
        self.num_tables = int(num_tables)
        if families is not None:
            families = list(families)
            if len(families) != self.num_tables:
                raise ValidationError(
                    f"got {len(families)} families for {self.num_tables} tables"
                )
            for family_instance in families:
                if family_instance.num_hashes != self.num_hashes:
                    raise ValidationError(
                        "family has k="
                        f"{family_instance.num_hashes}, index expects k={self.num_hashes}"
                    )
                family_instance.ensure_initialised(self.dimension)
            self.tables: List[MutableLSHTable] = [
                MutableLSHTable(family_instance) for family_instance in families
            ]
        else:
            family_class = resolve_family(family)
            rng = ensure_rng(random_state)
            self.tables = []
            for child in spawn(rng, num_tables):
                family_instance = family_class(self.num_hashes, random_state=child)
                family_instance.ensure_initialised(self.dimension)
                self.tables.append(MutableLSHTable(family_instance))
        self._rows = RowStore(self.dimension)
        self._live_ids: List[int] = []
        self._live_position: Dict[int, int] = {}
        self._next_id = 0
        self._observers: List[object] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_collection(
        cls,
        collection: VectorCollection,
        *,
        num_hashes: int = 20,
        num_tables: int = 1,
        family: Union[str, Type[LSHFamily]] = "cosine",
        random_state: RandomState = None,
    ) -> "MutableLSHIndex":
        """Bulk-load a collection (ids ``0 … n−1`` in row order)."""
        index = cls(
            collection.dimension,
            num_hashes=num_hashes,
            num_tables=num_tables,
            family=family,
            random_state=random_state,
        )
        index.insert_many(collection.matrix)
        return index

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def families(self) -> List[LSHFamily]:
        """The ``ℓ`` family instances, one per table."""
        return [table.family for table in self.tables]

    @property
    def size(self) -> int:
        """Number of live vectors ``n``."""
        return len(self._live_ids)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, vector_id: int) -> bool:
        return vector_id in self._live_position

    @property
    def ids(self) -> np.ndarray:
        """Live vector ids (arbitrary but stable order)."""
        return np.asarray(self._live_ids, dtype=np.int64)

    @property
    def primary_table(self) -> MutableLSHTable:
        """The first table — used by the single-table estimators."""
        return self.tables[0]

    @property
    def total_pairs(self) -> int:
        """``M = C(n, 2)`` over the live vectors."""
        n = self.size
        return n * (n - 1) // 2

    @property
    def num_collision_pairs(self) -> int:
        """``N_H`` of the primary table."""
        return self.primary_table.num_collision_pairs

    @property
    def num_non_collision_pairs(self) -> int:
        """``N_L = M − N_H`` of the primary table."""
        return self.total_pairs - self.num_collision_pairs

    def row(self, vector_id: int) -> sparse.csr_matrix:
        """The stored (raw) vector as a fresh 1×d CSR row."""
        return self._rows.gather_raw([vector_id])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def register_observer(self, observer: object) -> None:
        """Register an object with ``on_insert(id)`` / ``on_delete(id)`` hooks.

        :class:`~repro.streaming.estimator.StreamingEstimator` uses this
        to repair its reservoirs as the collection changes.  Observers
        are notified on every mutation until
        :meth:`unregister_observer` is called — discard short-lived
        estimators explicitly (``estimator.close()``), or they keep
        being repaired forever.
        """
        self._observers.append(observer)

    def unregister_observer(self, observer: object) -> None:
        """Stop notifying ``observer``; a no-op if it is not registered."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _coerce_row(self, vector: VectorInput) -> sparse.csr_matrix:
        return coerce_row(vector, self.dimension)

    def _claim_id(self, vector_id: Optional[int]) -> int:
        vector_id, self._next_id = claim_vector_id(
            vector_id, self._next_id, self._live_position
        )
        return vector_id

    def insert(self, vector: VectorInput, *, vector_id: Optional[int] = None) -> int:
        """Insert one vector; returns its id (assigned sequentially unless given).

        Caller-assigned ids must be fresh (never live before) and
        dense-ish — they index the row store's slot map directly, which
        is what the shard router relies on with its sequential global
        ids.
        """
        row = self._coerce_row(vector)
        signatures = [table.family.hash_matrix(row)[0] for table in self.tables]
        return self._insert_prepared(vector_id, row, signatures)

    def _insert_prepared(
        self,
        vector_id: Optional[int],
        row: sparse.csr_matrix,
        signatures: Sequence[np.ndarray],
    ) -> int:
        """Insert one already-coerced, already-hashed row (router fast path)."""
        vector_id = self._claim_id(vector_id)
        self._rows.add(vector_id, row)
        self._live_position[vector_id] = len(self._live_ids)
        self._live_ids.append(vector_id)
        for table, signature in zip(self.tables, signatures):
            table.insert(vector_id, signature)
        for observer in self._observers:
            observer.on_insert(vector_id)
        return vector_id

    def insert_many(
        self,
        matrix: Union[sparse.spmatrix, np.ndarray, VectorCollection],
        *,
        vector_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Insert every row of a matrix / collection; returns the assigned ids.

        Signatures are computed in one batch matrix product per table —
        the same cost profile as a static build — while the bucket
        insertions remain incremental.
        """
        csr = coerce_matrix(matrix, self.dimension)
        signatures = [table.family.hash_matrix(csr) for table in self.tables]
        return self.insert_many_prepared(vector_ids, csr, signatures)

    def insert_many_prepared(
        self,
        vector_ids: Optional[Sequence[int]],
        csr: sparse.csr_matrix,
        signatures: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Bulk-insert already-coerced rows with precomputed signatures.

        This is the shard ingestion fast path: the router hashes a whole
        batch once, partitions rows by bucket key, and each shard applies
        its slice here — rows are pooled in one append, bucket insertions
        and observer notifications stay per-row (so estimator staleness
        accounting sees the same intermediate sizes a loop of ``insert``
        calls would produce).
        """
        num_rows = csr.shape[0]
        if vector_ids is None:
            ids = np.arange(self._next_id, self._next_id + num_rows, dtype=np.int64)
        else:
            ids = np.asarray(list(vector_ids), dtype=np.int64)
            if ids.size != num_rows:
                raise ValidationError(
                    f"got {ids.size} vector ids for {num_rows} rows"
                )
            if np.unique(ids).size != ids.size:
                raise ValidationError("vector ids must be unique within a batch")
            for vector_id in ids:
                claim_vector_id(int(vector_id), self._next_id, self._live_position)
        # add_many validates the whole batch (range, duplicates) before
        # mutating, so a bad batch leaves the index untouched; only then
        # is _next_id advanced
        self._rows.add_many(ids, csr)
        if num_rows:
            self._next_id = max(self._next_id, int(ids.max()) + 1)
        for position in range(num_rows):
            vector_id = int(ids[position])
            self._live_position[vector_id] = len(self._live_ids)
            self._live_ids.append(vector_id)
            for table, table_signatures in zip(self.tables, signatures):
                table.insert(vector_id, table_signatures[position])
            for observer in self._observers:
                observer.on_insert(vector_id)
        return ids

    def delete(self, vector_id: int) -> None:
        """Remove a live vector by id."""
        if vector_id not in self._live_position:
            raise ValidationError(f"vector id {vector_id} is not in the index")
        for table in self.tables:
            table.delete(vector_id)
        position = self._live_position.pop(vector_id)
        last = self._live_ids.pop()
        if last != vector_id:
            self._live_ids[position] = last
            self._live_position[last] = position
        self._rows.remove(vector_id)
        for observer in self._observers:
            observer.on_delete(vector_id)

    # ------------------------------------------------------------------
    # similarity + sampling primitives
    # ------------------------------------------------------------------
    def cosine_pairs(self, left_ids: Sequence[int], right_ids: Sequence[int]) -> np.ndarray:
        """Cosine similarities for many live ``(left, right)`` id pairs.

        Served from the pooled row store: one vectorised gather per side
        instead of a per-row ``vstack``, with inverse norms cached lazily
        (queries pay for normalisation once per row, updates never do).
        """
        left = np.asarray(left_ids, dtype=np.int64)
        right = np.asarray(right_ids, dtype=np.int64)
        if left.shape != right.shape:
            raise ValidationError("left and right id arrays must have the same length")
        if left.size == 0:
            return np.zeros(0, dtype=np.float64)
        rows_left = self._rows.gather_normalized(left)
        rows_right = self._rows.gather_normalized(right)
        return pairwise_cosine(rows_left, rows_right)

    def sample_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from the primary table's stratum H (SampleH)."""
        return self.primary_table.sample_collision_pairs(sample_size, random_state=random_state)

    def sample_non_collision_pairs(
        self, sample_size: int, *, random_state: RandomState = None, max_attempts: int = 64
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform pairs from the primary table's stratum L via rejection (SampleL)."""
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self.num_non_collision_pairs == 0:
            raise InsufficientSampleError(
                "stratum L is empty: every pair of vectors shares a bucket"
            )
        rng = ensure_rng(random_state)
        live = self.ids
        table = self.primary_table
        lefts: List[np.ndarray] = []
        rights: List[np.ndarray] = []
        remaining = sample_size
        for _attempt in range(max_attempts):
            batch = max(remaining, 16)
            left_pos, right_pos = sample_uniform_pairs(live.size, batch, rng)
            left, right = live[left_pos], live[right_pos]
            keep = ~table.same_bucket_many(left, right)
            if keep.any():
                lefts.append(left[keep][:remaining])
                rights.append(right[keep][:remaining])
                remaining -= lefts[-1].size
            if remaining <= 0:
                return (
                    np.concatenate(lefts).astype(np.int64),
                    np.concatenate(rights).astype(np.int64),
                )
        raise InsufficientSampleError(
            "could not sample enough stratum-L pairs; the LSH table groups "
            "almost every pair into a single bucket (k is far too small)"
        )

    # ------------------------------------------------------------------
    # export / verification
    # ------------------------------------------------------------------
    def to_collection(self) -> Tuple[VectorCollection, np.ndarray]:
        """Materialise the live vectors as an immutable collection.

        Returns ``(collection, ids)`` where ``collection.row(i)`` is the
        vector whose streaming id is ``ids[i]``.  Used by tests and
        benchmarks to compare against a fresh static build.
        """
        if not self._live_ids:
            raise ValidationError("cannot materialise an empty index as a collection")
        ids = self.ids
        stacked = self._rows.gather_raw(ids)
        return VectorCollection(stacked, copy=False), ids

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """A picklable checkpoint: rows, bucket layouts, families, estimators.

        Bucket dict iteration order and the live-id order are both
        preserved, so a restored index produces the same sampling draws
        the original would for the same generator state — a shard can be
        checkpointed on one node and revived on another without
        disturbing the merged estimate.

        Registered :class:`~repro.streaming.estimator.StreamingEstimator`
        observers contribute their reservoir state (pairs, staleness
        counters, generator position) under the ``"estimators"`` key, so
        :meth:`from_state` reattaches them with their sampled state
        intact instead of redrawing.
        """
        state = {
            "format": 1,
            "dimension": self.dimension,
            "num_hashes": self.num_hashes,
            "num_tables": self.num_tables,
            "next_id": self._next_id,
            "live_ids": list(self._live_ids),
            "rows": self._rows.state(),
            "families": self.families,  # reprolint: disable=R013 - LSHFamily carries its seeded hyperplanes; gains its own to_state() in the wire-format migration (ROADMAP)
            "tables": [table.bucket_state() for table in self.tables],
        }
        estimator_states = collect_estimator_states(self._observers)
        if estimator_states:
            state["estimators"] = estimator_states
        return state

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "MutableLSHIndex":
        """Rebuild an index from :meth:`to_state` output (no re-hashing).

        Estimator states embedded by :meth:`to_state` are restored and
        re-registered as observers; retrieve them via
        ``index.estimators`` (they resume bit-identically).
        """
        if state.get("kind") == "engine-snapshot":
            # engine bundles wrap the index state; unwrap so low-level
            # tooling keeps working on front-door snapshots
            backend_state = state.get("backend", {})
            if backend_state.get("kind") != "streaming-backend":
                raise ValidationError(
                    "engine snapshot wraps a "
                    f"{backend_state.get('kind', 'unknown')!r} state, not a "
                    "streaming index; restore it with JoinEstimationEngine.restore"
                )
            state = backend_state.get("index", {})
        if state.get("format") != 1:
            raise ValidationError(
                f"unsupported snapshot format {state.get('format')!r}"
            )
        index = cls(
            int(state["dimension"]),
            num_hashes=int(state["num_hashes"]),
            num_tables=int(state["num_tables"]),
            families=state["families"],
        )
        index._rows = RowStore.from_state(state["rows"])
        index._live_ids = [int(i) for i in state["live_ids"]]
        index._live_position = {
            vector_id: position for position, vector_id in enumerate(index._live_ids)
        }
        index._next_id = int(state["next_id"])
        for table, buckets in zip(index.tables, state["tables"]):
            table.load_bucket_state(buckets)
        restore_estimator_states(index, state.get("estimators", ()))
        return index

    @property
    def estimators(self) -> Tuple[object, ...]:
        """The registered streaming estimators (restored ones included)."""
        return tuple(
            observer
            for observer in self._observers
            if callable(getattr(observer, "to_state", None))
        )

    def snapshot(self, path: Union[str, Path]) -> None:
        """Serialise the index to ``path`` (buckets + rows + families)."""
        with open(path, "wb") as handle:
            pickle.dump(self.to_state(), handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "MutableLSHIndex":
        """Revive an index from a :meth:`snapshot` file."""
        with open(path, "rb") as handle:
            state = pickle.load(handle)  # reprolint: disable=R005 - operator-supplied local snapshot file, same trust domain as the process
        return cls.from_state(state)

    def check_invariants(self) -> None:
        """Verify bookkeeping across all tables (tests / debugging aid)."""
        for table in self.tables:
            table.check_invariants()
            if table.num_vectors != self.size:
                raise AssertionError(
                    f"table holds {table.num_vectors} vectors, index holds {self.size}"
                )
        if len(self._rows) != self.size:
            raise AssertionError("row storage drifted from live-id bookkeeping")
        if set(self._rows) != set(self._live_position):
            raise AssertionError("row storage holds a different id set than the index")
        self._rows.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MutableLSHIndex(n={self.size}, d={self.dimension}, "
            f"k={self.num_hashes}, tables={self.num_tables})"
        )


__all__ = [
    "MutableLSHTable",
    "MutableLSHIndex",
    "claim_vector_id",
    "coerce_row",
    "coerce_matrix",
    "signature_bucket_key",
    "freeze_bucket_layout",
    "collect_estimator_states",
    "restore_estimator_states",
]
