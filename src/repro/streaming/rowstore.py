"""Pooled CSR row storage for the mutable index (query-path fix).

:class:`~repro.streaming.mutable_index.MutableLSHIndex` originally kept
one 1×d ``csr_matrix`` object per vector and served ``cosine_pairs`` by
``sparse.vstack``-ing the sampled rows — thousands of single-row matrix
constructions per query, which made mutable-path queries several times
slower than the static path (ROADMAP, E13).

:class:`RowStore` replaces the per-row objects with two flat pools
(``data`` / ``indices``) plus slot-indexed extent arrays:

* **amortised appends** — an insert copies its ``nnz`` values to the
  pool tail (the pool doubles when full); a batch insert copies the
  whole batch in one slice;
* **vectorised gather** — :meth:`gather_normalized` materialises the
  sampled rows as *one* CSR matrix; the id → slot → extent resolution is
  pure ``numpy`` fancy indexing, no per-row Python work;
* **lazy normalisation** — inverse L2 norms are computed in bulk for
  exactly the rows a cosine query touches for the first time and cached,
  so pure update bursts never pay for normalisation;
* **deferred compaction** — deletes only free the slot; the pool is
  rewritten once the dead fraction exceeds the live one.

Norms are segment sums in index order (``np.add.reduceat``), the same
accumulation order the static
:attr:`~repro.vectors.collection.VectorCollection.normalized_matrix`
uses, so cosine values served from the store are bit-identical to the
static query path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, cast

import numpy as np
from scipy import sparse

from repro.errors import ValidationError

_MIN_CAPACITY = 1024
_MIN_SLOTS = 64
_COMPACTION_FLOOR = 4096
#: Highest admissible vector id.  The id → slot map is a dense array (that
#: is what makes gathers fully vectorised), so ids far beyond the live row
#: count would translate directly into allocated memory; the cap turns a
#: runaway allocation into a validation error.  2^27 ids = 1 GiB of map.
_MAX_ID = 1 << 27


def pairwise_cosine(rows_left: sparse.csr_matrix, rows_right: sparse.csr_matrix) -> np.ndarray:
    """Row-wise cosine of two aligned stacks of L2-normalised rows."""
    products = rows_left.multiply(rows_right).sum(axis=1)
    return np.clip(np.asarray(products).ravel(), -1.0, 1.0)


class RowStore:
    """Flat pooled storage of sparse rows keyed by non-negative vector id.

    Ids index a dense slot map, so they are expected to be dense-ish
    (sequentially assigned, never reused — the `MutableLSHIndex`
    contract); ids beyond ``_MAX_ID`` are rejected rather than allowed
    to size the map.
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        self.dimension = int(dimension)
        self._data = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._indices = np.empty(_MIN_CAPACITY, dtype=np.int32)
        self._used = 0
        self._live_nnz = 0
        # id-indexed slot map (-1 = absent); slot-indexed extents and norms
        self._slot_of = np.full(_MIN_SLOTS, -1, dtype=np.int64)
        self._id_of_slot = np.full(_MIN_SLOTS, -1, dtype=np.int64)
        self._starts = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self._lengths = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self._inv_norms = np.full(_MIN_SLOTS, np.nan, dtype=np.float64)
        self._slot_count = 0
        self._free_slots: List[int] = []

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._slot_count - len(self._free_slots)

    def __contains__(self, vector_id: int) -> bool:
        return 0 <= vector_id < self._slot_of.size and self._slot_of[vector_id] >= 0

    def ids(self) -> np.ndarray:
        """Live vector ids in increasing order."""
        return np.flatnonzero(self._slot_of >= 0)

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self.ids())

    def __getitem__(self, vector_id: int) -> sparse.csr_matrix:
        """Materialise one raw row as a fresh 1×d CSR matrix."""
        return self.gather_raw([vector_id])

    @property
    def nnz(self) -> int:
        """Total non-zeros across live rows."""
        return self._live_nnz

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _ensure_pool(self, extra: int) -> None:
        needed = self._used + extra
        if needed <= self._data.size:
            return
        capacity = max(self._data.size, _MIN_CAPACITY)
        while capacity < needed:
            capacity *= 2
        self._data = np.concatenate([self._data[: self._used],
                                     np.empty(capacity - self._used, dtype=np.float64)])
        self._indices = np.concatenate([self._indices[: self._used],
                                        np.empty(capacity - self._used, dtype=np.int32)])

    def _ensure_id(self, vector_id: int) -> None:
        if vector_id >= _MAX_ID:
            raise ValidationError(
                f"vector id {vector_id} exceeds the supported id space "
                f"(< {_MAX_ID}); ids must stay dense-ish, they index the "
                "slot map directly"
            )
        if vector_id >= self._slot_of.size:
            grown = np.full(max(2 * self._slot_of.size, vector_id + 1), -1, dtype=np.int64)
            grown[: self._slot_of.size] = self._slot_of
            self._slot_of = grown

    def _claim_slot(self, vector_id: int) -> int:
        if vector_id < 0:
            raise ValidationError(f"vector ids must be >= 0, got {vector_id}")
        self._ensure_id(vector_id)
        if self._slot_of[vector_id] >= 0:
            raise ValidationError(f"vector id {vector_id} is already stored")
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = self._slot_count
            if slot >= self._starts.size:
                new_size = max(2 * self._starts.size, _MIN_SLOTS)
                for name in ("_id_of_slot", "_starts", "_lengths", "_inv_norms"):
                    old = getattr(self, name)
                    fill = np.nan if old.dtype == np.float64 else -1
                    grown = np.full(new_size, fill, dtype=old.dtype)
                    grown[: old.size] = old
                    setattr(self, name, grown)
            self._slot_count += 1
        self._slot_of[vector_id] = slot
        self._id_of_slot[slot] = vector_id
        self._inv_norms[slot] = np.nan
        return slot

    def add(self, vector_id: int, row: sparse.csr_matrix) -> None:
        """Append one canonicalised 1×d CSR row under ``vector_id``."""
        nnz = int(row.nnz)
        self._ensure_pool(nnz)
        slot = self._claim_slot(int(vector_id))
        start = self._used
        self._data[start : start + nnz] = row.data
        self._indices[start : start + nnz] = row.indices
        self._starts[slot] = start
        self._lengths[slot] = nnz
        self._used += nnz
        self._live_nnz += nnz

    def add_many(self, vector_ids: Sequence[int], matrix: sparse.csr_matrix) -> None:
        """Bulk-append the rows of ``matrix`` under the given ids.

        Ids are validated up front, so a bad batch raises without
        mutating the store (no phantom slots or extents).
        """
        if matrix.shape[0] != len(vector_ids):
            raise ValidationError(
                f"got {len(vector_ids)} ids for a matrix of {matrix.shape[0]} rows"
            )
        seen = set()
        for vector_id in vector_ids:
            vector_id = int(vector_id)
            if not 0 <= vector_id < _MAX_ID:
                raise ValidationError(
                    f"vector ids must lie in [0, {_MAX_ID}), got {vector_id}"
                )
            if vector_id in self or vector_id in seen:
                raise ValidationError(f"vector id {vector_id} is already stored")
            seen.add(vector_id)
        nnz = int(matrix.nnz)
        self._ensure_pool(nnz)
        start = self._used
        self._data[start : start + nnz] = matrix.data
        self._indices[start : start + nnz] = matrix.indices
        indptr = matrix.indptr
        for position, vector_id in enumerate(vector_ids):
            slot = self._claim_slot(int(vector_id))
            self._starts[slot] = start + int(indptr[position])
            self._lengths[slot] = int(indptr[position + 1] - indptr[position])
        self._used += nnz
        self._live_nnz += nnz

    def remove(self, vector_id: int) -> None:
        """Drop a row; pool space is reclaimed lazily by compaction."""
        if vector_id not in self:
            raise ValidationError(f"vector id {vector_id} is not in the store")
        slot = int(self._slot_of[vector_id])
        self._slot_of[vector_id] = -1
        self._id_of_slot[slot] = -1
        self._free_slots.append(slot)
        self._live_nnz -= int(self._lengths[slot])
        dead = self._used - self._live_nnz
        if dead > max(self._live_nnz, _COMPACTION_FLOOR):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the pools keeping only live rows (slot order)."""
        live = np.flatnonzero(self._id_of_slot[: self._slot_count] >= 0)
        lengths = self._lengths[live]
        new_starts = np.zeros(live.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_starts[1:])
        total = int(new_starts[-1])
        positions = _segment_positions(self._starts[live], lengths, new_starts)
        self._data = np.concatenate(
            [self._data[positions], np.empty(max(total, _MIN_CAPACITY) - total, dtype=np.float64)]
        )
        self._indices = np.concatenate(
            [self._indices[positions], np.empty(max(total, _MIN_CAPACITY) - total, dtype=np.int32)]
        )
        self._starts[live] = new_starts[:-1]
        self._used = total

    # ------------------------------------------------------------------
    # gathering
    # ------------------------------------------------------------------
    def _resolve_slots(self, vector_ids: np.ndarray) -> np.ndarray:
        valid = (vector_ids >= 0) & (vector_ids < self._slot_of.size)
        slots = np.full(vector_ids.size, -1, dtype=np.int64)
        slots[valid] = self._slot_of[vector_ids[valid]]
        if slots.size and slots.min() < 0:
            missing = int(vector_ids[int(np.argmin(slots >= 0))])
            raise ValidationError(f"vector id {missing} is not in the index")
        return slots

    def _fill_missing_norms(self, slots: np.ndarray) -> None:
        missing = slots[np.isnan(self._inv_norms[slots])]
        if missing.size == 0:
            return
        missing = np.unique(missing)
        lengths = self._lengths[missing]
        indptr = np.zeros(missing.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        positions = _segment_positions(self._starts[missing], lengths, indptr)
        values = self._data[positions]
        squared = values * values
        sums = np.zeros(missing.size, dtype=np.float64)
        nonempty = lengths > 0
        if nonempty.any():
            sums[nonempty] = np.add.reduceat(squared, indptr[:-1][nonempty])
        norms = np.sqrt(sums)
        self._inv_norms[missing] = np.where(norms > 0.0, 1.0 / np.where(norms > 0.0, norms, 1.0), 1.0)

    def _gather(self, vector_ids: Sequence[int], normalized: bool) -> sparse.csr_matrix:
        ids = np.asarray(vector_ids, dtype=np.int64).ravel()
        slots = self._resolve_slots(ids)
        lengths = self._lengths[slots]
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        positions = _segment_positions(self._starts[slots], lengths, indptr)
        out_data = self._data[positions]
        if normalized:
            self._fill_missing_norms(slots)
            out_data = out_data * np.repeat(self._inv_norms[slots], lengths)
        return sparse.csr_matrix(
            (out_data, self._indices[positions], indptr),
            shape=(ids.size, self.dimension),
        )

    def inv_norm(self, vector_id: int) -> float:
        """Cached ``1 / ‖row‖₂`` (1.0 for zero rows, as the old path had it)."""
        slots = self._resolve_slots(np.asarray([vector_id], dtype=np.int64))
        self._fill_missing_norms(slots)
        return float(self._inv_norms[slots[0]])

    def gather_raw(self, vector_ids: Sequence[int]) -> sparse.csr_matrix:
        """The requested raw rows stacked into one fresh CSR matrix."""
        return self._gather(vector_ids, normalized=False)

    def gather_normalized(self, vector_ids: Sequence[int]) -> sparse.csr_matrix:
        """The requested rows L2-normalised, stacked into one CSR matrix."""
        return self._gather(vector_ids, normalized=True)

    # ------------------------------------------------------------------
    # serialisation (snapshot/restore substrate)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the live rows (ids + one CSR matrix)."""
        ids = self.ids()
        matrix = self.gather_raw(ids) if ids.size else sparse.csr_matrix((0, self.dimension))
        return {"dimension": self.dimension, "ids": ids.tolist(), "matrix": matrix}  # reprolint: disable=R013 - scipy CSR rows; becomes raw numpy buffer frames in the wire-format migration (ROADMAP)

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "RowStore":
        store = cls(int(state["dimension"]))
        ids = cast(List[int], state["ids"])
        if ids:
            store.add_many(ids, cast(sparse.spmatrix, state["matrix"]).tocsr())
        return store

    def check_invariants(self) -> None:
        """Verify slot/extent bookkeeping (tests / debugging aid)."""
        live_slots = np.flatnonzero(self._id_of_slot[: self._slot_count] >= 0)
        if live_slots.size != len(self):
            raise AssertionError("slot freelist bookkeeping drifted")
        ids = self._id_of_slot[live_slots]
        if not np.array_equal(self._slot_of[ids], live_slots):
            raise AssertionError("id ↔ slot mapping drifted")
        if int(self._lengths[live_slots].sum()) != self._live_nnz:
            raise AssertionError("live nnz bookkeeping drifted")
        ends = self._starts[live_slots] + self._lengths[live_slots]
        if live_slots.size and (int(ends.max()) > self._used or int(self._starts[live_slots].min()) < 0):
            raise AssertionError("row extents out of pool bounds")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RowStore(rows={len(self)}, nnz={self._live_nnz}, "
            f"pool={self._used}/{self._data.size})"
        )


def _segment_positions(
    starts: np.ndarray, lengths: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """Pool positions for concatenated segments, fully vectorised.

    ``indptr`` must be the cumulative-sum prefix of ``lengths``; position
    ``i`` of the output addresses element ``i − indptr[j] + starts[j]``
    of the pool for the segment ``j`` containing ``i``.
    """
    total = int(indptr[-1])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(indptr[:-1], lengths)
        + np.repeat(starts, lengths)
    )


__all__ = ["RowStore", "pairwise_cosine"]
