"""Incremental LSH-SS estimation over a :class:`MutableLSHIndex`.

:class:`StreamingEstimator` keeps the two LSH strata of Algorithm 1
serveable while the collection mutates:

* the strata **sizes** (``N_H`` / ``N_L``) come straight from the mutable
  index's exact bookkeeping, so they always equal what a fresh batch
  build over the current collection would report;
* per stratum, a **pair reservoir** holds uniform sample pairs that are
  *repaired* on mutation instead of redrawn: a delete evicts the pairs
  touching the deleted vector (a surviving pair never changes stratum,
  because a vector's signature is immutable), while an insert adds pairs
  the reservoir has never had a chance to contain, which is tracked as
  *staleness*.

Staleness-budget semantics
--------------------------
``staleness`` of a reservoir is the fraction of the current stratum made
of pairs created after the reservoir's last (partial) refresh — exactly
the probability mass a reservoir-based sample cannot reach.  Whenever
``staleness > staleness_budget``, or evictions have emptied more than a
``staleness_budget`` fraction of the reservoir's slots, the estimator
performs a **partial resample**: it redraws only enough pairs to refill
the empty slots and to overwrite a staleness-proportional share of the
old ones, then resets the staleness counter.  The budget therefore caps
the sampling bias of the amortised path: a budget of ``b`` bounds the
unreachable probability mass by ``b`` at every query.  ``refresh()``
redraws everything and is always exact.

Both paths reuse :func:`repro.core.lsh_ss.sample_stratum_h` /
:func:`~repro.core.lsh_ss.sample_stratum_l` as the estimation kernels;
they differ only in the pair source handed to the kernels:

* ``mode="exact"`` — sample fresh pairs through the index's SampleH /
  SampleL primitives (distribution identical to a freshly built
  :class:`~repro.core.lsh_ss.LSHSSEstimator` on the same collection);
* ``mode="reservoir"`` — draw (with replacement) from the repaired
  reservoirs, touching no buckets at query time; raises
  :class:`~repro.errors.InsufficientSampleError` when a needed
  reservoir is empty or degraded while its stratum is non-empty;
* ``mode="auto"`` (default) — the reservoir path, preceded by a repair
  if mutations since the last query pushed staleness over budget.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import Estimate, SimilarityJoinSizeEstimator
from repro.core.lsh_ss import (
    Dampening,
    default_answer_threshold,
    default_sample_size,
    sample_stratum_h,
    sample_stratum_l,
)
from repro.errors import InsufficientSampleError, ValidationError
from repro.rng import RandomState, ensure_rng, generator_from_state, generator_state
from repro.streaming.mutable_index import MutableLSHIndex

_MODES = ("auto", "exact", "reservoir")

#: draws ``size`` pair ids: (left ids, right ids)
PairSource = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]


class _PairReservoir:
    """A repairable uniform sample of pairs from one stratum.

    A multiset of member ids (``_id_counts``) makes the common case of
    :meth:`drop_vector` — the deleted vector appears in no reservoir pair
    — an O(1) lookup instead of a full scan.
    """

    def __init__(self, target_size: int) -> None:
        self.target_size = int(target_size)
        self.left: List[int] = []
        self.right: List[int] = []
        self._id_counts: Counter = Counter()
        #: pairs added to the stratum since the last (partial) refresh
        self.unseen_pairs = 0
        #: set when the last refill could not sample the stratum (degenerate
        #: configuration); repairs are then retried at query time only, so a
        #: mutation never surfaces a sampling error
        self.degraded = False

    def __len__(self) -> int:
        return len(self.left)

    def clear(self) -> None:
        self.left.clear()
        self.right.clear()
        self._id_counts.clear()
        self.unseen_pairs = 0
        self.degraded = False

    def set_all(self, left: np.ndarray, right: np.ndarray) -> None:
        """Replace the whole reservoir and reset staleness."""
        self.left = [int(u) for u in left]
        self.right = [int(v) for v in right]
        self._id_counts = Counter(self.left)
        self._id_counts.update(self.right)
        self.unseen_pairs = 0

    def overwrite_slot(self, slot: int, u: int, v: int) -> None:
        self._discount(self.left[slot])
        self._discount(self.right[slot])
        self.left[slot] = u
        self.right[slot] = v
        self._id_counts[u] += 1
        self._id_counts[v] += 1

    def append_pair(self, u: int, v: int) -> None:
        self.left.append(u)
        self.right.append(v)
        self._id_counts[u] += 1
        self._id_counts[v] += 1

    def _discount(self, vector_id: int) -> None:
        remaining = self._id_counts[vector_id] - 1
        if remaining:
            self._id_counts[vector_id] = remaining
        else:
            del self._id_counts[vector_id]

    def drop_vector(self, vector_id: int) -> int:
        """Evict every pair touching ``vector_id``; returns the eviction count."""
        if self._id_counts.get(vector_id, 0) == 0:
            return 0
        kept = [
            (u, v)
            for u, v in zip(self.left, self.right)
            if u != vector_id and v != vector_id
        ]
        dropped = len(self.left) - len(kept)
        self.left = [u for u, _ in kept]
        self.right = [v for _, v in kept]
        self._id_counts = Counter(self.left)
        self._id_counts.update(self.right)
        return dropped

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.left, dtype=np.int64),
            np.asarray(self.right, dtype=np.int64),
        )

    def state(self) -> Dict[str, object]:
        """A picklable snapshot: sampled pairs plus the staleness counters."""
        return {
            "target_size": self.target_size,
            "left": list(self.left),
            "right": list(self.right),
            "unseen_pairs": self.unseen_pairs,
            "degraded": self.degraded,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "_PairReservoir":
        reservoir = cls(int(state["target_size"]))
        reservoir.left = [int(u) for u in state["left"]]
        reservoir.right = [int(v) for v in state["right"]]
        if len(reservoir.left) != len(reservoir.right):
            raise ValidationError("reservoir state has mismatched pair arrays")
        reservoir._id_counts = Counter(reservoir.left)
        reservoir._id_counts.update(reservoir.right)
        reservoir.unseen_pairs = int(state["unseen_pairs"])
        reservoir.degraded = bool(state["degraded"])
        return reservoir


class StreamingEstimator(SimilarityJoinSizeEstimator):
    """LSH-SS served incrementally from a mutable index (see module docs).

    Parameters
    ----------
    index:
        The mutable index to estimate over.  The estimator registers
        itself as an observer, so plain ``index.insert`` / ``index.delete``
        calls keep the reservoirs repaired.
    sample_size_h / sample_size_l / answer_threshold / dampening:
        As in :class:`~repro.core.lsh_ss.LSHSSEstimator`; the sample-size
        and ``δ`` defaults track the *current* collection size ``n`` at
        query time.
    reservoir_size:
        Target number of pairs kept per stratum for the amortised path.
    staleness_budget:
        Maximum tolerated staleness fraction before a partial resample
        (see module docstring).  Must lie in ``(0, 1]`` — staleness is a
        fraction of the stratum, so a budget of 1 disables automatic
        repair entirely; larger values trade accuracy of the amortised
        path for fewer redraws.
    random_state:
        Generator for reservoir maintenance draws (estimates take their
        own ``random_state`` per call).

    ``details`` keys add ``n``, ``num_collision_pairs``,
    ``num_non_collision_pairs``, ``mode``, ``staleness_h``,
    ``staleness_l``, ``reservoir_h``, ``reservoir_l`` to the usual LSH-SS
    stratum diagnostics.
    """

    name = "LSH-SS(stream)"

    def __init__(
        self,
        index: MutableLSHIndex,
        *,
        sample_size_h: Optional[int] = None,
        sample_size_l: Optional[int] = None,
        answer_threshold: Optional[int] = None,
        dampening: Dampening = None,
        reservoir_size: int = 512,
        staleness_budget: float = 0.25,
        random_state: RandomState = None,
    ) -> None:
        for name, value in (
            ("sample_size_h (m_H)", sample_size_h),
            ("sample_size_l (m_L)", sample_size_l),
            ("answer_threshold (δ)", answer_threshold),
        ):
            if value is not None and value < 1:
                raise ValidationError(f"{name} must be >= 1, got {value}")
        if reservoir_size < 1:
            raise ValidationError(f"reservoir_size must be >= 1, got {reservoir_size}")
        if not 0.0 < staleness_budget <= 1.0:
            # staleness is a fraction of the stratum, capped at 1.0 — a
            # budget above 1 could never be exceeded, silently disabling
            # repair while claiming a bound
            raise ValidationError(
                f"staleness_budget must lie in (0, 1], got {staleness_budget}"
            )
        if dampening is not None and dampening != "auto":
            if not 0.0 < float(dampening) <= 1.0:
                raise ValidationError(f"dampening must be in (0, 1] or 'auto', got {dampening}")
        self.index = index
        self.sample_size_h = sample_size_h
        self.sample_size_l = sample_size_l
        self.answer_threshold = answer_threshold
        self.dampening: Dampening = dampening
        self.reservoir_size = int(reservoir_size)
        self.staleness_budget = float(staleness_budget)
        self._rng = ensure_rng(random_state)
        self._reservoir_h = _PairReservoir(self.reservoir_size)
        self._reservoir_l = _PairReservoir(self.reservoir_size)
        index.register_observer(self)
        self.refresh()

    def close(self) -> None:
        """Detach from the index: no further mutations repair this estimator."""
        self.index.unregister_observer(self)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """A picklable checkpoint of the sampled state.

        Captures both reservoirs (pairs, staleness counters, degraded
        flags) *and* the maintenance generator's exact stream position,
        so a restored estimator replays estimates — including later
        repairs triggered by further mutations — bit-identically to one
        that was never checkpointed.  The index itself is snapshotted
        separately (:meth:`MutableLSHIndex.to_state`, which embeds this
        state for its registered estimators).
        """
        return {
            "format": 1,
            "kind": "streaming-estimator",
            "sample_size_h": self.sample_size_h,
            "sample_size_l": self.sample_size_l,
            "answer_threshold": self.answer_threshold,
            "dampening": self.dampening,
            "reservoir_size": self.reservoir_size,
            "staleness_budget": self.staleness_budget,
            "rng": generator_state(self._rng),
            "reservoir_h": self._reservoir_h.state(),
            "reservoir_l": self._reservoir_l.state(),
        }

    @classmethod
    def from_state(
        cls, index: MutableLSHIndex, state: Mapping[str, object]
    ) -> "StreamingEstimator":
        """Reattach a checkpointed estimator to ``index`` without redrawing.

        The reservoirs are loaded verbatim — they are repaired sampled
        state the paper's maintenance scheme paid to keep uniform, not
        disposable scratch — and the generator resumes mid-stream, so
        restore is invisible to every later estimate.
        """
        if state.get("format") != 1 or state.get("kind") != "streaming-estimator":
            raise ValidationError("not a streaming-estimator snapshot")
        estimator = cls.__new__(cls)
        estimator.index = index
        estimator.sample_size_h = state["sample_size_h"]
        estimator.sample_size_l = state["sample_size_l"]
        estimator.answer_threshold = state["answer_threshold"]
        estimator.dampening = state["dampening"]
        estimator.reservoir_size = int(state["reservoir_size"])
        estimator.staleness_budget = float(state["staleness_budget"])
        estimator._rng = generator_from_state(dict(state["rng"]))
        estimator._reservoir_h = _PairReservoir.from_state(state["reservoir_h"])
        estimator._reservoir_l = _PairReservoir.from_state(state["reservoir_l"])
        index.register_observer(estimator)
        return estimator

    def account_for_migration(
        self,
        *,
        departed_ids: Iterable[int] = (),
        unseen_collision_pairs: int = 0,
        unseen_non_collision_pairs: int = 0,
    ) -> None:
        """Repair the reservoirs after a shard migration (rebalance layer).

        Vectors migrated *out* behave like deletes for this shard's
        strata: every reservoir pair touching them is evicted.  Pair mass
        migrated *in* behaves like inserts the reservoirs never had a
        chance to sample, so it is added to the staleness counters; a
        partial resample then triggers exactly when the budget demands.
        """
        for vector_id in departed_ids:
            self._reservoir_h.drop_vector(int(vector_id))
            self._reservoir_l.drop_vector(int(vector_id))
        self._reservoir_h.unseen_pairs += int(unseen_collision_pairs)
        self._reservoir_l.unseen_pairs += int(unseen_non_collision_pairs)
        self._repair_if_stale()

    def _reservoir(self, stratum: str) -> _PairReservoir:
        if stratum not in ("h", "l"):
            raise ValidationError(f"stratum must be 'h' or 'l', got {stratum!r}")
        return self._reservoir_h if stratum == "h" else self._reservoir_l

    def reservoir_pairs(self, stratum: str) -> Tuple[np.ndarray, np.ndarray]:
        """Current reservoir contents for stratum ``"h"`` / ``"l"``.

        The sharded merge layer (:mod:`repro.shard.merge`) pools these
        per-shard samples — weighted by the per-shard strata sizes — into
        one global estimate without touching any bucket at query time.
        """
        return self._reservoir(stratum).arrays()

    def reservoir_usable(self, stratum: str) -> bool:
        """Whether the stratum's reservoir holds pairs and is not degraded."""
        reservoir = self._reservoir(stratum)
        return len(reservoir) > 0 and not reservoir.degraded

    # ------------------------------------------------------------------
    # estimator interface
    # ------------------------------------------------------------------
    @property
    def total_pairs(self) -> int:
        return self.index.total_pairs

    @property
    def staleness_h(self) -> float:
        """Unreachable fraction of stratum H for the reservoir path."""
        return self._staleness(self._reservoir_h, self.index.num_collision_pairs)

    @property
    def staleness_l(self) -> float:
        """Unreachable fraction of stratum L for the reservoir path."""
        return self._staleness(self._reservoir_l, self.index.num_non_collision_pairs)

    # ------------------------------------------------------------------
    # observer hooks (called by MutableLSHIndex)
    # ------------------------------------------------------------------
    def on_insert(self, vector_id: int) -> None:
        """Account for the pairs the new vector added to each stratum."""
        n = self.index.size
        if n < 2:
            return
        new_h = self.index.primary_table.bucket_size_of(vector_id) - 1
        self._reservoir_h.unseen_pairs += new_h
        self._reservoir_l.unseen_pairs += (n - 1) - new_h
        self._repair_if_stale(during_mutation=True)

    def on_delete(self, vector_id: int) -> None:
        """Evict reservoir pairs touching the deleted vector."""
        self._reservoir_h.drop_vector(vector_id)
        self._reservoir_l.drop_vector(vector_id)
        self._repair_if_stale(during_mutation=True)

    # ------------------------------------------------------------------
    # reservoir maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Fully redraw both reservoirs from the current strata."""
        self._refill(self._reservoir_h, full=True)
        self._refill(self._reservoir_l, full=True)

    def repair(self) -> None:
        """Run the staleness-budgeted reservoir repair, if one is due.

        This is the same repair ``mode="auto"`` estimates trigger
        lazily.  Calling it at a quiescent point (e.g. after a batch of
        updates, before handing the estimator to concurrent readers)
        makes subsequent ``auto`` estimates read-only: the reservoirs
        are already within budget, so the estimate path neither mutates
        them nor consumes the maintenance rng.
        """
        self._repair_if_stale()

    @staticmethod
    def _staleness(reservoir: _PairReservoir, stratum_size: int) -> float:
        if stratum_size <= 0:
            return 0.0
        return min(1.0, reservoir.unseen_pairs / stratum_size)

    def _occupancy_deficit(self, reservoir: _PairReservoir) -> float:
        return 1.0 - len(reservoir) / reservoir.target_size

    def _repair_if_stale(self, *, during_mutation: bool = False) -> None:
        for reservoir, stratum_size in (
            (self._reservoir_h, self.index.num_collision_pairs),
            (self._reservoir_l, self.index.num_non_collision_pairs),
        ):
            if stratum_size <= 0:
                reservoir.clear()
                continue
            if during_mutation and reservoir.degraded:
                continue  # don't re-attempt a failing sampler on every update
            if (
                self._staleness(reservoir, stratum_size) > self.staleness_budget
                or self._occupancy_deficit(reservoir) > self.staleness_budget
            ):
                self._refill(reservoir)

    def _draw_pairs(self, reservoir: _PairReservoir, count: int) -> Tuple[np.ndarray, np.ndarray]:
        if reservoir is self._reservoir_h:
            return self.index.sample_collision_pairs(count, random_state=self._rng)
        return self.index.sample_non_collision_pairs(count, random_state=self._rng)

    def _refill(self, reservoir: _PairReservoir, *, full: bool = False) -> None:
        """Partially (or fully) resample a reservoir and reset its staleness.

        The partial variant redraws ``target − occupancy`` pairs to refill
        evicted slots plus a staleness-proportional share of the occupied
        slots, overwriting uniformly chosen old entries — so the redraw
        work is proportional to how much the stratum actually changed.
        """
        stratum_size = (
            self.index.num_collision_pairs
            if reservoir is self._reservoir_h
            else self.index.num_non_collision_pairs
        )
        if stratum_size <= 0:
            reservoir.clear()
            return
        target = reservoir.target_size
        if full:
            try:
                left, right = self._draw_pairs(reservoir, target)
            except InsufficientSampleError:
                reservoir.clear()
                reservoir.degraded = True
                return
            reservoir.set_all(left, right)
            reservoir.degraded = False
            return
        deficit = target - len(reservoir)
        staleness = self._staleness(reservoir, stratum_size)
        replace = min(len(reservoir), int(math.ceil(staleness * target)))
        draw_count = deficit + replace
        if draw_count == 0:
            reservoir.unseen_pairs = 0
            return
        try:
            left, right = self._draw_pairs(reservoir, draw_count)
        except InsufficientSampleError:
            reservoir.clear()
            reservoir.degraded = True
            return
        reservoir.degraded = False
        if replace:
            positions = self._rng.choice(len(reservoir), size=replace, replace=False)
            for slot, u, v in zip(positions, left[:replace], right[:replace]):
                reservoir.overwrite_slot(int(slot), int(u), int(v))
        for u, v in zip(left[replace:], right[replace:]):
            reservoir.append_pair(int(u), int(v))
        reservoir.unseen_pairs = 0

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        threshold: float,
        *,
        random_state: RandomState = None,
        mode: str = "auto",
    ) -> Estimate:
        """Estimate the join size at ``threshold`` (see module docs for modes).

        Validation of ``mode`` happens here; the threshold check and the
        ``[0, M]`` clamp live in the base class.
        """
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        return super().estimate(threshold, random_state=random_state, mode=mode)

    def _estimate(
        self, threshold: float, *, random_state: RandomState = None, mode: str = "auto"
    ) -> Estimate:
        return self._estimate_with_mode(threshold, mode, random_state=random_state)

    def _pair_source(
        self, reservoir: _PairReservoir, mode: str, is_h: bool, stratum_size: int
    ) -> Tuple[PairSource, str]:
        """Pair source for the kernels: reservoir draws or fresh index sampling.

        Explicit ``mode="reservoir"`` honours its bucket-free contract: an
        unusable reservoir over a non-empty stratum raises rather than
        silently sampling buckets; only ``mode="auto"`` falls back.
        """
        if mode == "reservoir" or (mode == "auto" and len(reservoir) > 0):
            left, right = reservoir.arrays()
            if left.size:

                def from_reservoir(
                    size: int, rng: np.random.Generator
                ) -> Tuple[np.ndarray, np.ndarray]:
                    positions = rng.integers(0, left.size, size=size)
                    return left[positions], right[positions]

                return from_reservoir, "reservoir"
            if mode == "reservoir" and stratum_size > 0:
                stratum = "H" if is_h else "L"
                raise InsufficientSampleError(
                    f"stratum-{stratum} reservoir is empty or degraded; call "
                    "refresh() or estimate with mode='exact'/'auto'"
                )
        if is_h:
            return (
                lambda size, rng: self.index.sample_collision_pairs(size, random_state=rng),
                "exact",
            )
        return (
            lambda size, rng: self.index.sample_non_collision_pairs(size, random_state=rng),
            "exact",
        )

    def _estimate_with_mode(
        self, threshold: float, mode: str, *, random_state: RandomState = None
    ) -> Estimate:
        if mode == "auto":
            self._repair_if_stale()
        rng = ensure_rng(random_state)
        n = self.index.size
        num_h = self.index.num_collision_pairs
        num_l = self.index.num_non_collision_pairs
        sample_size_h = (
            self.sample_size_h if self.sample_size_h is not None else default_sample_size(n)
        )
        sample_size_l = (
            self.sample_size_l if self.sample_size_l is not None else default_sample_size(n)
        )
        answer_threshold = (
            self.answer_threshold
            if self.answer_threshold is not None
            else default_answer_threshold(n)
        )
        source_h, used_h = self._pair_source(self._reservoir_h, mode, is_h=True, stratum_size=num_h)
        source_l, used_l = self._pair_source(self._reservoir_l, mode, is_h=False, stratum_size=num_l)
        stratum_h = sample_stratum_h(
            num_h,
            source_h,
            self.index.cosine_pairs,
            threshold,
            sample_size_h,
            rng,
        )
        stratum_l = sample_stratum_l(
            num_l,
            source_l,
            self.index.cosine_pairs,
            threshold,
            answer_threshold,
            sample_size_l,
            self.dampening,
            rng,
        )
        return Estimate(
            value=stratum_h.estimate + stratum_l.estimate,
            estimator=self.name,
            threshold=threshold,
            details={
                "stratum_h": stratum_h.estimate,
                "stratum_l": stratum_l.estimate,
                "true_in_sample_h": stratum_h.true_in_sample,
                "true_in_sample_l": stratum_l.true_in_sample,
                "samples_taken_l": stratum_l.samples_taken,
                "reached_answer_threshold": stratum_l.reached_answer_threshold,
                "dampening_used": stratum_l.dampening_used,
                "n": n,
                "num_collision_pairs": num_h,
                "num_non_collision_pairs": num_l,
                "mode": mode,
                "source_h": used_h,
                "source_l": used_l,
                "staleness_h": self.staleness_h,
                "staleness_l": self.staleness_l,
                "reservoir_h": len(self._reservoir_h),
                "reservoir_l": len(self._reservoir_l),
            },
        )


__all__ = ["StreamingEstimator"]
