"""Streaming estimation subsystem: mutable LSH index + incremental estimates.

The paper builds its estimators once over a static collection; this
subpackage keeps them serveable while the collection grows and shrinks:

* :mod:`~repro.streaming.mutable_index` — :class:`MutableLSHTable` /
  :class:`MutableLSHIndex`, the paper's bucket-count-extended index under
  O(1)-amortised ``insert`` / ``delete`` with exact ``N_H`` / ``N_L``
  bookkeeping.
* :mod:`~repro.streaming.estimator` — :class:`StreamingEstimator`,
  LSH-SS whose per-stratum sample reservoirs are repaired on mutation
  and partially resampled under a configurable staleness budget.
* :mod:`~repro.streaming.events` — :class:`ChangeLog` with
  :class:`Insert` / :class:`Delete` / :class:`Checkpoint` events, JSONL
  round-trip, and replay (the substrate of the ``repro stream`` CLI).

Replaying any event sequence yields exactly the strata sizes a fresh
batch build over the final collection would produce, because per-vector
signatures go through the same
:meth:`~repro.lsh.families.LSHFamily.hash_matrix` path as the batch
build.
"""

from repro.streaming.events import ChangeLog, Checkpoint, Delete, Event, Insert
from repro.streaming.estimator import StreamingEstimator
from repro.streaming.mutable_index import MutableLSHIndex, MutableLSHTable

__all__ = [
    "MutableLSHIndex",
    "MutableLSHTable",
    "StreamingEstimator",
    "ChangeLog",
    "Insert",
    "Delete",
    "Checkpoint",
    "Event",
]
