"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (LSH families, samplers,
estimators, synthetic data generators) accepts either

* ``None`` — use a fresh, OS-seeded generator,
* an ``int`` seed — deterministic and reproducible,
* an existing :class:`numpy.random.Generator` — shared stream.

:func:`ensure_rng` normalises those three spellings to a single
``numpy.random.Generator`` instance.  :func:`spawn` derives independent
child generators from a parent so that, e.g., the ``ℓ`` tables of an LSH
index use statistically independent hash functions while the whole index
remains reproducible from one seed.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]
"""Type alias accepted by every ``random_state`` / ``seed`` parameter."""


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an integer seed, or an
        existing generator (returned unchanged).

    Raises
    ------
    TypeError
        If ``random_state`` is none of the accepted types.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn(rng: np.random.Generator, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are seeded from the parent stream, so the overall
    computation stays reproducible while the children do not share state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` suitable for child components."""
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def generator_state(rng: np.random.Generator) -> Dict[str, Any]:
    """A picklable snapshot of a generator's exact position in its stream.

    Together with :func:`generator_from_state` this lets stateful
    components (e.g. the streaming estimator's reservoir maintenance)
    checkpoint and resume *bit-identically*: every draw after a restore
    equals the draw the original generator would have produced.
    """
    return dict(rng.bit_generator.state)


def generator_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator from :func:`generator_state` output.

    Takes a real ``dict`` (not ``Mapping``): numpy's
    ``bit_generator.state`` setter requires one.
    """
    from repro.errors import ValidationError

    name = state.get("bit_generator")
    bit_generator_class = getattr(np.random, str(name), None)
    if bit_generator_class is None:
        raise ValidationError(f"unknown bit generator {name!r} in generator state")
    bit_generator = bit_generator_class()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn",
    "derive_seed",
    "generator_state",
    "generator_from_state",
]
