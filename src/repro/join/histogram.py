"""One-pass similarity histogram over all pairs of a collection.

Several experiments (Table 1, Table 2, the join-size/selectivity table,
and every accuracy figure) need the exact join size at many thresholds
plus the per-stratum probabilities.  Recomputing block-wise products for
every threshold would repeat the dominant cost, so this module performs a
single pass that bins every positive pair similarity into a fine
histogram; afterwards ``J(τ)`` for any ``τ`` on the bin grid is a suffix
sum, and the total number of pairs below the first bin is recovered from
``M``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.vectors.collection import VectorCollection


class SimilarityHistogram:
    """Histogram of all pairwise cosine similarities of a collection.

    Parameters
    ----------
    collection:
        The vector collection (self-join semantics: unordered pairs,
        ``u ≠ v``).
    num_bins:
        Number of equal-width bins spanning ``(0, 1]``.  Thresholds used
        with :meth:`join_size` should be multiples of ``1 / num_bins`` to
        be exact; other thresholds are answered conservatively by the
        nearest bin edge above.
    block_size:
        Row-block size of the sparse product pass.
    """

    def __init__(
        self,
        collection: VectorCollection,
        *,
        num_bins: int = 1000,
        block_size: int = 512,
    ):
        if num_bins < 1:
            raise ValidationError(f"num_bins must be >= 1, got {num_bins}")
        if block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        self.collection = collection
        self.num_bins = int(num_bins)
        self.block_size = int(block_size)
        self._edges = np.linspace(0.0, 1.0, self.num_bins + 1)
        self._counts = self._build()

    def _build(self) -> np.ndarray:
        normalized = self.collection.normalized_matrix
        n = self.collection.size
        counts = np.zeros(self.num_bins, dtype=np.int64)
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            block = (normalized[start:stop] @ normalized.T).tocoo()
            global_rows = block.row + start
            mask_upper = block.col > global_rows
            if not np.any(mask_upper):
                continue
            data = np.clip(block.data[mask_upper], 0.0, 1.0)
            data = data[data > 0.0]
            if data.size == 0:
                continue
            # Left-closed bins [edges[b], edges[b+1}); the +1e-12 shift mirrors
            # the tolerance of the exact oracle so that a pair sitting a
            # round-off below a bin edge is counted as being on the edge.
            bins = np.floor((data + 1e-12) * self.num_bins).astype(np.int64)
            bins = np.clip(bins, 0, self.num_bins - 1)
            counts += np.bincount(bins, minlength=self.num_bins).astype(np.int64)
        return counts

    # ------------------------------------------------------------------
    @property
    def bin_edges(self) -> np.ndarray:
        """Bin edges, shape ``(num_bins + 1,)``."""
        return self._edges

    @property
    def bin_counts(self) -> np.ndarray:
        """Number of pairs whose similarity falls into each bin."""
        return self._counts

    @property
    def total_pairs(self) -> int:
        """``M`` — all unordered distinct pairs, including zero-similarity ones."""
        return self.collection.total_pairs

    @property
    def positive_pairs(self) -> int:
        """Number of pairs with strictly positive similarity."""
        return int(self._counts.sum())

    def join_size(self, threshold: float) -> int:
        """Number of pairs with similarity ``≥ threshold`` (``threshold > 0``).

        Exact when ``threshold`` coincides with a bin edge; otherwise the
        count of the containing bin is attributed entirely above the
        threshold, i.e. the answer is an upper bound that is off by at
        most one bin's worth of pairs.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
        scaled = threshold * self.num_bins
        nearest_edge = round(scaled)
        if abs(scaled - nearest_edge) < 1e-9:
            first_bin = int(nearest_edge)
        else:
            first_bin = int(np.floor(scaled))
        first_bin = min(max(first_bin, 0), self.num_bins - 1)
        return int(self._counts[first_bin:].sum())

    def join_sizes(self, thresholds: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`join_size` over a grid of thresholds."""
        return np.asarray([self.join_size(float(t)) for t in thresholds], dtype=np.int64)

    def selectivity(self, threshold: float) -> float:
        """``J(τ) / M`` — the join selectivity the paper tabulates in §6.2."""
        return self.join_size(threshold) / self.total_pairs

    def moment(self, order: int) -> float:
        """Approximate ``Σ_pairs s^order`` using bin mid-points.

        Used by tests of the Lattice-Counting adaptation: the prefix
        collision counts of an ideal LSH family concentrate around these
        moments.
        """
        if order < 0:
            raise ValidationError("order must be non-negative")
        midpoints = (self._edges[:-1] + self._edges[1:]) / 2.0
        return float(np.sum(self._counts * midpoints**order))


__all__ = ["SimilarityHistogram"]
