"""Exact similarity-join substrate (ground truth and join processing).

Size-estimation experiments need the true join size ``J(τ)`` for every
threshold of interest.  This subpackage provides:

* :mod:`~repro.join.exact` — exact cosine join sizes via block-wise
  sparse matrix products (self-joins and general joins).
* :mod:`~repro.join.histogram` — a one-pass similarity histogram from
  which ``J(τ)`` can be read off for an entire threshold grid.
* :mod:`~repro.join.allpairs` — a Bayardo-style All-Pairs join that
  returns the actual result pairs above a threshold (the join-processing
  algorithm whose optimisation motivates size estimation).
* :mod:`~repro.join.setjoin` — an exact Jaccard set-similarity join used
  by the SSJ-related tests.
"""

from repro.join.exact import exact_join_size, exact_join_sizes, exact_general_join_size
from repro.join.histogram import SimilarityHistogram
from repro.join.allpairs import all_pairs_join
from repro.join.setjoin import jaccard_set_join

__all__ = [
    "exact_join_size",
    "exact_join_sizes",
    "exact_general_join_size",
    "SimilarityHistogram",
    "all_pairs_join",
    "jaccard_set_join",
]
