"""A Bayardo-style All-Pairs cosine similarity join.

Similarity-join *processing* algorithms (Bayardo et al., WWW 2007;
Chaudhuri et al., ICDE 2006; Arasu et al., VLDB 2006) are the operators
whose cost a query optimiser must weigh against alternatives — which is
why the paper argues join-size estimation is needed in the first place.
This module implements the inverted-index / score-accumulation variant of
All-Pairs so that examples can run a real join whose output size the
estimators predicted.

The implementation favours clarity over the last factor of performance:
an inverted index over dimensions, candidate generation by partial dot
products, and exact verification.  It is exact (no false negatives or
positives) for cosine similarity over the normalised vectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.vectors.collection import VectorCollection


def all_pairs_join(
    collection: VectorCollection,
    threshold: float,
    *,
    max_pairs: Optional[int] = None,
) -> List[Tuple[int, int, float]]:
    """Return every pair ``(u, v, sim)`` with ``sim ≥ threshold`` and ``u < v``.

    Parameters
    ----------
    collection:
        The vectors to self-join.
    threshold:
        Cosine similarity threshold ``τ`` in ``(0, 1]``.
    max_pairs:
        Optional safety cap on the number of result pairs; exceeded caps
        raise ``ValidationError`` (size estimation exists precisely to
        warn the optimiser before this happens).

    Notes
    -----
    For each vector, a score accumulator over the inverted index collects
    the full dot product against every previously indexed vector that
    shares at least one dimension; pairs reaching the threshold are
    emitted.  Pairs sharing no dimension have zero similarity and are
    never considered, which is the filtering step that makes the join
    practical on sparse collections.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    normalized = collection.normalized_matrix
    n = collection.size

    results: List[Tuple[int, int, float]] = []
    # inverted index: dimension -> list of (vector id, weight)
    inverted: Dict[int, List[Tuple[int, float]]] = {}

    for vector_id in range(n):
        start, stop = normalized.indptr[vector_id], normalized.indptr[vector_id + 1]
        dimensions = normalized.indices[start:stop]
        weights = normalized.data[start:stop]
        if dimensions.size == 0:
            continue
        # accumulate partial dot products against previously indexed vectors
        scores: Dict[int, float] = {}
        for dimension, weight in zip(dimensions, weights):
            postings = inverted.get(int(dimension))
            if not postings:
                continue
            for other_id, other_weight in postings:
                scores[other_id] = scores.get(other_id, 0.0) + weight * other_weight
        for other_id, score in scores.items():
            similarity = min(float(score), 1.0)
            if similarity >= threshold - 1e-12:
                pair = (other_id, vector_id, similarity)
                results.append(pair)
                if max_pairs is not None and len(results) > max_pairs:
                    raise ValidationError(
                        f"all_pairs_join produced more than max_pairs={max_pairs} results"
                    )
        # index the current vector for subsequent candidates
        for dimension, weight in zip(dimensions, weights):
            inverted.setdefault(int(dimension), []).append((vector_id, float(weight)))

    results.sort(key=lambda item: (item[0], item[1]))
    return results


def all_pairs_join_size(collection: VectorCollection, threshold: float) -> int:
    """Number of result pairs of :func:`all_pairs_join` (exact ``J(τ)``)."""
    return len(all_pairs_join(collection, threshold))


__all__ = ["all_pairs_join", "all_pairs_join_size"]
