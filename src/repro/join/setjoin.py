"""Exact Jaccard set-similarity join (the SSJ substrate).

The SSJ problem (Definition 2) is the set-space special case of the VSJ
problem.  The Lattice-Counting baseline and the Min-Hashing tests need an
exact Jaccard join oracle; this module provides a prefix-filtered
inverted-index join over token sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.vectors.similarity import jaccard_similarity


def _prefix_length(set_size: int, threshold: float) -> int:
    """Prefix-filter length: a pair with Jaccard ≥ τ must share a token within
    the first ``⌊(1 − τ)·|s|⌋ + 1`` tokens of a canonically ordered set."""
    return int(set_size - max(0, int(set_size * threshold)) + 1)


def jaccard_set_join(
    sets: Sequence[Iterable[int]],
    threshold: float,
) -> List[Tuple[int, int, float]]:
    """Return all pairs of sets with Jaccard similarity ``≥ threshold``.

    Parameters
    ----------
    sets:
        Token-id sets (any iterable of hashable tokens per record).
    threshold:
        Jaccard threshold ``τ`` in ``(0, 1]``.

    Returns
    -------
    list of ``(i, j, similarity)`` with ``i < j``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    canonical: List[List[int]] = []
    for record in sets:
        tokens = sorted(set(record))
        canonical.append(tokens)

    inverted: Dict[int, List[int]] = {}
    results: List[Tuple[int, int, float]] = []
    for record_id, tokens in enumerate(canonical):
        candidates: Set[int] = set()
        prefix = tokens[: _prefix_length(len(tokens), threshold)] if tokens else []
        for token in prefix:
            candidates.update(inverted.get(token, []))
        for candidate_id in candidates:
            similarity = jaccard_similarity(canonical[candidate_id], tokens)
            if similarity >= threshold:
                results.append((candidate_id, record_id, similarity))
        for token in prefix:
            inverted.setdefault(token, []).append(record_id)
    results.sort(key=lambda item: (item[0], item[1]))
    return results


def jaccard_set_join_size(sets: Sequence[Iterable[int]], threshold: float) -> int:
    """Number of pairs returned by :func:`jaccard_set_join`."""
    return len(jaccard_set_join(sets, threshold))


def brute_force_jaccard_join(
    sets: Sequence[Iterable[int]], threshold: float
) -> List[Tuple[int, int, float]]:
    """Quadratic reference implementation used to validate the filtered join."""
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    materialised = [set(record) for record in sets]
    results: List[Tuple[int, int, float]] = []
    for i in range(len(materialised)):
        for j in range(i + 1, len(materialised)):
            similarity = jaccard_similarity(materialised[i], materialised[j])
            if similarity >= threshold:
                results.append((i, j, similarity))
    return results


__all__ = ["jaccard_set_join", "jaccard_set_join_size", "brute_force_jaccard_join"]
