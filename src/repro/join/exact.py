"""Exact cosine-similarity join sizes (the ground truth oracle).

The benchmark collections are small enough (thousands of vectors) that
the exact join size can be computed by block-wise sparse matrix products
of the row-normalised collection with itself.  Each block touches only
``block_size × n`` pair similarities and only the non-zero dot products
are materialised, so memory stays bounded even for low thresholds where
the join itself is enormous.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.vectors.collection import VectorCollection


def _validate_thresholds(thresholds: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(thresholds), dtype=np.float64)
    if array.size == 0:
        raise ValidationError("at least one threshold is required")
    if np.any(array <= 0.0) or np.any(array > 1.0):
        raise ValidationError("thresholds must lie in (0, 1]")
    return array


def exact_join_sizes(
    collection: VectorCollection,
    thresholds: Sequence[float],
    *,
    block_size: int = 512,
) -> np.ndarray:
    """Exact self-join sizes ``J(τ)`` for every ``τ`` in ``thresholds``.

    Only pairs ``(u, v)`` with ``u < v`` are counted, matching
    Definition 1 (unordered, distinct pairs).  Pairs with zero similarity
    never appear in the sparse product and therefore never satisfy a
    positive threshold, so they are correctly excluded.
    """
    thresholds_array = _validate_thresholds(thresholds)
    if block_size < 1:
        raise ValidationError(f"block_size must be >= 1, got {block_size}")
    normalized = collection.normalized_matrix
    n = collection.size
    counts = np.zeros(thresholds_array.size, dtype=np.int64)
    # Tolerance guards against counting flips caused by floating-point
    # round-off for pairs sitting exactly on a threshold.
    epsilon = 1e-12
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = normalized[start:stop] @ normalized.T
        block = block.tocoo()
        global_rows = block.row + start
        mask_upper = block.col > global_rows
        if not np.any(mask_upper):
            continue
        data = np.minimum(block.data[mask_upper], 1.0)
        for index, tau in enumerate(thresholds_array):
            counts[index] += int(np.count_nonzero(data >= tau - epsilon))
    return counts


def exact_join_size(
    collection: VectorCollection,
    threshold: float,
    *,
    block_size: int = 512,
) -> int:
    """Exact self-join size ``J(τ)`` for a single threshold."""
    return int(exact_join_sizes(collection, [threshold], block_size=block_size)[0])


def exact_general_join_size(
    left: VectorCollection,
    right: VectorCollection,
    threshold: float,
    *,
    block_size: int = 512,
) -> int:
    """Exact join size between two collections (Definition 5, §B.2.2)."""
    return int(
        exact_general_join_sizes(left, right, [threshold], block_size=block_size)[0]
    )


def exact_general_join_sizes(
    left: VectorCollection,
    right: VectorCollection,
    thresholds: Sequence[float],
    *,
    block_size: int = 512,
) -> np.ndarray:
    """Exact general-join sizes for a threshold grid.

    Every pair ``(u, v)`` with ``u ∈ left`` and ``v ∈ right`` is counted;
    there is no distinctness constraint because the collections are
    different relations.
    """
    if left.dimension != right.dimension:
        raise ValidationError("collections must share a dimension for a join")
    thresholds_array = _validate_thresholds(thresholds)
    if block_size < 1:
        raise ValidationError(f"block_size must be >= 1, got {block_size}")
    normalized_left = left.normalized_matrix
    normalized_right = right.normalized_matrix
    counts = np.zeros(thresholds_array.size, dtype=np.int64)
    epsilon = 1e-12
    for start in range(0, left.size, block_size):
        stop = min(start + block_size, left.size)
        block = normalized_left[start:stop] @ normalized_right.T
        data = np.minimum(block.tocoo().data, 1.0)
        for index, tau in enumerate(thresholds_array):
            counts[index] += int(np.count_nonzero(data >= tau - epsilon))
    return counts


def join_selectivity(
    collection: VectorCollection, threshold: float, *, block_size: int = 512
) -> float:
    """Join size divided by the number of candidate pairs ``M`` (the paper's
    "selectivity" row in §6.2)."""
    size = exact_join_size(collection, threshold, block_size=block_size)
    return size / collection.total_pairs


__all__ = [
    "exact_join_size",
    "exact_join_sizes",
    "exact_general_join_size",
    "exact_general_join_sizes",
    "join_selectivity",
]
