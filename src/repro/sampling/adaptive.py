"""Lipton-style adaptive sampling (the SampleL subroutine).

Adaptive sampling [Lipton, Naughton, Schneider 1990] terminates when the
*answer* accumulated from the sample reaches a threshold ``δ`` rather
than when a fixed number of samples has been drawn.  LSH-SS runs this
procedure in stratum L: if ``δ`` true pairs are found within the budget
``m_L`` the scaled-up estimate is reliable; otherwise the procedure falls
back to a safe lower bound (optionally dampened).

The implementation is generic over a *pair source* so that the same code
serves the single-table estimator, the virtual-bucket estimator and the
general (non-self) join estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.rng import RandomState, ensure_rng

PairBatchSource = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]
"""Callable returning ``(left, right)`` index arrays of a requested size."""

SimilarityEvaluator = Callable[[np.ndarray, np.ndarray], np.ndarray]
"""Callable mapping ``(left, right)`` index arrays to similarity values."""


@dataclass(frozen=True)
class AdaptiveSampleResult:
    """Outcome of one adaptive-sampling run.

    Attributes
    ----------
    true_count:
        Number of sampled pairs satisfying the threshold (``n_L``).
    samples_taken:
        Number of pairs examined (``i``).
    reached_answer_threshold:
        ``True`` when the run terminated because ``true_count ≥ δ``
        (the reliable case); ``False`` when the sample budget ran out.
    answer_threshold:
        The ``δ`` used.
    max_samples:
        The budget ``m_L`` used.
    """

    true_count: int
    samples_taken: int
    reached_answer_threshold: bool
    answer_threshold: int
    max_samples: int

    def estimate(self, population_size: int, *, dampening: float | None = None) -> float:
        """Turn the run into a join-size estimate for a ``population_size`` stratum.

        * Reliable case (``reached_answer_threshold``): scale up by
          ``population / samples_taken`` (Theorem 2.1/2.2 of adaptive
          sampling provide the error bounds).
        * Unreliable case: return the safe lower bound ``true_count``, or
          the dampened scale-up ``true_count · c_s · population / max_samples``
          when a dampening factor ``0 < c_s ≤ 1`` is supplied (§5.1.2).
        """
        if self.reached_answer_threshold:
            return self.true_count * (population_size / max(self.samples_taken, 1))
        if dampening is None:
            return float(self.true_count)
        if not 0.0 < dampening <= 1.0:
            raise ValidationError(f"dampening factor must be in (0, 1], got {dampening}")
        return self.true_count * dampening * (population_size / max(self.max_samples, 1))


def adaptive_sample(
    pair_source: PairBatchSource,
    similarity_evaluator: SimilarityEvaluator,
    threshold: float,
    *,
    answer_threshold: int,
    max_samples: int,
    batch_size: int | None = None,
    random_state: RandomState = None,
) -> AdaptiveSampleResult:
    """Run adaptive sampling until ``δ`` true pairs are seen or the budget is spent.

    Parameters
    ----------
    pair_source:
        Callable ``(batch_size, rng) -> (left, right)`` producing uniform
        pairs from the target stratum.
    similarity_evaluator:
        Callable mapping index arrays to similarity values.
    threshold:
        The similarity threshold ``τ``.
    answer_threshold:
        ``δ`` — stop as soon as this many true pairs have been found.
    max_samples:
        ``m_L`` — the maximum number of pairs to examine.
    batch_size:
        Internal batching granularity; the semantics match drawing pairs
        one at a time because the exact sample index at which the
        ``δ``-th true pair appeared is recovered within the batch.
    random_state:
        Seed or generator.
    """
    if answer_threshold < 1:
        raise ValidationError(f"answer_threshold (δ) must be >= 1, got {answer_threshold}")
    if max_samples < 1:
        raise ValidationError(f"max_samples (m_L) must be >= 1, got {max_samples}")
    rng = ensure_rng(random_state)
    if batch_size is None:
        batch_size = int(min(max_samples, max(256, 8 * answer_threshold)))
    samples_taken = 0
    true_count = 0
    while samples_taken < max_samples and true_count < answer_threshold:
        request = int(min(batch_size, max_samples - samples_taken))
        left, right = pair_source(request, rng)
        similarities = similarity_evaluator(left, right)
        is_true = np.asarray(similarities) >= threshold
        cumulative = np.cumsum(is_true.astype(np.int64)) + true_count
        hit = np.flatnonzero(cumulative >= answer_threshold)
        if hit.size > 0:
            # The δ-th true pair appeared at position hit[0] within this
            # batch; only the samples up to and including it count toward i.
            samples_taken += int(hit[0]) + 1
            true_count = int(cumulative[hit[0]])
            return AdaptiveSampleResult(
                true_count=true_count,
                samples_taken=samples_taken,
                reached_answer_threshold=True,
                answer_threshold=answer_threshold,
                max_samples=max_samples,
            )
        samples_taken += int(is_true.size)
        true_count = int(cumulative[-1]) if is_true.size else true_count
    return AdaptiveSampleResult(
        true_count=true_count,
        samples_taken=samples_taken,
        reached_answer_threshold=true_count >= answer_threshold,
        answer_threshold=answer_threshold,
        max_samples=max_samples,
    )


__all__ = ["AdaptiveSampleResult", "adaptive_sample", "PairBatchSource", "SimilarityEvaluator"]
