"""Bifocal sampling for equi-join size estimation (Ganguly et al., SIGMOD 1996).

The paper's related-work section discusses bifocal sampling as the
classic answer to skew in *equi-join* size estimation: join values are
split into *dense* (high-frequency) and *sparse* (low-frequency) classes
and each of the three class combinations (dense–dense, dense–sparse /
sparse–dense, sparse–sparse) is estimated with a procedure suited to it.
The paper argues (§2, §3.1) that the guarantees of this family of
techniques do not carry over to similarity joins at high thresholds —
the join size can be far below the ``Ω(n log n)`` the analysis assumes.

We implement the equi-join algorithm faithfully as a substrate baseline:
it lets the test-suite and benchmarks demonstrate exactly that argument
by comparing its behaviour on equi-joins (where it works) with the VSJ
setting (where naive adaptation fails).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.rng import RandomState, ensure_rng


def exact_equi_join_size(left_keys: Sequence[int], right_keys: Sequence[int]) -> int:
    """Exact equi-join size ``Σ_v n_left(v) · n_right(v)`` (ground truth)."""
    left_counts = Counter(left_keys)
    right_counts = Counter(right_keys)
    return int(sum(count * right_counts.get(value, 0) for value, count in left_counts.items()))


def bifocal_join_size_estimate(
    left_keys: Sequence[int],
    right_keys: Sequence[int],
    *,
    sample_size: int | None = None,
    dense_threshold: float | None = None,
    random_state: RandomState = None,
) -> Tuple[float, dict]:
    """Estimate ``|L ⋈ R|`` on the join keys using bifocal sampling.

    Parameters
    ----------
    left_keys, right_keys:
        The join-column values of the two relations.
    sample_size:
        Number of tuples sampled from each relation; defaults to
        ``⌈√(n log n)⌉`` as in the original analysis.
    dense_threshold:
        Frequency (within the sample) above which a value is classified as
        dense; defaults to ``sample_size / √n``.
    random_state:
        Seed or generator.

    Returns
    -------
    (estimate, details):
        The join-size estimate plus a breakdown of the dense/sparse
        sub-estimates, useful for the tests and documentation.
    """
    left = np.asarray(list(left_keys))
    right = np.asarray(list(right_keys))
    if left.size == 0 or right.size == 0:
        raise ValidationError("both relations must be non-empty")
    rng = ensure_rng(random_state)
    n_left, n_right = left.size, right.size
    if sample_size is None:
        sample_size = int(np.ceil(np.sqrt(n_left * max(np.log2(max(n_left, 2)), 1.0))))
    sample_size = int(min(sample_size, n_left, n_right))
    if sample_size < 1:
        raise ValidationError("sample_size must be at least 1")

    left_sample = left[rng.choice(n_left, size=sample_size, replace=False)]
    right_sample = right[rng.choice(n_right, size=sample_size, replace=False)]
    left_sample_counts = Counter(left_sample.tolist())
    right_sample_counts = Counter(right_sample.tolist())

    if dense_threshold is None:
        dense_threshold = sample_size / np.sqrt(max(n_left, n_right))
    dense_threshold = max(float(dense_threshold), 1.0)

    dense_left = {value for value, count in left_sample_counts.items() if count > dense_threshold}
    dense_right = {value for value, count in right_sample_counts.items() if count > dense_threshold}

    scale_left = n_left / sample_size
    scale_right = n_right / sample_size

    # dense–dense: both frequencies are estimated from the samples and multiplied.
    dense_dense = 0.0
    for value in dense_left & dense_right:
        estimated_left = left_sample_counts[value] * scale_left
        estimated_right = right_sample_counts[value] * scale_right
        dense_dense += estimated_left * estimated_right

    # dense–sparse: the dense side's frequency is estimated from its sample,
    # the sparse side is counted exactly for the sampled tuples and scaled.
    right_full_counts = Counter(right.tolist())
    left_full_counts = Counter(left.tolist())
    dense_sparse = 0.0
    for value in dense_left - dense_right:
        dense_sparse += left_sample_counts[value] * scale_left * right_full_counts.get(value, 0)
    sparse_dense = 0.0
    for value in dense_right - dense_left:
        sparse_dense += right_sample_counts[value] * scale_right * left_full_counts.get(value, 0)

    # sparse–sparse: estimated by sampling tuples from L and probing R exactly.
    sparse_sample_hits = 0.0
    for value in left_sample.tolist():
        if value in dense_left or value in dense_right:
            continue
        sparse_sample_hits += right_full_counts.get(value, 0)
    sparse_sparse = sparse_sample_hits * scale_left

    estimate = dense_dense + dense_sparse + sparse_dense + sparse_sparse
    details = {
        "sample_size": sample_size,
        "dense_threshold": dense_threshold,
        "dense_dense": dense_dense,
        "dense_sparse": dense_sparse,
        "sparse_dense": sparse_dense,
        "sparse_sparse": sparse_sparse,
    }
    return float(estimate), details


__all__ = ["bifocal_join_size_estimate", "exact_equi_join_size"]
