"""Uniform pair sampling and cross sampling over vector collections.

Both samplers return ``(left, right)`` index arrays; similarity
evaluation is left to the caller (usually via
:func:`repro.vectors.similarity.cosine_pairs`) so that the same sampler
can serve cosine, Jaccard, or any other measure.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

import numpy as np

from repro.errors import InsufficientSampleError, ValidationError
from repro.rng import RandomState, ensure_rng
from repro.vectors.collection import VectorCollection


class UniformPairSampler:
    """Sample pairs uniformly at random, with replacement — RS(pop).

    For a self-join over a collection of size ``n`` the population is all
    ``M = C(n, 2)`` unordered distinct pairs.  For a general join between
    two collections the population is the cross product.
    """

    def __init__(
        self,
        collection: VectorCollection,
        *,
        other: Optional[VectorCollection] = None,
    ):
        self.collection = collection
        self.other = other

    @property
    def population_size(self) -> int:
        """Number of candidate pairs ``M``."""
        if self.other is None:
            return self.collection.total_pairs
        return self.collection.size * self.other.size

    def sample(
        self, sample_size: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``sample_size`` pairs; returns ``(left, right)`` index arrays."""
        if sample_size < 0:
            raise ValidationError(f"sample_size must be >= 0, got {sample_size}")
        rng = ensure_rng(random_state)
        if sample_size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if self.other is None:
            n = self.collection.size
            if n < 2:
                raise InsufficientSampleError("need at least 2 vectors for a self-join pair")
            left = rng.integers(0, n, size=sample_size)
            right = rng.integers(0, n - 1, size=sample_size)
            right = right + (right >= left)
        else:
            left = rng.integers(0, self.collection.size, size=sample_size)
            right = rng.integers(0, self.other.size, size=sample_size)
        return left.astype(np.int64), right.astype(np.int64)


class CrossPairSampler:
    """Cross sampling — RS(cross), after Haas et al. [10].

    Instead of sampling pairs directly, cross sampling draws ``r`` vectors
    and evaluates *all* ``C(r, 2)`` pairs among them (or ``r_u × r_v``
    pairs for a general join).  Given a pair budget ``m``, the paper uses
    ``r = ⌈√m⌉``.
    """

    def __init__(
        self,
        collection: VectorCollection,
        *,
        other: Optional[VectorCollection] = None,
    ):
        self.collection = collection
        self.other = other

    @property
    def population_size(self) -> int:
        """Number of candidate pairs ``M`` in the full join."""
        if self.other is None:
            return self.collection.total_pairs
        return self.collection.size * self.other.size

    def sample_vectors(
        self, num_vectors: int, population: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``num_vectors`` distinct vector ids from ``population``."""
        if num_vectors > population:
            num_vectors = population
        if num_vectors < 1:
            raise InsufficientSampleError("cross sampling needs at least one vector")
        return rng.choice(population, size=num_vectors, replace=False).astype(np.int64)

    def sample(
        self, pair_budget: int, *, random_state: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Sample pairs with a total budget of roughly ``pair_budget`` pairs.

        Returns
        -------
        (left, right, pairs_considered):
            Index arrays for every pair formed from the vector sample and
            the number of pairs actually formed (the scaling denominator).
        """
        if pair_budget < 1:
            raise ValidationError(f"pair_budget must be >= 1, got {pair_budget}")
        rng = ensure_rng(random_state)
        num_vectors = int(np.ceil(np.sqrt(pair_budget)))
        if self.other is None:
            sampled = self.sample_vectors(max(num_vectors, 2), self.collection.size, rng)
            pairs = np.array(list(combinations(sampled.tolist(), 2)), dtype=np.int64)
            if pairs.size == 0:
                raise InsufficientSampleError("cross sample produced no pairs")
            left, right = pairs[:, 0], pairs[:, 1]
            return left, right, left.size
        left_vectors = self.sample_vectors(num_vectors, self.collection.size, rng)
        right_vectors = self.sample_vectors(num_vectors, self.other.size, rng)
        left = np.repeat(left_vectors, right_vectors.size)
        right = np.tile(right_vectors, left_vectors.size)
        return left.astype(np.int64), right.astype(np.int64), left.size


def scale_up(true_in_sample: int, sample_size: int, population_size: int) -> float:
    """Horvitz–Thompson style scale-up ``count · population / sample``."""
    if sample_size <= 0:
        raise ValidationError("sample_size must be positive to scale up an estimate")
    return float(true_in_sample) * float(population_size) / float(sample_size)


__all__ = ["UniformPairSampler", "CrossPairSampler", "scale_up"]
