"""Sampling substrate: pair samplers, adaptive sampling, bifocal sampling.

The estimators in :mod:`repro.core` are thin policies on top of these
reusable sampling primitives:

* :mod:`~repro.sampling.pairs` — uniform pair sampling with replacement
  (RS(pop)) and cross sampling (RS(cross), Haas et al.).
* :mod:`~repro.sampling.adaptive` — Lipton-style adaptive sampling, the
  subroutine LSH-SS runs in stratum L.
* :mod:`~repro.sampling.bifocal` — bifocal sampling for equi-join size
  estimation (Ganguly et al.), the related-work baseline the paper argues
  cannot handle high similarity thresholds.
"""

from repro.sampling.pairs import CrossPairSampler, UniformPairSampler
from repro.sampling.adaptive import AdaptiveSampleResult, adaptive_sample
from repro.sampling.bifocal import bifocal_join_size_estimate

__all__ = [
    "UniformPairSampler",
    "CrossPairSampler",
    "AdaptiveSampleResult",
    "adaptive_sample",
    "bifocal_join_size_estimate",
]
