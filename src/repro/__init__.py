"""repro — Similarity Join Size Estimation using Locality Sensitive Hashing.

A from-scratch reproduction of Lee, Ng & Shim (PVLDB 4(6), 2011).  The
library estimates the size of a vector similarity self-join or general
join — ``|{(u, v): cos(u, v) ≥ τ}|`` — using an LSH index extended with
bucket counts, without executing the join.

Quickstart
----------
>>> from repro import make_dblp_like, LSHIndex, LSHSSEstimator, exact_join_size
>>> corpus = make_dblp_like(num_vectors=1000, random_state=0)
>>> index = LSHIndex(corpus.collection, num_hashes=20, random_state=0)
>>> estimator = LSHSSEstimator(index.primary_table)
>>> estimate = estimator.estimate(0.8, random_state=0)
>>> true_size = exact_join_size(corpus.collection, 0.8)

Every deployment shape (static, streaming, sharded, rebalanced) is also
reachable through one front door — see :mod:`repro.engine`:

>>> from repro import JoinEstimationEngine, EngineConfig
>>> engine = JoinEstimationEngine(EngineConfig(backend="static", num_hashes=20, seed=0)).open()
>>> _ = engine.ingest(corpus.collection)
>>> result = engine.estimate(0.8)
>>> engine.close()

See ``README.md`` for the architecture overview ("Module map" for the
system inventory, "Engine" for the front-door API, "Tests and
benchmarks" for the per-figure reproduction experiments).
"""

from repro.errors import (
    EstimationError,
    IndexNotBuiltError,
    InsufficientSampleError,
    ReproError,
    ValidationError,
)
from repro.rng import ensure_rng
from repro.vectors import (
    TfidfVectorizer,
    Tokenizer,
    VectorCollection,
    Vocabulary,
    cosine_pairs,
    cosine_similarity,
    cosine_similarity_matrix,
    jaccard_similarity,
)
from repro.lsh import (
    LSHIndex,
    LSHTable,
    MinHashFamily,
    PStableL2Family,
    SignRandomProjectionFamily,
)
from repro.join import (
    SimilarityHistogram,
    all_pairs_join,
    exact_general_join_size,
    exact_join_size,
    exact_join_sizes,
    jaccard_set_join,
)
from repro.datasets import (
    SyntheticCorpus,
    SyntheticCorpusConfig,
    generate_corpus,
    make_dblp_like,
    make_nyt_like,
    make_pubmed_like,
)
from repro.core import (
    CrossSampling,
    Estimate,
    GeneralLSHSSEstimator,
    GeneralRandomPairSampling,
    LSHSEstimator,
    LSHSSEstimator,
    LatticeCountingEstimator,
    MedianEstimator,
    PairedLSHTable,
    RandomPairSampling,
    SimilarityJoinSizeEstimator,
    UniformityEstimator,
    VirtualBucketEstimator,
    optimal_num_hashes,
)
from repro.evaluation import (
    ExperimentRunner,
    SweepRecord,
    alpha_beta_table,
    empirical_stratum_probabilities,
    summarize_trials,
)
from repro.shard import (
    KeyPartitioner,
    RebalancePlan,
    RendezvousPartitioner,
    ShardedMutableIndex,
    ShardedStreamingEstimator,
    ShardRouter,
    merge_strata,
    rebalance_cluster,
)
from repro.streaming import (
    ChangeLog,
    Checkpoint,
    Delete,
    Insert,
    MutableLSHIndex,
    MutableLSHTable,
    StreamingEstimator,
)
from repro.engine import (
    EngineConfig,
    EstimateRequest,
    EstimateResult,
    EstimatorBackend,
    JoinEstimationEngine,
    Provenance,
    available_backends,
    register_backend,
)
from repro.cluster import ClusterCoordinator, ProcessBackend
from repro.serve import (
    EstimationServer,
    GenerationManager,
    ServeClient,
    connect_with_retry,
)
from repro.errors import ServeError, ServerBusyError, StrandedWritesError
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    Tracer,
    enable_json_logging,
    format_metric_name,
    get_global_registry,
    get_tracer,
    histogram_quantile,
    obs_enabled,
    set_enabled,
    trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors / rng
    "ReproError",
    "ValidationError",
    "EstimationError",
    "InsufficientSampleError",
    "IndexNotBuiltError",
    "ensure_rng",
    # vectors
    "VectorCollection",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "cosine_pairs",
    "jaccard_similarity",
    "Tokenizer",
    "Vocabulary",
    "TfidfVectorizer",
    # lsh
    "SignRandomProjectionFamily",
    "MinHashFamily",
    "PStableL2Family",
    "LSHTable",
    "LSHIndex",
    # join
    "exact_join_size",
    "exact_join_sizes",
    "exact_general_join_size",
    "SimilarityHistogram",
    "all_pairs_join",
    "jaccard_set_join",
    # datasets
    "SyntheticCorpus",
    "SyntheticCorpusConfig",
    "generate_corpus",
    "make_dblp_like",
    "make_nyt_like",
    "make_pubmed_like",
    # estimators
    "Estimate",
    "SimilarityJoinSizeEstimator",
    "RandomPairSampling",
    "CrossSampling",
    "UniformityEstimator",
    "LSHSEstimator",
    "LSHSSEstimator",
    "LatticeCountingEstimator",
    "MedianEstimator",
    "VirtualBucketEstimator",
    "PairedLSHTable",
    "GeneralLSHSSEstimator",
    "GeneralRandomPairSampling",
    "optimal_num_hashes",
    # evaluation
    "ExperimentRunner",
    "SweepRecord",
    "empirical_stratum_probabilities",
    "alpha_beta_table",
    "summarize_trials",
    # streaming
    "MutableLSHIndex",
    "MutableLSHTable",
    "StreamingEstimator",
    "ChangeLog",
    "Insert",
    "Delete",
    "Checkpoint",
    # sharding
    "KeyPartitioner",
    "RendezvousPartitioner",
    "ShardedMutableIndex",
    "ShardRouter",
    "ShardedStreamingEstimator",
    "merge_strata",
    # rebalancing
    "RebalancePlan",
    "rebalance_cluster",
    # engine
    "JoinEstimationEngine",
    "EngineConfig",
    "EstimateRequest",
    "EstimateResult",
    "Provenance",
    "EstimatorBackend",
    "register_backend",
    "available_backends",
    # multi-process cluster
    "ClusterCoordinator",
    "ProcessBackend",
    # serving
    "EstimationServer",
    "GenerationManager",
    "ServeClient",
    "connect_with_retry",
    "ServeError",
    "ServerBusyError",
    "StrandedWritesError",
    # observability
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "enable_json_logging",
    "format_metric_name",
    "get_global_registry",
    "get_tracer",
    "histogram_quantile",
    "obs_enabled",
    "set_enabled",
    "trace",
]
