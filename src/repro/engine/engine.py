"""The engine front door: one lifecycle over every deployment shape.

:class:`JoinEstimationEngine` is the seam callers program against.  A
declarative :class:`~repro.engine.config.EngineConfig` picks the backend
(static batch index, single-node streaming, or a sharded cluster — or
any kind registered later); the lifecycle is always the same::

    engine = JoinEstimationEngine(config).open()
    engine.ingest(collection_or_events)
    result = engine.estimate(EstimateRequest(threshold=0.8))
    engine.snapshot("cluster.pkl")
    engine.close()

Estimates come back as :class:`EstimateResult` envelopes that carry the
raw :class:`~repro.core.base.Estimate` payload plus :class:`Provenance`
(backend kind, strata sizes, shard layout, staleness, wall time, the
resolved per-call seed) — enough to audit *which* deployment served a
number and reproduce it bit-for-bit.

Determinism contract: for equal configs and ingest, an engine estimate
equals the estimate of the hand-built underlying stack (index seeded
``config.seed + 1``, maintenance generator ``config.seed + 2``) called
with the same per-request seed.  The facade adds provenance, never
arithmetic — gated at ≤ 5 % overhead in ``benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.engine.backends import EstimatorBackend, metrics_scope, resolve_backend
from repro.engine.config import EngineConfig
from repro.errors import IndexNotBuiltError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace
from repro.shard.rebalance import RebalancePlan
from repro.streaming.events import ChangeLog, Checkpoint, Delete, Insert
from repro.vectors import VectorCollection

_EVENT_TYPES = (Insert, Delete, Checkpoint)


@dataclass(frozen=True)
class EstimateRequest:
    """One estimation call, as data (dict/JSON round-trippable).

    Parameters
    ----------
    threshold:
        Similarity threshold ``τ`` in ``(0, 1]``.
    mode:
        Backend-specific serving path (``"auto"`` everywhere; also
        ``"exact"``, ``"reservoir"`` for streaming, ``"merged"`` for
        sharded).  Backends reject modes they do not serve.
    seed:
        Per-call rng seed; ``None`` falls back to the engine config's
        root seed.
    estimator:
        Estimator flavor for multi-estimator backends (the static
        backend serves ``lsh-ss`` / ``lsh-s`` / ``ju`` / ``lc`` / ``rs``
        …); single-estimator backends reject non-``None`` values.
    """

    threshold: float
    mode: str = "auto"
    seed: Optional[int] = None
    estimator: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "mode": self.mode,
            "seed": self.seed,
            "estimator": self.estimator,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EstimateRequest":
        unknown = sorted(set(payload) - {"threshold", "mode", "seed", "estimator"})
        if unknown:
            raise ValidationError(f"unknown request field(s) {unknown}")
        if "threshold" not in payload:
            raise ValidationError("an estimate request needs a 'threshold'")
        return cls(**dict(payload))


@dataclass(frozen=True)
class Provenance:
    """Where an estimate came from and what the backend looked like.

    ``backend``/``backend_details`` identify the deployment shape (the
    details dict carries backend-specific facts: strata sizes always;
    shard count/sizes/partitioner and pending writes for clusters;
    reservoir staleness for mutable backends).  ``seed`` is the resolved
    per-call seed — replaying the same request against the same state
    with this seed reproduces the value bit-for-bit.
    """

    backend: str
    seed: int
    mode: str
    wall_time_seconds: float
    backend_details: Dict[str, Any] = field(default_factory=dict)
    #: the serving engine's :meth:`MetricsSnapshot.to_dict` at reply
    #: time — counters/latencies accumulated up to and including this
    #: estimate (empty when the serving path carries no engine)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "mode": self.mode,
            "wall_time_seconds": self.wall_time_seconds,
            "backend_details": dict(self.backend_details),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Provenance":
        return cls(
            backend=payload["backend"],
            seed=payload["seed"],
            mode=payload["mode"],
            wall_time_seconds=payload["wall_time_seconds"],
            backend_details=dict(payload.get("backend_details", {})),
            metrics=dict(payload.get("metrics", {})),
        )


@dataclass(frozen=True)
class EstimateResult:
    """An :class:`~repro.core.base.Estimate` plus its :class:`Provenance`."""

    value: float
    estimator: str
    threshold: float
    details: Dict[str, Any]
    provenance: Provenance

    def __float__(self) -> float:
        return float(self.value)

    def relative_error(self, true_size: float) -> float:
        """Signed relative error against a known true join size."""
        from repro.core.base import Estimate

        return Estimate(self.value, self.estimator, self.threshold).relative_error(true_size)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "estimator": self.estimator,
            "threshold": self.threshold,
            "details": dict(self.details),
            "provenance": self.provenance.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EstimateResult":
        """Rebuild a result from :meth:`to_dict` output (the serve wire)."""
        return cls(
            value=payload["value"],
            estimator=payload["estimator"],
            threshold=payload["threshold"],
            details=dict(payload.get("details", {})),
            provenance=Provenance.from_dict(payload["provenance"]),
        )


class JoinEstimationEngine:
    """One front-door API over static, streaming, and sharded backends.

    Construct from an :class:`EngineConfig` (or a plain dict / JSON file
    path), then drive the lifecycle: :meth:`open`, :meth:`ingest`,
    :meth:`estimate`, :meth:`snapshot` / :meth:`restore`,
    :meth:`rebalance` (sharded only), :meth:`close`.  Usable as a
    context manager (``with JoinEstimationEngine(cfg) as engine: …``).
    """

    def __init__(
        self,
        config: Union[EngineConfig, Mapping[str, Any], str, Path],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = EngineConfig.coerce(config)
        #: this engine's metrics registry — fresh per engine by default,
        #: so two engines in one process never mix their counters; pass
        #: a shared registry (e.g. the process-global one) to pool them.
        #: Backend construction runs inside a metrics_scope, so every
        #: layer underneath records here too.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._backend: Optional[EstimatorBackend] = None
        self._closed = False
        # handles cached up front: the per-call hot path never touches
        # the registry lock
        self._estimate_seconds = self.metrics.histogram("engine_estimate_seconds")
        self._estimates_total = self.metrics.counter("engine_estimates_total")
        self._ingest_seconds = self.metrics.histogram("engine_ingest_seconds")
        self._ingested_total = self.metrics.counter("engine_ingested_events_total")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._backend is not None and not self._closed

    @property
    def backend(self) -> EstimatorBackend:
        """The live backend (advanced callers; raises unless open)."""
        if not self.is_open:
            raise IndexNotBuiltError(
                "engine is not open; call open() (or restore()) first"
            )
        return self._backend

    def open(self) -> "JoinEstimationEngine":
        """Build the configured backend; returns ``self`` for chaining."""
        if self._backend is not None and not self._closed:
            raise ValidationError("engine is already open")
        with trace("engine.open", backend=self.config.backend):
            with metrics_scope(self.metrics):
                backend = resolve_backend(self.config.backend)(self.config)
                backend.open()
        self._backend = backend
        self._closed = False
        return self

    def close(self) -> None:
        """Release backend resources; idempotent.

        The engine counts as closed even when the backend's ``close``
        raises (the error still propagates to the caller *once*): a
        second :meth:`close` is a no-op instead of re-raising, so
        cleanup paths that close defensively cannot mask the original
        failure with a repeat of it.
        """
        if self._backend is not None and not self._closed:
            try:
                with trace("engine.close", backend=self.config.backend):
                    self._backend.close()
            finally:
                self._closed = True

    def __enter__(self) -> "JoinEstimationEngine":
        if not self.is_open:
            self.open()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            self.close()
        except Exception as close_error:  # reprolint: disable=R007 - chained into the already-propagating exception below, never swallowed
            if exc_type is None:
                raise
            # an exception is already leaving the with-body: keep it
            # primary and chain the close-time failure into its context
            # instead of letting the close error mask the root cause
            close_error.__context__ = exc.__context__
            exc.__context__ = close_error

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        source: Union[VectorCollection, ChangeLog, Iterable[object], Insert, Delete, Checkpoint],
    ) -> int:
        """Feed vectors or change events into the backend.

        Accepts a :class:`VectorCollection` (bulk load), a single event,
        a :class:`ChangeLog`, or any iterable of events.  Returns the
        number of mutations applied (checkpoints count zero).
        """
        backend = self.backend
        started = time.perf_counter()
        with trace("engine.ingest", backend=backend.kind):
            if isinstance(source, VectorCollection):
                applied = backend.ingest_collection(source)
            elif isinstance(source, _EVENT_TYPES):
                applied = backend.apply_event(source)
            elif isinstance(source, (ChangeLog, Iterable)):
                applied = 0
                for event in source:
                    applied += backend.apply_event(event)
            else:
                raise ValidationError(
                    f"cannot ingest {type(source).__name__}; expected a "
                    "VectorCollection, a change event, or an iterable of events"
                )
        self._ingest_seconds.observe(time.perf_counter() - started)
        self._ingested_total.inc(applied)
        return applied

    def flush(self) -> None:
        """Make buffered writes visible (no-op for unbuffered backends)."""
        self.backend.flush()

    def quiesce(self) -> None:
        """Run deferred backend maintenance so estimates are read-only.

        The serving layer calls this after :meth:`flush` at epoch-commit
        time, before publishing the engine to concurrent readers; see
        :meth:`EstimatorBackend.quiesce`.
        """
        self.backend.quiesce()

    def drain_pending(self) -> list:
        """Recover buffered-but-unapplied write payloads; see backend docs.

        Used by shutdown paths that must not lose writes behind a failed
        commit: drain first, close quietly, surface the rows in a
        :class:`~repro.errors.StrandedWritesError`.
        """
        return self.backend.drain_pending()

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        request: Union[EstimateRequest, Mapping[str, Any], float, None] = None,
        *,
        threshold: Optional[float] = None,
        mode: Optional[str] = None,
        seed: Optional[int] = None,
        estimator: Optional[str] = None,
    ) -> EstimateResult:
        """Serve one estimate (request object, dict, or bare threshold).

        ``engine.estimate(0.8)``, ``engine.estimate(threshold=0.8,
        mode="exact")`` and ``engine.estimate(EstimateRequest(0.8,
        mode="exact"))`` are equivalent spellings; keyword arguments
        given *alongside* a request object/dict override its fields.
        """
        if isinstance(request, (int, float)) and not isinstance(request, bool):
            if threshold is not None:
                raise ValidationError("threshold given both positionally and by keyword")
            threshold = float(request)
            request = None
        elif isinstance(request, Mapping):
            payload = dict(request)
            if "threshold" not in payload and threshold is not None:
                payload["threshold"] = threshold
                threshold = None
            request = EstimateRequest.from_dict(payload)
        elif request is not None and not isinstance(request, EstimateRequest):
            raise ValidationError(
                f"cannot estimate from {type(request).__name__}; expected an "
                "EstimateRequest, a mapping, or a threshold"
            )
        if request is None:
            if threshold is None:
                raise ValidationError("an estimate needs a threshold")
            request = EstimateRequest(threshold)
        # explicit keywords win over the request envelope's fields
        overrides: Dict[str, Any] = {}
        if threshold is not None and request.threshold != threshold:
            overrides["threshold"] = threshold
        if mode is not None:
            overrides["mode"] = mode
        if seed is not None:
            overrides["seed"] = seed
        if estimator is not None:
            overrides["estimator"] = estimator
        if overrides:
            request = dataclasses.replace(request, **overrides)
        backend = self.backend
        resolved_seed = self.config.seed if request.seed is None else int(request.seed)
        started = time.perf_counter()
        with trace(
            "engine.estimate",
            backend=backend.kind,
            mode=request.mode,
            threshold=request.threshold,
        ):
            estimate = backend.estimate(
                request.threshold,
                mode=request.mode,
                random_state=resolved_seed,
                estimator=request.estimator,
            )
        wall_time = time.perf_counter() - started
        self._estimate_seconds.observe(wall_time)
        self._estimates_total.inc()
        return EstimateResult(
            value=estimate.value,
            estimator=estimate.estimator,
            threshold=estimate.threshold,
            details=estimate.details,
            provenance=Provenance(
                backend=backend.kind,
                seed=resolved_seed,
                mode=request.mode,
                wall_time_seconds=wall_time,
                backend_details=backend.describe(),
                metrics=self.metrics.snapshot().to_dict(),
            ),
        )

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, path: Union[str, Path]) -> None:
        """Write config + backend state as one restorable bundle."""
        with trace("engine.snapshot", backend=self.config.backend):
            state = {
                "format": 1,
                "kind": "engine-snapshot",
                "config": self.config.to_dict(),
                "backend": self.backend.to_state(),
            }
            with open(path, "wb") as handle:
                pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(
        cls,
        path: Union[str, Path],
        *,
        config: Union[EngineConfig, Mapping[str, Any], str, Path, None] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "JoinEstimationEngine":
        """Revive an engine from :meth:`snapshot` output.

        Raw backend snapshots (a bare :meth:`ShardedMutableIndex.snapshot`
        or :meth:`MutableLSHIndex.snapshot` file, as written by older CLI
        versions) are also accepted: the config is inferred from the
        index state, with backend-specific options left at defaults.
        Passing ``config`` overrides the embedded/inferred one — its
        backend kind must match the snapshot's.
        """
        path = Path(path)
        if not path.is_file():
            raise ValidationError(f"engine snapshot not found: {path}")
        with open(path, "rb") as handle:
            state = pickle.load(handle)  # reprolint: disable=R005 - operator-supplied local snapshot file, same trust domain as the process
        if not isinstance(state, Mapping):
            raise ValidationError(f"{path} is not an engine or index snapshot")
        if state.get("kind") == "engine-snapshot":
            if state.get("format") != 1:
                raise ValidationError(
                    f"unsupported engine snapshot format {state.get('format')!r}"
                )
            snapshot_config = EngineConfig.from_dict(state["config"])
            backend_state = state["backend"]
        elif state.get("kind") == "sharded":  # raw ShardedMutableIndex snapshot
            snapshot_config = cls._inferred_config("sharded", state)
            backend_state = {"format": 1, "kind": "sharded-backend", "index": state}
        elif state.get("format") == 1 and "tables" in state:  # raw MutableLSHIndex
            snapshot_config = cls._inferred_config("streaming", state)
            backend_state = {"format": 1, "kind": "streaming-backend", "index": state}
        else:
            raise ValidationError(f"{path} is not an engine or index snapshot")
        if config is not None:
            config = EngineConfig.coerce(config)
            if config.backend != snapshot_config.backend:
                raise ValidationError(
                    f"config backend {config.backend!r} does not match the "
                    f"snapshot's {snapshot_config.backend!r}"
                )
        else:
            config = snapshot_config
        engine = cls(config, metrics=metrics)
        with trace("engine.open", backend=config.backend, restored=True):
            with metrics_scope(engine.metrics):
                engine._backend = resolve_backend(config.backend).from_state(
                    config, backend_state
                )
        engine._closed = False
        return engine

    @staticmethod
    def _inferred_config(backend: str, state: Mapping[str, Any]) -> EngineConfig:
        """Best-effort config for a raw index snapshot (family stays default)."""
        return EngineConfig(
            backend=backend,
            num_hashes=int(state["num_hashes"]),  # reprolint: disable=R011 - raw-index-snapshot branch: reads MutableLSHIndex/ShardedMutableIndex schema, not the engine's own
            num_tables=int(state["num_tables"]),  # reprolint: disable=R011 - raw-index-snapshot branch: reads MutableLSHIndex/ShardedMutableIndex schema, not the engine's own
            dimension=int(state["dimension"]),  # reprolint: disable=R011 - raw-index-snapshot branch: reads MutableLSHIndex/ShardedMutableIndex schema, not the engine's own
        )

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self,
        *,
        num_shards: Optional[int] = None,
        partitioner: Optional[str] = None,
        dry_run: bool = False,
    ) -> RebalancePlan:
        """Resize / re-partition a sharded backend (others raise).

        Returns the executed (or, with ``dry_run``, the proposed)
        :class:`~repro.shard.rebalance.RebalancePlan`.  An applied
        rebalance updates :attr:`config` to the adopted shard count and
        partitioner, so snapshots taken afterwards describe reality.
        """
        with trace("engine.rebalance", backend=self.config.backend, dry_run=dry_run):
            plan = self.backend.rebalance(
                num_shards=num_shards, partitioner=partitioner, dry_run=dry_run
            )
        self.config = self.backend.config  # adopt any rebalance-driven update
        return plan

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live vectors in the backend."""
        return self.backend.size

    @property
    def total_pairs(self) -> int:
        """Candidate pairs ``M = C(n, 2)``."""
        return self.backend.total_pairs

    def describe(self) -> Dict[str, Any]:
        """Config plus the backend's live provenance fields."""
        description = {"config": self.config.to_dict()}
        if self.is_open:
            description["backend"] = self.backend.describe()
        return description

    def stats(self) -> Dict[str, Any]:
        """Operational statistics: config + the backend's stats surface.

        Delegates to :meth:`EstimatorBackend.stats`, so a process-cluster
        engine returns per-worker rows and a snapshot merged across every
        worker registry; a closed engine still reports its own registry.
        """
        stats: Dict[str, Any] = {"config": self.config.to_dict()}
        if self.is_open:
            stats.update(self.backend.stats())
        else:
            stats["backend"] = self.config.backend
            stats["metrics"] = self.metrics.snapshot().to_dict()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "open" if self.is_open else "closed"
        return f"JoinEstimationEngine(backend={self.config.backend!r}, {status})"


__all__ = ["EstimateRequest", "EstimateResult", "Provenance", "JoinEstimationEngine"]
