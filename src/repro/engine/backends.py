"""Estimation backends: one protocol, a registry, three implementations.

A backend owns one deployment shape of the LSH-SS machinery and adapts
it to the engine lifecycle (``open`` / ingest / ``estimate`` /
``to_state`` / ``close``).  The engine never imports a concrete backend —
it resolves the configured kind through the registry — so new shapes
(e.g. the planned multi-process/RPC shard workers) plug in by decorating
a class with :func:`register_backend` and need no caller changes:

* ``static`` — :class:`~repro.lsh.index.LSHIndex` over an immutable
  collection, serving any of the paper's estimators (LSH-SS, LSH-S, JU,
  LC, RS, …) selected per request;
* ``streaming`` — :class:`~repro.streaming.mutable_index.MutableLSHIndex`
  + :class:`~repro.streaming.estimator.StreamingEstimator` under
  insert/delete churn;
* ``sharded`` — :class:`~repro.shard.sharded_index.ShardedMutableIndex`
  behind a buffered :class:`~repro.shard.router.ShardRouter`, with
  online rebalancing;
* ``process`` — the multi-process cluster
  (:class:`~repro.cluster.backend.ProcessBackend`, defined in
  :mod:`repro.cluster` and registered through this module's registry):
  shard worker processes behind a
  :class:`~repro.cluster.coordinator.ClusterCoordinator`.

Delegation is thin on purpose: for equal seeds, the estimate a backend
serves is **bit-identical** to constructing the underlying layers by
hand (index from ``seed + 1``, maintenance generator from ``seed + 2``,
the per-request seed passed straight through) — the facade adds
provenance, not arithmetic.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, ClassVar, Dict, FrozenSet, Iterator, Mapping, Optional, Tuple, Type

from scipy import sparse

from repro.core import (
    CrossSampling,
    Estimate,
    LatticeCountingEstimator,
    LSHSEstimator,
    LSHSSEstimator,
    RandomPairSampling,
    UniformityEstimator,
)
from repro.engine.config import EngineConfig
from repro.errors import UnsupportedOperationError, ValidationError
from repro.lsh import LSHIndex
from repro.obs.metrics import MetricsRegistry, get_global_registry
from repro.rng import RandomState
from repro.shard import ShardedMutableIndex, ShardedStreamingEstimator, ShardRouter
from repro.shard.partition import resolve_partitioner
from repro.shard.rebalance import RebalancePlan, plan_rebalance, rebalance_cluster
from repro.streaming import Checkpoint, Delete, Insert, MutableLSHIndex, StreamingEstimator
from repro.streaming.mutable_index import coerce_row
from repro.vectors import VectorCollection

_REGISTRY: Dict[str, Type["EstimatorBackend"]] = {}


def register_backend(kind: str) -> Callable[[Type["EstimatorBackend"]], Type["EstimatorBackend"]]:
    """Class decorator registering an :class:`EstimatorBackend` under ``kind``.

    The kind becomes the value of ``EngineConfig.backend`` that selects
    the class; registering an already-taken kind raises, so a plugin
    cannot silently shadow a built-in.
    """

    def decorator(cls: Type["EstimatorBackend"]) -> Type["EstimatorBackend"]:
        if not (isinstance(cls, type) and issubclass(cls, EstimatorBackend)):
            raise ValidationError(
                f"register_backend needs an EstimatorBackend subclass, got {cls!r}"
            )
        if kind in _REGISTRY:
            raise ValidationError(f"backend kind {kind!r} is already registered")
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return decorator


def resolve_backend(kind: str) -> Type["EstimatorBackend"]:
    """The backend class registered under ``kind`` (raises on unknown kinds)."""
    try:
        return _REGISTRY[kind]
    except KeyError as error:
        raise ValidationError(
            f"unknown backend kind {kind!r}; registered: {available_backends()}"
        ) from error


def available_backends() -> Tuple[str, ...]:
    """The registered backend kinds, sorted."""
    return tuple(sorted(_REGISTRY))


#: the registry backends constructed inside a :func:`metrics_scope` adopt
_construction_metrics: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_backend_construction_metrics", default=None
)


@contextmanager
def metrics_scope(registry: Optional[MetricsRegistry]) -> Iterator[None]:
    """Backends constructed inside this block record into ``registry``.

    The engine wraps backend construction (both ``open`` and
    ``from_state`` paths) in this scope so per-engine registries reach
    every layer *without* widening the ``from_state`` classmethod
    signature — third-party backends registered via
    :func:`register_backend` keep working unchanged and still pick up
    the engine's registry through :attr:`EstimatorBackend.metrics`.
    """
    token = _construction_metrics.set(registry)
    try:
        yield
    finally:
        _construction_metrics.reset(token)


class EstimatorBackend(abc.ABC):
    """The protocol every deployment shape implements for the engine.

    Subclasses declare ``OPTIONS`` (the ``EngineConfig.options`` keys
    they understand — validated at config time) and ``CAPABILITIES``
    (informational tags such as ``"mutable"`` / ``"rebalance"``), and are
    constructed *closed*: the engine calls :meth:`open` exactly once
    before any other method.
    """

    #: registered kind string (set by :func:`register_backend`)
    kind: ClassVar[str] = "abstract"
    #: option keys this backend accepts in ``EngineConfig.options``
    OPTIONS: ClassVar[FrozenSet[str]] = frozenset()
    #: informational capability tags ("mutable", "rebalance", …)
    CAPABILITIES: ClassVar[FrozenSet[str]] = frozenset()

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        #: the metrics registry this backend (and the layers it builds)
        #: records into: the enclosing :func:`metrics_scope`'s registry
        #: when constructed by an engine, else the process-global default
        scoped = _construction_metrics.get()
        self.metrics: MetricsRegistry = (
            scoped if scoped is not None else get_global_registry()
        )

    # -- lifecycle -----------------------------------------------------
    @abc.abstractmethod
    def open(self) -> None:
        """Build the backing index/estimator stack (called once)."""

    def close(self) -> None:
        """Release executors / detach observers; must be idempotent."""

    def flush(self) -> None:
        """Make buffered writes visible (no-op for unbuffered backends)."""

    def quiesce(self) -> None:
        """Run deferred maintenance so subsequent estimates are read-only.

        The serving layer calls this at epoch-commit time — after
        :meth:`flush`, before publishing a generation to concurrent
        readers — so that ``auto``-mode estimates against the published
        generation neither mutate estimator state nor consume the
        maintenance rng.  The default is a no-op; backends whose
        estimates perform lazy maintenance override it.
        """

    def drain_pending(self) -> list:
        """Recover buffered-but-unapplied write payloads without applying them.

        Returns the drained payloads (1×d CSR rows for sharded
        backends, in arrival order) and clears the buffer, so a close
        after a mid-commit failure can surface
        :class:`~repro.errors.StrandedWritesError` carrying the
        recoverable rows instead of losing them behind process exit.
        Unbuffered backends return an empty list.
        """
        return []

    # -- ingest --------------------------------------------------------
    @abc.abstractmethod
    def ingest_collection(self, collection: VectorCollection) -> int:
        """Bulk-load a collection; returns the number of vectors added."""

    @abc.abstractmethod
    def apply_event(self, event: object) -> int:
        """Apply one Insert/Delete/Checkpoint; returns mutations applied (0/1)."""

    # -- estimation ----------------------------------------------------
    @abc.abstractmethod
    def estimate(
        self,
        threshold: float,
        *,
        mode: str = "auto",
        random_state: RandomState = None,
        estimator: Optional[str] = None,
    ) -> Estimate:
        """Serve one raw :class:`~repro.core.base.Estimate`."""

    @abc.abstractmethod
    def describe(self) -> Dict[str, Any]:
        """Provenance fields (strata sizes, shard layout, staleness, …)."""

    # -- state ---------------------------------------------------------
    @abc.abstractmethod
    def to_state(self) -> Dict[str, Any]:
        """A picklable checkpoint tagged with ``{"kind": "<kind>-backend"}``."""

    @classmethod
    @abc.abstractmethod
    def from_state(cls, config: EngineConfig, state: Mapping[str, Any]) -> "EstimatorBackend":
        """Rebuild an *open* backend from :meth:`to_state` output."""

    # -- optional operations -------------------------------------------
    def rebalance(
        self,
        *,
        num_shards: Optional[int] = None,
        partitioner: Optional[str] = None,
        dry_run: bool = False,
    ) -> RebalancePlan:
        raise UnsupportedOperationError(
            f"backend {self.kind!r} does not support rebalancing "
            "(only 'sharded' clusters can migrate key ranges)"
        )

    # -- statistics ----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Operational statistics: :meth:`describe` + a metrics snapshot.

        Backends with richer sources override this (the process backend
        fans out to its workers and merges their registries); the default
        is purely local and never blocks on I/O.
        """
        return {
            "backend": self.kind,
            "describe": self.describe(),
            "metrics": self.metrics.snapshot().to_dict(),
        }

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of live vectors."""

    @property
    @abc.abstractmethod
    def total_pairs(self) -> int:
        """Candidate pairs ``M = C(n, 2)``."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(kind={self.kind!r}, n={self.size})"


def _check_state(state: Mapping[str, Any], kind: str) -> None:
    if state.get("format") != 1 or state.get("kind") != f"{kind}-backend":
        raise ValidationError(f"not a {kind!r} backend snapshot")


# ----------------------------------------------------------------------
# static
# ----------------------------------------------------------------------
@register_backend("static")
class StaticBackend(EstimatorBackend):
    """Batch-built :class:`LSHIndex` over an immutable collection.

    Rows accumulate through :meth:`ingest_collection` (or insert events);
    the index and estimators are built lazily at the first estimate and
    invalidated by further ingest (a full rebuild — the static shape has
    no incremental path; that is what ``streaming`` is for).  Deletes
    raise :class:`UnsupportedOperationError`.

    Options
    -------
    ``estimator``
        Default estimator flavor served when a request names none; one
        of ``lsh-ss`` (default), ``lsh-ss-d``, ``lsh-s``, ``ju``, ``lc``,
        ``rs``, ``rs-cross``.
    ``estimator_kwargs``
        Extra constructor keywords for the served estimators
        (``sample_size_h``, ``answer_threshold``, …).
    """

    OPTIONS = frozenset({"estimator", "estimator_kwargs"})
    CAPABILITIES = frozenset({"multi-estimator", "concurrent-read"})

    #: request/estimator-name → builder(table, collection, **kwargs); the
    #: single registry of servable flavors (the CLI derives its choices
    #: and the sweep command its constructions from here)
    _ESTIMATORS = {
        "lsh-ss": lambda table, collection, **kw: LSHSSEstimator(table, **kw),
        "lsh-ss-d": lambda table, collection, **kw: LSHSSEstimator(table, dampening="auto", **kw),
        "lsh-s": lambda table, collection, **kw: LSHSEstimator(table, **kw),
        "ju": lambda table, collection, **kw: UniformityEstimator(table, **kw),
        "lc": lambda table, collection, **kw: LatticeCountingEstimator(table, **kw),
        "rs": lambda table, collection, **kw: RandomPairSampling(collection, **kw),
        "rs-cross": lambda table, collection, **kw: CrossSampling(collection, **kw),
    }

    @classmethod
    def estimator_names(cls) -> Tuple[str, ...]:
        """The estimator flavors this backend can serve, in registry order."""
        return tuple(cls._ESTIMATORS)

    @classmethod
    def build_estimator(cls, name: str, table: Any, collection: Any, **kwargs: Any) -> Any:
        """Construct one named estimator flavor over a table/collection."""
        if name not in cls._ESTIMATORS:
            raise ValidationError(
                f"unknown estimator {name!r}; expected one of {sorted(cls._ESTIMATORS)}"
            )
        return cls._ESTIMATORS[name](table, collection, **kwargs)

    def open(self) -> None:
        self._dimension: Optional[int] = self.config.dimension
        self._blocks: list = []  # csr blocks, vstacked lazily
        self._num_rows = 0
        self._index: Optional[LSHIndex] = None
        self._estimators: Dict[str, object] = {}

    def _invalidate(self) -> None:
        self._index = None
        self._estimators = {}

    def quiesce(self) -> None:
        # materialise the lazily built index now so concurrent readers
        # never race the (expensive, deterministic) first build
        if self._blocks:
            self._built_index()

    def ingest_collection(self, collection: VectorCollection) -> int:
        if self._dimension is None:
            self._dimension = collection.dimension
        elif collection.dimension != self._dimension:
            raise ValidationError(
                f"collection dimension {collection.dimension} != engine dimension {self._dimension}"
            )
        self._blocks.append(collection.matrix.tocsr())
        self._num_rows += collection.size
        self._invalidate()
        return collection.size

    def apply_event(self, event: object) -> int:
        if isinstance(event, Insert):
            if self._dimension is None:
                if hasattr(event.vector, "items"):
                    raise ValidationError(
                        "static backend needs config.dimension (or a prior "
                        "collection ingest) before sparse insert events"
                    )
                self._dimension = len(event.vector)
            self._blocks.append(coerce_row(event.vector, self._dimension))
            self._num_rows += 1
            self._invalidate()
            return 1
        if isinstance(event, Delete):
            raise UnsupportedOperationError(
                "backend 'static' is immutable: deletes need the 'streaming' "
                "or 'sharded' backend"
            )
        if isinstance(event, Checkpoint):
            return 0
        raise ValidationError(f"unknown event type: {type(event).__name__}")

    # ------------------------------------------------------------------
    def _built_index(self) -> LSHIndex:
        if self._index is None:
            if not self._blocks:
                raise ValidationError("static backend has no ingested vectors to index")
            collection = VectorCollection(sparse.vstack(self._blocks, format="csr"), copy=False)
            self._index = LSHIndex(
                collection,
                num_hashes=self.config.num_hashes,
                num_tables=self.config.num_tables,
                family=self.config.family,
                random_state=self.config.seed + 1,
            )
        return self._index

    def _estimator(self, name: Optional[str]) -> Any:
        name = name or self.config.options.get("estimator", "lsh-ss")
        if name not in self._estimators:
            index = self._built_index()
            kwargs = dict(self.config.options.get("estimator_kwargs", {}))
            self._estimators[name] = self.build_estimator(
                name, index.primary_table, index.collection, **kwargs
            )
        return self._estimators[name]

    def estimate(
        self,
        threshold: float,
        *,
        mode: str = "auto",
        random_state: RandomState = None,
        estimator: Optional[str] = None,
    ) -> Estimate:
        if mode not in ("auto", "exact"):
            raise ValidationError(
                f"backend 'static' serves modes ('auto', 'exact'), got {mode!r}"
            )
        return self._estimator(estimator).estimate(threshold, random_state=random_state)

    def describe(self) -> Dict[str, Any]:
        description: Dict[str, Any] = {
            "size": self.size,
            "total_pairs": self.total_pairs,
        }
        # strata sizes only when the index exists: describe() is a cheap
        # diagnostic and must not force (or crash on) the lazy build
        if self._index is not None:
            table = self._index.primary_table
            description["num_collision_pairs"] = table.num_collision_pairs
            description["num_non_collision_pairs"] = table.num_non_collision_pairs
        return description

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        matrix = sparse.vstack(self._blocks, format="csr") if self._blocks else None
        return {"format": 1, "kind": "static-backend", "matrix": matrix}  # reprolint: disable=R013 - scipy CSR corpus; becomes raw numpy buffer frames in the wire-format migration (ROADMAP)

    @classmethod
    def from_state(cls, config: EngineConfig, state: Mapping[str, Any]) -> "StaticBackend":
        _check_state(state, "static")
        backend = cls(config)
        backend.open()
        if state["matrix"] is not None:
            backend.ingest_collection(VectorCollection(state["matrix"], copy=False))
        return backend

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._num_rows

    @property
    def total_pairs(self) -> int:
        return self._num_rows * (self._num_rows - 1) // 2


# ----------------------------------------------------------------------
# streaming
# ----------------------------------------------------------------------
@register_backend("streaming")
class StreamingBackend(EstimatorBackend):
    """Single-node mutable index with a reservoir-repaired estimator.

    Options
    -------
    ``reservoir_size`` / ``staleness_budget`` / ``sample_size_h`` /
    ``sample_size_l`` / ``answer_threshold`` / ``dampening``
        Passed to :class:`StreamingEstimator` verbatim.
    """

    OPTIONS = frozenset(
        {
            "reservoir_size",
            "staleness_budget",
            "sample_size_h",
            "sample_size_l",
            "answer_threshold",
            "dampening",
        }
    )
    CAPABILITIES = frozenset({"mutable", "concurrent-read"})

    def open(self) -> None:
        if self.config.dimension is None:
            raise ValidationError(
                "backend 'streaming' needs config.dimension (hash families "
                "bind to the vector space eagerly)"
            )
        self._index = MutableLSHIndex(
            self.config.dimension,
            num_hashes=self.config.num_hashes,
            num_tables=self.config.num_tables,
            family=self.config.family,
            random_state=self.config.seed + 1,
        )
        self._estimator = StreamingEstimator(
            self._index,
            random_state=self.config.seed + 2,
            **self.config.options,
        )

    def close(self) -> None:
        self._estimator.close()

    def quiesce(self) -> None:
        # run the staleness-budgeted repair now, at a known-quiescent
        # point, so auto-mode estimates stop triggering it lazily
        self._estimator.repair()

    def ingest_collection(self, collection: VectorCollection) -> int:
        self._index.insert_many(collection.matrix)
        return collection.size

    def apply_event(self, event: object) -> int:
        if isinstance(event, Insert):
            self._index.insert(event.vector)
            return 1
        if isinstance(event, Delete):
            self._index.delete(event.vector_id)
            return 1
        if isinstance(event, Checkpoint):
            return 0
        raise ValidationError(f"unknown event type: {type(event).__name__}")

    def estimate(
        self,
        threshold: float,
        *,
        mode: str = "auto",
        random_state: RandomState = None,
        estimator: Optional[str] = None,
    ) -> Estimate:
        if estimator is not None:
            raise UnsupportedOperationError(
                "backend 'streaming' serves a single LSH-SS(stream) estimator; "
                "per-request estimator selection needs the 'static' backend"
            )
        return self._estimator.estimate(threshold, random_state=random_state, mode=mode)

    def describe(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "total_pairs": self.total_pairs,
            "num_collision_pairs": self._index.num_collision_pairs,
            "num_non_collision_pairs": self._index.num_non_collision_pairs,
            "staleness": {
                "h": self._estimator.staleness_h,
                "l": self._estimator.staleness_l,
            },
        }

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        # index state embeds the registered estimator's reservoirs
        return {"format": 1, "kind": "streaming-backend", "index": self._index.to_state()}

    @classmethod
    def from_state(cls, config: EngineConfig, state: Mapping[str, Any]) -> "StreamingBackend":
        _check_state(state, "streaming")
        backend = cls(config)
        backend._index = MutableLSHIndex.from_state(state["index"])
        restored = backend._index.estimators
        if restored:
            backend._estimator = restored[0]
        else:  # snapshot predates estimator persistence: redraw
            backend._estimator = StreamingEstimator(
                backend._index, random_state=config.seed + 2, **config.options
            )
        return backend

    # ------------------------------------------------------------------
    @property
    def index(self) -> MutableLSHIndex:
        """The backing mutable index (advanced / diagnostic access)."""
        return self._index

    @property
    def size(self) -> int:
        return self._index.size

    @property
    def total_pairs(self) -> int:
        return self._index.total_pairs


# ----------------------------------------------------------------------
# sharded
# ----------------------------------------------------------------------
@register_backend("sharded")
class ShardedBackend(EstimatorBackend):
    """Bucket-key-partitioned cluster behind a buffered router.

    Options
    -------
    ``num_shards`` (default 4), ``partitioner`` (``"modulo"`` /
    ``"rendezvous"``), ``shard_estimators``, ``estimator_kwargs``
        Passed to :class:`ShardedMutableIndex`.
    ``batch_size`` (default 256), ``workers``
        Passed to :class:`ShardRouter` (``workers=None`` = one per shard).
    ``sample_size_h`` / ``sample_size_l`` / ``answer_threshold`` /
    ``dampening``
        Passed to the merged :class:`ShardedStreamingEstimator`.
    """

    OPTIONS = frozenset(
        {
            "num_shards",
            "partitioner",
            "shard_estimators",
            "estimator_kwargs",
            "batch_size",
            "workers",
            "sample_size_h",
            "sample_size_l",
            "answer_threshold",
            "dampening",
        }
    )
    # "concurrent-read": estimates/describes after a flush+quiesce are
    # read-only and touch no shared mutable state, so the serving layer
    # may run them from many threads without a lock (see repro.serve)
    CAPABILITIES = frozenset({"mutable", "rebalance", "concurrent-read"})

    _MERGE_KEYS = ("sample_size_h", "sample_size_l", "answer_threshold", "dampening")

    def open(self) -> None:
        if self.config.dimension is None:
            raise ValidationError(
                "backend 'sharded' needs config.dimension (hash families "
                "bind to the vector space eagerly)"
            )
        options = self.config.options
        self._index = ShardedMutableIndex(
            self.config.dimension,
            num_shards=options.get("num_shards", 4),
            num_hashes=self.config.num_hashes,
            num_tables=self.config.num_tables,
            family=self.config.family,
            random_state=self.config.seed + 1,
            partitioner=options.get("partitioner", "modulo"),
            shard_estimators=options.get("shard_estimators", True),
            estimator_kwargs=options.get("estimator_kwargs"),
        )
        self._attach_serving_stack()

    def _attach_serving_stack(self) -> None:
        options = self.config.options
        self._index.metrics = self.metrics
        self._router = ShardRouter(
            self._index,
            batch_size=options.get("batch_size", 256),
            max_workers=options.get("workers"),
            metrics=self.metrics,
        )
        merge_kwargs = {key: options[key] for key in self._MERGE_KEYS if key in options}
        self._estimator = ShardedStreamingEstimator(
            self._index, router=self._router, metrics=self.metrics, **merge_kwargs
        )

    def close(self) -> None:
        self._router.close()

    def flush(self) -> None:
        self._router.flush()

    def drain_pending(self) -> list:
        return self._router.drain_pending()

    def ingest_collection(self, collection: VectorCollection) -> int:
        self._router.flush()  # keep id assignment in ingest order
        self._index.insert_many(collection.matrix)
        return collection.size

    def apply_event(self, event: object) -> int:
        if isinstance(event, Insert):
            self._router.insert(event.vector)
            return 1
        if isinstance(event, Delete):
            self._router.delete(event.vector_id)
            return 1
        if isinstance(event, Checkpoint):
            # checkpoints mean "consistent point": drain the write buffer,
            # matching ShardRouter.replay and the CLI replay loops
            self._router.flush()
            return 0
        raise ValidationError(f"unknown event type: {type(event).__name__}")

    def estimate(
        self,
        threshold: float,
        *,
        mode: str = "auto",
        random_state: RandomState = None,
        estimator: Optional[str] = None,
    ) -> Estimate:
        if estimator is not None:
            raise UnsupportedOperationError(
                "backend 'sharded' serves a single LSH-SS(sharded) estimator; "
                "per-request estimator selection needs the 'static' backend"
            )
        return self._estimator.estimate(threshold, random_state=random_state, mode=mode)

    def describe(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "total_pairs": self.total_pairs,
            "num_collision_pairs": self._index.num_collision_pairs,
            "num_non_collision_pairs": self._index.num_non_collision_pairs,
            "num_shards": self._index.num_shards,
            "shard_sizes": [shard.size for shard in self._index.shards],
            "partitioner": self._index.partitioner.kind,
            "pending_writes": self._router.pending,
        }

    # ------------------------------------------------------------------
    def rebalance(
        self,
        *,
        num_shards: Optional[int] = None,
        partitioner: Optional[str] = None,
        dry_run: bool = False,
    ) -> RebalancePlan:
        """Resize / re-partition the live cluster (or just plan it).

        ``dry_run`` diffs live bucket owners against the target
        assignment and leaves the cluster untouched (shards temporarily
        appended for a growth plan are dropped again before returning).
        An applied rebalance updates ``self.config`` so later snapshots
        describe the adopted shape.
        """
        self._router.flush()
        current = self._index.num_shards
        target_shards = current if num_shards is None else int(num_shards)
        target_kind = self._index.partitioner.kind if partitioner is None else partitioner
        if dry_run:
            # plan_rebalance needs the target shard count to exist; the
            # appended shards are empty, so dropping them restores state
            if target_shards > current:
                self._index.add_shards(target_shards, estimator_seed=self.config.seed + 3)
            try:
                return plan_rebalance(
                    self._index, resolve_partitioner(target_kind, target_shards)
                )
            finally:
                if target_shards > current:
                    self._index.drop_trailing_shards(current)
        plan = rebalance_cluster(
            self._index,
            num_shards=target_shards,
            partitioner=target_kind,
            estimator_seed=self.config.seed + 3,
        )
        self.config = self.config.replace(
            options={
                **self.config.options,
                "num_shards": self._index.num_shards,
                "partitioner": self._index.partitioner.kind,
            }
        )
        if self._index.num_shards != current:
            # resize the router's worker pool to the new shard count
            self._router.close()
            self._attach_serving_stack()
        return plan

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        self._router.flush()
        return {"format": 1, "kind": "sharded-backend", "index": self._index.to_state()}

    @classmethod
    def from_state(cls, config: EngineConfig, state: Mapping[str, Any]) -> "ShardedBackend":
        _check_state(state, "sharded")
        backend = cls(config)
        backend._index = ShardedMutableIndex.from_state(
            state["index"], estimator_seed=config.seed + 2
        )
        backend._attach_serving_stack()
        return backend

    # ------------------------------------------------------------------
    @property
    def index(self) -> ShardedMutableIndex:
        """The backing sharded index (advanced / diagnostic access)."""
        return self._index

    @property
    def size(self) -> int:
        return self._index.size

    @property
    def total_pairs(self) -> int:
        return self._index.total_pairs


__all__ = [
    "EstimatorBackend",
    "StaticBackend",
    "StreamingBackend",
    "ShardedBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "metrics_scope",
]

# registers the "process" backend (module-level side effect).  A plain
# `import` (not `from … import`) keeps the circular import benign: when
# repro.cluster is mid-import it is already in sys.modules, and its
# register_backend decorator runs when its own module body completes.
import repro.cluster.backend  # noqa: E402,F401  (registration side effect)
