"""Declarative configuration for :class:`~repro.engine.JoinEstimationEngine`.

An :class:`EngineConfig` is the single construction ritual for every
deployment shape: it names the LSH parameters shared by all backends
(``family``, ``num_hashes``, ``num_tables``, ``seed``), the backend
``kind`` (``"static"``, ``"streaming"``, ``"sharded"``, or anything
registered via :func:`repro.engine.backends.register_backend`), and the
backend-specific ``options``.  Every field is a JSON-compatible scalar or
mapping, so configs round-trip losslessly through
:meth:`~EngineConfig.to_dict` / :meth:`~EngineConfig.from_dict` and
:meth:`~EngineConfig.to_json` / :meth:`~EngineConfig.from_json` — the
``repro`` CLI reads them from a ``--config`` file, and engine snapshots
embed them so a restored engine knows how it was built.

Seed discipline
---------------
``seed`` is the root of the engine's determinism contract: the backend
builds its index from ``seed + 1`` and any maintenance generator from
``seed + 2`` (exactly the offsets the CLI always used), and an estimate
request without an explicit per-call seed falls back to ``seed``.  Two
engines opened from equal configs and fed the same ingest therefore
serve bit-identical estimates — and identical to a hand-built backend
using the same offsets.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ValidationError

#: Field names accepted by :meth:`EngineConfig.from_dict`.
_CONFIG_FIELDS = ("backend", "family", "num_hashes", "num_tables", "seed", "dimension", "options")


@dataclass
class EngineConfig:
    """Everything needed to open a :class:`~repro.engine.JoinEstimationEngine`.

    Parameters
    ----------
    backend:
        Registered backend kind; ``"static"``, ``"streaming"`` and
        ``"sharded"`` ship with the library.
    family:
        LSH family *name* (``"cosine"`` / ``"jaccard"``; classes are not
        allowed here so configs stay JSON round-trippable).
    num_hashes / num_tables:
        ``k`` hash functions per table and ``ℓ`` tables, as everywhere
        else in the library.
    seed:
        Root seed of the determinism contract (see module docstring).
    dimension:
        Vector dimensionality ``d``.  Required by the mutable backends
        (their hash families bind to ``d`` eagerly); the static backend
        can infer it from the first ingested collection.
    options:
        Backend-specific knobs.  Each backend declares the keys it
        understands (``EstimatorBackend.OPTIONS``); unknown keys are
        rejected at validation time so typos cannot silently change a
        deployment.
    """

    backend: str = "static"
    family: str = "cosine"
    num_hashes: int = 20
    num_tables: int = 1
    seed: int = 7
    dimension: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every field, including options against the backend's set."""
        # late import: backends imports this module for its type hints
        from repro.engine.backends import resolve_backend

        if not isinstance(self.backend, str):
            raise ValidationError(f"backend must be a kind string, got {self.backend!r}")
        backend_class = resolve_backend(self.backend)
        if not isinstance(self.family, str):
            raise ValidationError(
                f"family must be a name string in an EngineConfig "
                f"(JSON round-trip), got {self.family!r}"
            )
        for name in ("num_hashes", "num_tables", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValidationError(f"{name} must be an int, got {value!r}")
        if self.num_hashes < 1:
            raise ValidationError(f"num_hashes (k) must be >= 1, got {self.num_hashes}")
        if self.num_tables < 1:
            raise ValidationError(f"num_tables (ℓ) must be >= 1, got {self.num_tables}")
        if self.dimension is not None:
            if not isinstance(self.dimension, int) or isinstance(self.dimension, bool):
                raise ValidationError(f"dimension must be an int, got {self.dimension!r}")
            if self.dimension < 1:
                raise ValidationError(f"dimension must be >= 1, got {self.dimension}")
        if not isinstance(self.options, Mapping):
            raise ValidationError(f"options must be a mapping, got {type(self.options).__name__}")
        self.options = dict(self.options)
        unknown = sorted(set(self.options) - set(backend_class.OPTIONS))
        if unknown:
            raise ValidationError(
                f"unknown option(s) {unknown} for backend {self.backend!r}; "
                f"known: {sorted(backend_class.OPTIONS)}"
            )

    # ------------------------------------------------------------------
    # round-tripping
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form, safe to mutate and to serialise as JSON."""
        payload = dataclasses.asdict(self)
        payload["options"] = dict(self.options)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise ValidationError(f"config payload must be a mapping, got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(_CONFIG_FIELDS))
        if unknown:
            raise ValidationError(
                f"unknown config field(s) {unknown}; expected a subset of {list(_CONFIG_FIELDS)}"
            )
        return cls(**{key: payload[key] for key in _CONFIG_FIELDS if key in payload})

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EngineConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"config is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def to_file(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "EngineConfig":
        path = Path(path)
        if not path.is_file():
            raise ValidationError(f"engine config not found: {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def coerce(cls, config: Union["EngineConfig", Mapping[str, Any], str, Path]) -> "EngineConfig":
        """Accept a config, a dict, or a JSON file path; return a config."""
        if isinstance(config, cls):
            return config
        if isinstance(config, Mapping):
            return cls.from_dict(config)
        if isinstance(config, (str, Path)):
            return cls.from_file(config)
        raise ValidationError(
            f"cannot build an EngineConfig from {type(config).__name__}; "
            "expected EngineConfig, mapping, or JSON file path"
        )


__all__ = ["EngineConfig"]
