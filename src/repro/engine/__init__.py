"""Unified estimation engine: one front-door API over every backend.

The repo grew four ways to get a join-size estimate — static
``LSHIndex`` + ``LSHSSEstimator``, single-node ``MutableLSHIndex`` +
``StreamingEstimator``, sharded clusters, and rebalanced clusters — each
with its own construction ritual.  This package collapses them behind
one seam:

* :mod:`~repro.engine.config` — :class:`EngineConfig`, the declarative,
  JSON round-trippable description of a deployment (family, ``k``,
  seed, backend kind + options).
* :mod:`~repro.engine.backends` — the :class:`EstimatorBackend`
  protocol, the :func:`register_backend` registry, and the ``static`` /
  ``streaming`` / ``sharded`` implementations delegating to the
  existing layers (estimates stay bit-identical to direct construction
  for the same seed).
* :mod:`~repro.engine.engine` — :class:`JoinEstimationEngine` with the
  single lifecycle ``open → ingest → estimate → snapshot/restore →
  rebalance → close``, and the :class:`EstimateRequest` /
  :class:`EstimateResult` envelopes with full provenance.

New deployment shapes (e.g. multi-process/RPC shard workers) register a
backend kind and become reachable through the same caller code.
"""

from repro.engine.backends import (
    EstimatorBackend,
    ShardedBackend,
    StaticBackend,
    StreamingBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.engine.config import EngineConfig
from repro.engine.engine import (
    EstimateRequest,
    EstimateResult,
    JoinEstimationEngine,
    Provenance,
)

__all__ = [
    "EngineConfig",
    "EstimateRequest",
    "EstimateResult",
    "Provenance",
    "JoinEstimationEngine",
    "EstimatorBackend",
    "StaticBackend",
    "StreamingBackend",
    "ShardedBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
]
