"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so the package can be installed in environments without the
``wheel`` package (``pip install -e . --no-use-pep517``), e.g. fully
offline machines.
"""

from setuptools import setup

setup()
