"""Tests for the extended LSH table (bucket counts, N_H, pair sampling)."""

import numpy as np
import pytest

from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh import LSHTable, SignRandomProjectionFamily
from repro.lsh.table import sample_uniform_pairs
from repro.vectors import VectorCollection


@pytest.fixture
def duplicate_collection():
    """Ten vectors: two groups of near-duplicates plus scattered singletons."""
    rows = []
    rows.extend([[1.0, 0.0, 0.0, 0.0, 0.0]] * 4)  # group A: 4 identical vectors
    rows.extend([[0.0, 1.0, 1.0, 0.0, 0.0]] * 3)  # group B: 3 identical vectors
    rows.append([0.0, 0.0, 0.0, 1.0, 0.0])
    rows.append([0.0, 0.0, 0.0, 0.0, 1.0])
    rows.append([1.0, 1.0, 1.0, 1.0, 1.0])
    return VectorCollection.from_dense(rows)


@pytest.fixture
def duplicate_table(duplicate_collection):
    family = SignRandomProjectionFamily(8, random_state=21)
    return LSHTable(family, duplicate_collection)


class TestConstruction:
    def test_bucket_counts_sum_to_n(self, small_table, small_collection):
        assert int(small_table.bucket_counts.sum()) == small_collection.size

    def test_num_buckets_matches_counts(self, small_table):
        assert small_table.num_buckets == small_table.bucket_counts.size

    def test_collision_pairs_formula(self, small_table):
        counts = small_table.bucket_counts
        assert small_table.num_collision_pairs == int(np.sum(counts * (counts - 1) // 2))

    def test_strata_partition_all_pairs(self, small_table):
        assert (
            small_table.num_collision_pairs + small_table.num_non_collision_pairs
            == small_table.total_pairs
        )

    def test_identical_vectors_share_bucket(self, duplicate_table):
        assert duplicate_table.same_bucket(0, 1)
        assert duplicate_table.same_bucket(4, 6)

    def test_duplicate_groups_yield_expected_pairs(self, duplicate_table):
        # group A contributes C(4,2)=6 pairs, group B contributes C(3,2)=3.
        assert duplicate_table.num_collision_pairs >= 9

    def test_precomputed_signatures_accepted(self, small_collection):
        family = SignRandomProjectionFamily(6, random_state=3)
        signatures = family.hash_collection(small_collection)
        table = LSHTable(family, small_collection, signatures=signatures)
        assert table.num_buckets >= 1

    def test_wrong_signature_shape_rejected(self, small_collection):
        family = SignRandomProjectionFamily(6, random_state=3)
        with pytest.raises(ValidationError):
            LSHTable(family, small_collection, signatures=np.zeros((3, 6)))


class TestAccessors:
    def test_bucket_of_and_members_agree(self, small_table):
        for vector_id in range(0, small_table.num_vectors, 37):
            bucket = small_table.bucket_of(vector_id)
            assert vector_id in small_table.bucket_members(bucket)

    def test_bucket_of_out_of_range(self, small_table):
        with pytest.raises(ValidationError):
            small_table.bucket_of(small_table.num_vectors)

    def test_bucket_members_out_of_range(self, small_table):
        with pytest.raises(ValidationError):
            small_table.bucket_members(small_table.num_buckets)

    def test_same_bucket_many_matches_scalar(self, small_table, rng):
        left = rng.integers(0, small_table.num_vectors, size=50)
        right = rng.integers(0, small_table.num_vectors, size=50)
        vectorised = small_table.same_bucket_many(left, right)
        scalar = [small_table.same_bucket(int(i), int(j)) for i, j in zip(left, right)]
        assert vectorised.tolist() == scalar

    def test_bucket_assignments_cover_all_vectors(self, small_table):
        assert small_table.bucket_assignments.shape == (small_table.num_vectors,)
        assert small_table.bucket_assignments.max() < small_table.num_buckets

    def test_memory_estimate_positive_and_grows_with_k(self, small_collection):
        small_k = LSHTable(SignRandomProjectionFamily(5, random_state=1), small_collection)
        large_k = LSHTable(SignRandomProjectionFamily(30, random_state=1), small_collection)
        assert 0 < small_k.memory_estimate_bytes() < large_k.memory_estimate_bytes()


class TestCollisionPairSampling:
    def test_sampled_pairs_share_bucket(self, duplicate_table, rng):
        left, right = duplicate_table.sample_collision_pairs(200, random_state=rng)
        assert np.all(duplicate_table.same_bucket_many(left, right))
        assert np.all(left != right)

    def test_sample_size_zero(self, duplicate_table):
        left, right = duplicate_table.sample_collision_pairs(0)
        assert left.size == right.size == 0

    def test_negative_sample_size(self, duplicate_table):
        with pytest.raises(ValidationError):
            duplicate_table.sample_collision_pairs(-1)

    def test_empty_stratum_h_raises(self):
        # orthogonal vectors with many hashes: every bucket is a singleton
        collection = VectorCollection.from_dense(np.eye(6))
        table = LSHTable(SignRandomProjectionFamily(40, random_state=0), collection)
        if table.num_collision_pairs == 0:
            with pytest.raises(InsufficientSampleError):
                table.sample_collision_pairs(5)

    def test_bucket_weighting_is_proportional_to_pairs(self, duplicate_table):
        """Group A (6 pairs) must be sampled roughly twice as often as group B (3 pairs)."""
        left, right = duplicate_table.sample_collision_pairs(6000, random_state=7)
        bucket_a = duplicate_table.bucket_of(0)
        bucket_b = duplicate_table.bucket_of(4)
        from_a = np.count_nonzero(duplicate_table.bucket_assignments[left] == bucket_a)
        from_b = np.count_nonzero(duplicate_table.bucket_assignments[left] == bucket_b)
        assert from_a + from_b <= 6000
        assert from_a / max(from_b, 1) == pytest.approx(2.0, rel=0.2)

    def test_deterministic_given_seed(self, duplicate_table):
        first = duplicate_table.sample_collision_pairs(50, random_state=5)
        second = duplicate_table.sample_collision_pairs(50, random_state=5)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


class TestNonCollisionPairSampling:
    def test_sampled_pairs_do_not_share_bucket(self, duplicate_table, rng):
        left, right = duplicate_table.sample_non_collision_pairs(200, random_state=rng)
        assert left.size == 200
        assert not np.any(duplicate_table.same_bucket_many(left, right))
        assert np.all(left != right)

    def test_sample_size_zero(self, duplicate_table):
        left, right = duplicate_table.sample_non_collision_pairs(0)
        assert left.size == 0

    def test_negative_sample_size(self, duplicate_table):
        with pytest.raises(ValidationError):
            duplicate_table.sample_non_collision_pairs(-3)

    def test_degenerate_single_bucket_raises(self):
        collection = VectorCollection.from_dense([[1.0, 0.0]] * 5)
        table = LSHTable(SignRandomProjectionFamily(4, random_state=0), collection)
        assert table.num_non_collision_pairs == 0
        with pytest.raises(InsufficientSampleError):
            table.sample_non_collision_pairs(3)


class TestIterCollisionPairs:
    def test_enumeration_matches_count(self, duplicate_table):
        pairs = list(duplicate_table.iter_collision_pairs())
        assert len(pairs) == duplicate_table.num_collision_pairs
        assert all(u != v for u, v in pairs)

    def test_enumerated_pairs_share_bucket(self, duplicate_table):
        for u, v in duplicate_table.iter_collision_pairs():
            assert duplicate_table.same_bucket(u, v)


class TestSampleUniformPairs:
    def test_no_self_pairs(self, rng):
        left, right = sample_uniform_pairs(10, 500, rng)
        assert np.all(left != right)
        assert left.min() >= 0 and right.max() < 10

    def test_single_vector_raises(self, rng):
        with pytest.raises(InsufficientSampleError):
            sample_uniform_pairs(1, 5, rng)

    def test_roughly_uniform_marginals(self, rng):
        left, right = sample_uniform_pairs(5, 20000, rng)
        counts = np.bincount(np.concatenate([left, right]), minlength=5)
        assert counts.min() > 0.8 * counts.mean()
