"""Tests for the empirical stratum probabilities (Tables 1 and 2)."""

import pytest

from repro.errors import ValidationError
from repro.evaluation import alpha_beta_table, empirical_stratum_probabilities
from repro.evaluation.probabilities import regime_boundaries
from repro.join import exact_join_size


THRESHOLDS = [0.1, 0.3, 0.5, 0.7, 0.9]


class TestEmpiricalStratumProbabilities:
    def test_join_sizes_match_exact_oracle(self, small_table, small_collection, small_histogram):
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        for row in rows:
            assert row.join_size == exact_join_size(small_collection, row.threshold)

    def test_probability_true_is_join_over_m(self, small_table, small_histogram):
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        for row in rows:
            assert row.probability_true == pytest.approx(
                row.join_size / small_table.total_pairs
            )

    def test_probabilities_lie_in_unit_interval(self, small_table, small_histogram):
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        for row in rows:
            for value in (
                row.probability_true,
                row.probability_true_given_h,
                row.probability_h_given_true,
                row.probability_true_given_l,
            ):
                assert 0.0 <= value <= 1.0

    def test_law_of_total_probability(self, small_table, small_histogram):
        """J = J_H + J_L must hold: P(T) M = α N_H + β N_L."""
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        for row in rows:
            reconstructed = (
                row.probability_true_given_h * small_table.num_collision_pairs
                + row.probability_true_given_l * small_table.num_non_collision_pairs
            )
            assert reconstructed == pytest.approx(row.join_size, rel=1e-9, abs=1e-6)

    def test_alpha_exceeds_beta(self, small_table, small_histogram):
        """The LSH property: co-bucket pairs are likelier to be true pairs."""
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        for row in rows:
            assert row.probability_true_given_h >= row.probability_true_given_l

    def test_h_given_t_increases_with_threshold(self, small_table, small_histogram):
        """Table 1's trend: at higher thresholds a larger fraction of true
        pairs shares a bucket."""
        rows = empirical_stratum_probabilities(small_table, THRESHOLDS, histogram=small_histogram)
        values = [row.probability_h_given_true for row in rows]
        assert values[-1] > values[0]

    def test_threshold_validation(self, small_table):
        with pytest.raises(ValidationError):
            empirical_stratum_probabilities(small_table, [0.0])

    def test_as_dict_keys(self, small_table, small_histogram):
        row = empirical_stratum_probabilities(small_table, [0.5], histogram=small_histogram)[0]
        assert set(row.as_dict()) == {"tau", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)", "J", "N_H", "J_H"}

    def test_builds_histogram_when_not_supplied(self, small_table):
        rows = empirical_stratum_probabilities(small_table, [0.9])
        assert rows[0].join_size >= 0


class TestRegimeBoundaries:
    def test_boundaries(self):
        boundaries = regime_boundaries(1024)
        assert boundaries["alpha_threshold"] == pytest.approx(10 / 1024)
        assert boundaries["beta_high_threshold"] == pytest.approx(1 / 1024)

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            regime_boundaries(1)


class TestAlphaBetaTable:
    def test_table_structure(self, small_table, small_histogram):
        table = alpha_beta_table(small_table, THRESHOLDS, histogram=small_histogram)
        assert len(table["rows"]) == len(THRESHOLDS)
        assert {"tau", "alpha", "beta"} == set(table["rows"][0])
        assert "alpha_threshold" in table["boundaries"]

    def test_alpha_assumption_holds_on_synthetic_dblp(self, small_table, small_histogram):
        """The paper's working assumption α ≥ log n / n should hold for any
        reasonably built LSH table (sanity check mirroring Table 2)."""
        table = alpha_beta_table(small_table, [0.5, 0.7, 0.9], histogram=small_histogram)
        boundary = table["boundaries"]["alpha_threshold"]
        for row in table["rows"]:
            assert row["alpha"] >= boundary
