"""Tests for the All-Pairs join and the Jaccard set join."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.join import all_pairs_join, exact_join_size
from repro.join.allpairs import all_pairs_join_size
from repro.vectors import VectorCollection


class TestAllPairsJoin:
    def test_size_matches_exact_oracle(self, small_collection):
        for threshold in (0.5, 0.7, 0.9):
            assert all_pairs_join_size(small_collection, threshold) == exact_join_size(
                small_collection, threshold
            )

    def test_returned_similarities_satisfy_threshold(self, small_collection):
        results = all_pairs_join(small_collection, 0.6)
        assert all(similarity >= 0.6 - 1e-9 for _, _, similarity in results)

    def test_pairs_are_ordered_and_distinct(self, small_collection):
        results = all_pairs_join(small_collection, 0.6)
        assert all(u < v for u, v, _ in results)
        assert len({(u, v) for u, v, _ in results}) == len(results)

    def test_similarity_values_are_correct(self, tiny_collection):
        results = {(u, v): s for u, v, s in all_pairs_join(tiny_collection, 0.5)}
        assert results[(0, 1)] == pytest.approx(1.0)
        assert results[(0, 2)] == pytest.approx(1.0 / np.sqrt(2.0))

    def test_empty_result_for_dissimilar_vectors(self):
        collection = VectorCollection.from_dense(np.eye(5))
        assert all_pairs_join(collection, 0.5) == []

    def test_threshold_validation(self, tiny_collection):
        with pytest.raises(ValidationError):
            all_pairs_join(tiny_collection, 0.0)

    def test_max_pairs_guard(self, tiny_collection):
        with pytest.raises(ValidationError):
            all_pairs_join(tiny_collection, 0.1, max_pairs=1)


class TestJaccardSetJoin:
    def test_matches_brute_force(self):
        from repro.join.setjoin import brute_force_jaccard_join, jaccard_set_join

        rng = np.random.default_rng(0)
        sets = [set(rng.choice(40, size=rng.integers(3, 10), replace=False).tolist()) for _ in range(60)]
        # plant duplicates
        sets[10] = set(sets[3])
        sets[20] = set(sets[3]) | {99}
        for threshold in (0.4, 0.6, 0.9):
            filtered = {(i, j) for i, j, _ in jaccard_set_join(sets, threshold)}
            brute = {(i, j) for i, j, _ in brute_force_jaccard_join(sets, threshold)}
            assert filtered == brute

    def test_exact_duplicates_found(self):
        from repro.join import jaccard_set_join

        sets = [{1, 2, 3}, {1, 2, 3}, {4, 5}]
        results = jaccard_set_join(sets, 1.0)
        assert [(u, v) for u, v, _ in results] == [(0, 1)]

    def test_threshold_validation(self):
        from repro.join import jaccard_set_join

        with pytest.raises(ValidationError):
            jaccard_set_join([{1}], 0.0)

    def test_size_helper(self):
        from repro.join.setjoin import jaccard_set_join_size

        sets = [{1, 2}, {1, 2}, {1, 3}, {7, 8}]
        assert jaccard_set_join_size(sets, 0.3) == 3
        assert jaccard_set_join_size(sets, 0.99) == 1
