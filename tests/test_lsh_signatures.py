"""Tests for signature helpers and prefix-collision counts."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lsh import MinHashFamily, SignRandomProjectionFamily, signature_matrix
from repro.lsh.signatures import (
    collision_pair_count,
    group_by_signature,
    pack_signature,
    prefix_collision_counts,
    signature_keys,
)


@pytest.fixture
def signatures():
    return np.array(
        [
            [1, 0, 1],
            [1, 0, 1],
            [1, 0, 0],
            [0, 1, 1],
        ],
        dtype=np.int64,
    )


class TestSignatureKeys:
    def test_full_keys_distinguish_rows(self, signatures):
        keys = signature_keys(signatures)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]
        assert len(keys) == 4

    def test_prefix_keys_merge_rows(self, signatures):
        keys = signature_keys(signatures, prefix_length=2)
        assert keys[0] == keys[1] == keys[2]
        assert keys[3] != keys[0]

    def test_invalid_prefix_length(self, signatures):
        with pytest.raises(ValidationError):
            signature_keys(signatures, prefix_length=0)
        with pytest.raises(ValidationError):
            signature_keys(signatures, prefix_length=4)

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ValidationError):
            signature_keys(np.array([1, 2, 3]))


class TestGrouping:
    def test_group_by_signature(self, signatures):
        groups = group_by_signature(signatures)
        sizes = sorted(ids.size for ids in groups.values())
        assert sizes == [1, 1, 2]

    def test_group_by_prefix(self, signatures):
        groups = group_by_signature(signatures, prefix_length=1)
        sizes = sorted(ids.size for ids in groups.values())
        assert sizes == [1, 3]

    def test_collision_pair_count(self):
        assert collision_pair_count(np.array([1, 2, 3, 4])) == 0 + 1 + 3 + 6
        assert collision_pair_count(np.array([], dtype=np.int64)) == 0


class TestPrefixCollisionCounts:
    def test_counts_are_non_increasing(self, signatures):
        counts = prefix_collision_counts(signatures)
        assert list(counts) == [3, 3, 1]
        assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))

    def test_counts_on_real_family(self, small_collection):
        family = SignRandomProjectionFamily(10, random_state=2)
        signatures = signature_matrix(family, small_collection)
        counts = prefix_collision_counts(signatures)
        assert counts.shape == (10,)
        assert np.all(np.diff(counts) <= 0)
        # the last value is exactly the number of co-bucket pairs N_H
        from repro.lsh import LSHTable

        table = LSHTable(family, small_collection, signatures=signatures)
        assert counts[-1] == table.num_collision_pairs

    def test_minhash_prefix_counts_estimate_moments(self, binary_collection):
        """For MinHash the expected prefix count equals the sum of s^j over
        pairs; for j=1 this is the sum of pairwise Jaccard similarities."""
        trials = 60
        first_counts = []
        for seed in range(trials):
            family = MinHashFamily(1, random_state=seed)
            signatures = signature_matrix(family, binary_collection)
            first_counts.append(prefix_collision_counts(signatures)[0])
        from repro.vectors import jaccard_similarity

        supports = [set(binary_collection.row_support(i).tolist()) for i in range(6)]
        expected = sum(
            jaccard_similarity(supports[i], supports[j])
            for i in range(6)
            for j in range(i + 1, 6)
        )
        assert np.mean(first_counts) == pytest.approx(expected, rel=0.35)

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValidationError):
            prefix_collision_counts(np.array([1, 2, 3]))


class TestPackSignature:
    def test_pack_is_hashable_tuple(self):
        packed = pack_signature(np.array([1, 2, 3]))
        assert packed == (1, 2, 3)
        assert hash(packed) is not None
