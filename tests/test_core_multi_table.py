"""Tests for the multi-table extensions (median / virtual-bucket estimators)."""

import numpy as np
import pytest

from repro.core import LSHSSEstimator, MedianEstimator, VirtualBucketEstimator


class TestMedianEstimator:
    def test_median_of_per_table_estimates(self, small_index):
        estimator = MedianEstimator(small_index, lambda table: LSHSSEstimator(table))
        estimate = estimator.estimate(0.5, random_state=0)
        per_table = estimate.details["per_table_estimates"]
        assert len(per_table) == len(small_index)
        assert estimate.value == pytest.approx(float(np.median(per_table)))

    def test_value_within_range_of_table_estimates(self, small_index):
        estimator = MedianEstimator(small_index, lambda table: LSHSSEstimator(table))
        estimate = estimator.estimate(0.3, random_state=1)
        per_table = estimate.details["per_table_estimates"]
        assert min(per_table) <= estimate.value <= max(per_table)

    def test_custom_name(self, small_index):
        estimator = MedianEstimator(
            small_index, lambda table: LSHSSEstimator(table), name="median-custom"
        )
        assert estimator.name == "median-custom"

    def test_deterministic_given_seed(self, small_index):
        estimator = MedianEstimator(small_index, lambda table: LSHSSEstimator(table))
        assert (
            estimator.estimate(0.6, random_state=5).value
            == estimator.estimate(0.6, random_state=5).value
        )

    def test_total_pairs(self, small_index, small_collection):
        estimator = MedianEstimator(small_index, lambda table: LSHSSEstimator(table))
        assert estimator.total_pairs == small_collection.total_pairs

    def test_variance_not_larger_than_single_table(self, small_index, small_histogram):
        """Taking the median across tables should not increase the spread of
        estimates compared with a single table (the §B.2.1 argument)."""
        threshold = 0.5
        single = LSHSSEstimator(small_index.primary_table)
        median = MedianEstimator(small_index, lambda table: LSHSSEstimator(table))
        single_values = [single.estimate(threshold, random_state=s).value for s in range(12)]
        median_values = [median.estimate(threshold, random_state=s).value for s in range(12)]
        assert np.std(median_values) <= np.std(single_values) * 1.5


class TestVirtualBucketEstimator:
    def test_virtual_stratum_at_least_single_table(self, small_index):
        estimator = VirtualBucketEstimator(small_index)
        assert (
            estimator.num_virtual_collision_pairs
            >= small_index.primary_table.num_collision_pairs
        )

    def test_estimate_in_range(self, small_index):
        estimator = VirtualBucketEstimator(small_index)
        for threshold in (0.2, 0.6, 0.9):
            value = estimator.estimate(threshold, random_state=0).value
            assert 0.0 <= value <= estimator.total_pairs

    def test_details_report_virtual_pairs(self, small_index):
        estimator = VirtualBucketEstimator(small_index)
        details = estimator.estimate(0.5, random_state=2).details
        assert details["num_virtual_collision_pairs"] == estimator.num_virtual_collision_pairs

    def test_estimate_is_sum_of_strata(self, small_index):
        estimate = VirtualBucketEstimator(small_index).estimate(0.7, random_state=3)
        assert estimate.value == pytest.approx(
            estimate.details["stratum_h"] + estimate.details["stratum_l"]
        )

    def test_deterministic_given_seed(self, small_index):
        estimator = VirtualBucketEstimator(small_index)
        assert (
            estimator.estimate(0.8, random_state=9).value
            == estimator.estimate(0.8, random_state=9).value
        )

    def test_dampening_accepted(self, small_index):
        estimator = VirtualBucketEstimator(small_index, dampening="auto")
        assert estimator.estimate(0.6, random_state=1).value >= 0.0

    def test_improves_high_threshold_coverage_over_single_table(
        self, small_index, small_histogram
    ):
        """The virtual stratum H captures at least as many of the true pairs as
        a single table's stratum H, so the high-threshold estimate should not
        be smaller on average (the §B.2.1 motivation for virtual buckets)."""
        threshold = 0.9
        single = LSHSSEstimator(small_index.primary_table)
        virtual = VirtualBucketEstimator(small_index)
        single_mean = np.mean(
            [single.estimate(threshold, random_state=s).value for s in range(10)]
        )
        virtual_mean = np.mean(
            [virtual.estimate(threshold, random_state=s).value for s in range(10)]
        )
        assert virtual_mean >= 0.8 * single_mean
