"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds of vectors) so the whole suite
runs in a couple of minutes; the benchmark suite owns the larger,
paper-scale collections.  Expensive fixtures are session-scoped and
deterministic (fixed seeds) so tests can assert on stable quantities.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# the churn-log fixture delegates to benchmarks._helpers so tests and
# benchmark gates replay identical streams; keep that import working when
# pytest is invoked from outside the repo root
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datasets import make_dblp_like, make_nyt_like
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex, LSHTable, SignRandomProjectionFamily
from repro.vectors import VectorCollection


# @pytest.mark.timeout(seconds) → hard SIGALRM deadline, so the
# multi-process cluster tests fail fast on a deadlocked worker instead
# of hanging the job; one implementation shared with benchmarks/conftest
from benchmarks._helpers import hard_timeout_runtest_call as pytest_runtest_call  # noqa: E402,F401

# ----------------------------------------------------------------------
# runtime lockdep (REPRO_LOCKDEP=1): swap tracked lock wrappers into the
# serving path for the whole suite, dump the observed lock-order graph at
# session end, and fail the run on any potential-deadlock cycle.
# Installed at import time — ahead of every fixture — because only
# primitives constructed *after* install() are tracked.
# ----------------------------------------------------------------------
import os  # noqa: E402

_LOCKDEP_STATE = None
if os.environ.get("REPRO_LOCKDEP") == "1":
    from repro.analysis import lockdep as _lockdep

    _LOCKDEP_STATE = _lockdep.install()

# ----------------------------------------------------------------------
# runtime schema witness (REPRO_SCHEMA=1): wrap every to_state/from_state
# on the snapshot-bearing classes, record the key-sets the suite actually
# touches, and dump them at session end for `repro schema-report` to
# check against the static model (observed ⊆ static, else the extractor
# lost a flow path).  Installed at import time, before any fixture can
# bind a method reference.
# ----------------------------------------------------------------------
_SCHEMA_WITNESS = None
if os.environ.get("REPRO_SCHEMA") == "1":
    from repro.analysis import schema as _schema

    _SCHEMA_WITNESS = _schema.install_witness()


def pytest_sessionfinish(session, exitstatus):
    import json

    if _SCHEMA_WITNESS is not None:
        observed = _SCHEMA_WITNESS.to_dict()
        observed_path = os.environ.get(
            "REPRO_SCHEMA_OBSERVED", "schema_observed.json"
        )
        with open(observed_path, "w", encoding="utf-8") as handle:
            json.dump(observed, handle, indent=2, sort_keys=True)
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        keys = sum(len(names) for names in observed["observed"].values())
        line = (
            f"schema: {len(observed['observed'])} witnessed entr(ies), "
            f"{keys} key(s) -> {observed_path}"
        )
        if reporter is not None:
            reporter.write_line(line)
        else:
            print(line)

    if _LOCKDEP_STATE is None:
        return
    graph = _LOCKDEP_STATE.graph()
    graph_path = os.environ.get("REPRO_LOCKDEP_GRAPH", "lockdep_graph.json")
    with open(graph_path, "w", encoding="utf-8") as handle:
        json.dump(graph, handle, indent=2, sort_keys=True)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    lines = [
        f"lockdep: {len(graph['locks'])} lock(s), {graph['acquires']} "
        f"acquire(s), {len(graph['edges'])} ordered edge(s) -> {graph_path}"
    ]
    lines += [f"lockdep CYCLE: {' -> '.join(cycle)}" for cycle in graph["cycles"]]
    for line in lines:
        if reporter is not None:
            reporter.write_line(line)
        else:
            print(line)
    if graph["cycles"]:
        # a lock-order cycle is a potential deadlock even though this
        # run survived it — fail the session
        session.exitstatus = 1


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator for individual tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def churn_log_factory():
    """Shared generator of insert/delete churn logs (streaming/shard tests).

    Returns ``make(collection, operations, *, seed=42, checkpoint=False)``,
    delegating to :func:`benchmarks._helpers.churn_log` so the test
    properties and the benchmark gates replay the *same* canonical event
    stream (~30% deletes of a random live id, the rest inserts of random
    corpus rows, ids assigned sequentially).
    """
    from benchmarks._helpers import churn_log
    from repro.streaming import Checkpoint

    def make(collection, operations, *, seed=42, checkpoint=False):
        log = churn_log(collection, operations, seed=seed)
        if checkpoint:
            log.append(Checkpoint("end"))
        return log

    return make


@pytest.fixture
def tiny_collection() -> VectorCollection:
    """Six hand-written 4-dimensional vectors with known similarities."""
    return VectorCollection.from_dense(
        [
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],  # exact duplicate of row 0
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )


@pytest.fixture
def binary_collection() -> VectorCollection:
    """A small binary collection built from token sets."""
    token_sets = [
        {0, 1, 2, 3},
        {0, 1, 2, 3},        # duplicate of record 0
        {0, 1, 2, 4},        # one-token difference
        {5, 6, 7},
        {5, 6, 7, 8, 9},
        {10, 11},
    ]
    return VectorCollection.from_token_sets(token_sets, dimension=12)


@pytest.fixture(scope="session")
def small_corpus():
    """A DBLP-like synthetic corpus of 400 vectors (session-scoped)."""
    return make_dblp_like(num_vectors=400, random_state=3)


@pytest.fixture(scope="session")
def small_collection(small_corpus) -> VectorCollection:
    return small_corpus.collection


@pytest.fixture(scope="session")
def small_tfidf_corpus():
    """An NYT-like synthetic TF-IDF corpus of 300 vectors (session-scoped)."""
    return make_nyt_like(num_vectors=300, random_state=5)


@pytest.fixture(scope="session")
def small_histogram(small_collection) -> SimilarityHistogram:
    """Exact similarity histogram of the small DBLP-like collection."""
    return SimilarityHistogram(small_collection, num_bins=1000)


@pytest.fixture(scope="session")
def small_table(small_collection) -> LSHTable:
    """A k=12 cosine LSH table over the small collection."""
    family = SignRandomProjectionFamily(12, random_state=17)
    return LSHTable(family, small_collection)


@pytest.fixture(scope="session")
def small_index(small_collection) -> LSHIndex:
    """A 3-table, k=12 LSH index over the small collection."""
    return LSHIndex(small_collection, num_hashes=12, num_tables=3, random_state=19)
