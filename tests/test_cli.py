"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "--threshold", "0.8"])
        assert args.command == "estimate"
        assert args.profile == "dblp"
        assert args.estimators == ["lsh-ss", "rs"]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.trials == 5
        assert 0.9 in args.thresholds

    def test_probabilities_profile_choice(self):
        args = build_parser().parse_args(["probabilities", "--profile", "nyt"])
        assert args.profile == "nyt"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--threshold", "0.5", "--profile", "wiki"])

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--threshold", "0.5", "--estimators", "magic"]
            )

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    COMMON = ["--num-vectors", "300", "--num-hashes", "8", "--seed", "1"]

    def test_estimate_command_output(self, capsys):
        exit_code = main(
            ["estimate", "--threshold", "0.8", "--estimators", "lsh-ss", "ju", *self.COMMON]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LSH-SS" in captured.out
        assert "exact join" in captured.out

    def test_estimate_no_exact(self, capsys):
        exit_code = main(
            ["estimate", "--threshold", "0.8", "--no-exact", "--estimators", "rs", *self.COMMON]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "exact join" not in captured.out

    def test_estimate_invalid_threshold_returns_error_code(self, capsys):
        exit_code = main(["estimate", "--threshold", "1.5", *self.COMMON])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_sweep_command_output(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--thresholds", "0.5", "0.9",
                "--trials", "2",
                "--estimators", "lsh-ss", "rs",
                *self.COMMON,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LSH-SS over%" in captured.out
        assert "0.9" in captured.out

    def test_probabilities_command_output(self, capsys):
        exit_code = main(["probabilities", "--thresholds", "0.5", "0.9", *self.COMMON])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "P(T|H)" in captured.out

    def test_all_estimator_names_buildable(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--threshold", "0.9",
                "--no-exact",
                "--estimators", "lsh-ss", "lsh-ss-d", "lsh-s", "ju", "lc", "rs", "rs-cross",
                *self.COMMON,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for label in ("LSH-SS", "LSH-SS(D)", "LSH-S", "J_U", "LC", "RS(pop)", "RS(cross)"):
            assert label in captured.out
