"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "--threshold", "0.8"])
        assert args.command == "estimate"
        assert args.profile == "dblp"
        # None = "not explicitly chosen"; the command fills in lsh-ss rs
        # (and can therefore reject an explicit list on single-estimator backends)
        assert args.estimators is None

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.trials == 5
        assert 0.9 in args.thresholds

    def test_probabilities_profile_choice(self):
        args = build_parser().parse_args(["probabilities", "--profile", "nyt"])
        assert args.profile == "nyt"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--threshold", "0.5", "--profile", "wiki"])

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--threshold", "0.5", "--estimators", "magic"]
            )

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    COMMON = ["--num-vectors", "300", "--num-hashes", "8", "--seed", "1"]

    def test_estimate_command_output(self, capsys):
        exit_code = main(
            ["estimate", "--threshold", "0.8", "--estimators", "lsh-ss", "ju", *self.COMMON]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LSH-SS" in captured.out
        assert "exact join" in captured.out

    def test_estimate_no_exact(self, capsys):
        exit_code = main(
            ["estimate", "--threshold", "0.8", "--no-exact", "--estimators", "rs", *self.COMMON]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "exact join" not in captured.out

    def test_estimate_invalid_threshold_returns_error_code(self, capsys):
        exit_code = main(["estimate", "--threshold", "1.5", *self.COMMON])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_sweep_command_output(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--thresholds", "0.5", "0.9",
                "--trials", "2",
                "--estimators", "lsh-ss", "rs",
                *self.COMMON,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LSH-SS over%" in captured.out
        assert "0.9" in captured.out

    def test_probabilities_command_output(self, capsys):
        exit_code = main(["probabilities", "--thresholds", "0.5", "0.9", *self.COMMON])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "P(T|H)" in captured.out

    def test_all_estimator_names_buildable(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--threshold", "0.9",
                "--no-exact",
                "--estimators", "lsh-ss", "lsh-ss-d", "lsh-s", "ju", "lc", "rs", "rs-cross",
                *self.COMMON,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for label in ("LSH-SS", "LSH-SS(D)", "LSH-S", "J_U", "LC", "RS(pop)", "RS(cross)"):
            assert label in captured.out


class TestStreamCommand:
    @staticmethod
    def _write_log(path, *, num_vectors=60, dimension=12, dense=True):
        import json

        import numpy as np

        rng = np.random.default_rng(0)
        lines = []
        for i in range(num_vectors):
            values = (rng.random(dimension) < 0.4).astype(float)
            if dense:
                lines.append(json.dumps({"op": "insert", "dense": values.tolist()}))
            else:
                vector = {str(j): v for j, v in enumerate(values) if v}
                lines.append(json.dumps({"op": "insert", "vector": vector}))
            if i and i % 9 == 0:
                lines.append(json.dumps({"op": "delete", "id": i - 4}))
        lines.append(json.dumps({"op": "checkpoint", "label": "done"}))
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream", "--events", "log.jsonl"])
        assert args.command == "stream"
        assert args.threshold == 0.8
        assert args.batch_size == 100
        assert args.mode == "auto"

    def test_stream_command_output(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl")
        exit_code = main(
            ["stream", "--events", str(log), "--threshold", "0.7",
             "--batch-size", "20", "--num-hashes", "6", "--seed", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "N_H" in captured.out
        assert "done" in captured.out          # checkpoint label appears
        assert "batch of 20" in captured.out   # batch boundary emission

    def test_stream_exact_mode(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        exit_code = main(
            ["stream", "--events", str(log), "--mode", "exact",
             "--batch-size", "10", "--num-hashes", "6"]
        )
        assert exit_code == 0
        assert "N_L" in capsys.readouterr().out

    def test_stream_sparse_vectors_need_dimension(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", dense=False)
        exit_code = main(["stream", "--events", str(log), "--num-hashes", "6"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "dimension" in captured.err
        exit_code = main(
            ["stream", "--events", str(log), "--num-hashes", "6", "--dimension", "12"]
        )
        assert exit_code == 0

    def test_stream_missing_file(self, capsys, tmp_path):
        exit_code = main(["stream", "--events", str(tmp_path / "nope.jsonl")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_stream_invalid_batch_size(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=5)
        exit_code = main(["stream", "--events", str(log), "--batch-size", "0"])
        assert exit_code == 2


class TestShardCommand:
    _write_log = staticmethod(TestStreamCommand._write_log)

    def test_shard_command_output(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl")
        exit_code = main(
            ["shard", "--events", str(log), "--shards", "3", "--threshold", "0.7",
             "--batch-size", "20", "--num-hashes", "6", "--seed", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "3 shards" in captured.out
        assert "per-shard n" in captured.out
        assert "done" in captured.out          # checkpoint label appears
        assert "batch of 20" in captured.out   # batch boundary emission

    def test_shard_exact_mode_matches_unsharded_strata(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        exit_code = main(
            ["shard", "--events", str(log), "--mode", "exact", "--num-hashes", "6"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mode=exact" in captured.out

    def test_shard_snapshot_written(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        snapshot = tmp_path / "cluster.pkl"
        exit_code = main(
            ["shard", "--events", str(log), "--num-hashes", "6",
             "--snapshot", str(snapshot)]
        )
        capsys.readouterr()
        assert exit_code == 0
        assert snapshot.exists()
        from repro.shard import ShardedMutableIndex

        revived = ShardedMutableIndex.restore(snapshot)
        revived.check_invariants()

    def test_shard_missing_file(self, capsys, tmp_path):
        exit_code = main(["shard", "--events", str(tmp_path / "nope.jsonl")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_shard_sparse_log_requires_dimension(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", dense=False)
        exit_code = main(["shard", "--events", str(log), "--num-hashes", "6"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "dimension" in captured.err


class TestRebalanceCommand:
    _write_log = staticmethod(TestStreamCommand._write_log)

    def _snapshot(self, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        snapshot = tmp_path / "cluster.pkl"
        assert main(
            ["shard", "--events", str(log), "--num-hashes", "6", "--shards", "2",
             "--partitioner", "rendezvous", "--snapshot", str(snapshot)]
        ) == 0
        return snapshot

    def test_dry_run_prints_plan_without_writing(self, capsys, tmp_path):
        snapshot = self._snapshot(tmp_path)
        capsys.readouterr()
        exit_code = main(
            ["rebalance", "--snapshot", str(snapshot), "--shards", "3",
             "--threshold", "0.7"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dry run" in captured.out
        assert "moved fraction" in captured.out

    def test_apply_writes_rebalanced_snapshot(self, capsys, tmp_path):
        snapshot = self._snapshot(tmp_path)
        output = tmp_path / "cluster3.pkl"
        capsys.readouterr()
        exit_code = main(
            ["rebalance", "--snapshot", str(snapshot), "--shards", "3",
             "--threshold", "0.7", "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "written to" in captured.out
        from repro.shard import ShardedMutableIndex

        revived = ShardedMutableIndex.restore(output)
        revived.check_invariants()
        assert revived.num_shards == 3
        assert revived.partitioner.kind == "rendezvous"

    def test_missing_snapshot(self, capsys, tmp_path):
        exit_code = main(["rebalance", "--snapshot", str(tmp_path / "nope.pkl")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_rebalance_raw_cluster_snapshot(self, capsys, tmp_path):
        """Pre-engine snapshots (bare ShardedMutableIndex files) still work."""
        import numpy as np

        from repro.shard import ShardedMutableIndex

        rng = np.random.default_rng(0)
        index = ShardedMutableIndex(
            8, num_shards=2, num_hashes=6, random_state=5, partitioner="rendezvous"
        )
        index.insert_many((rng.random((40, 8)) < 0.4).astype(float))
        snapshot = tmp_path / "raw.pkl"
        index.snapshot(snapshot)
        output = tmp_path / "raw3.pkl"
        exit_code = main(
            ["rebalance", "--snapshot", str(snapshot), "--shards", "3",
             "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "written to" in captured.out
        revived = ShardedMutableIndex.restore(output)
        assert revived.num_shards == 3


class TestEngineConfigCLI:
    """The one --config path every serving command shares."""

    _write_log = staticmethod(TestStreamCommand._write_log)

    @staticmethod
    def _config_file(tmp_path, payload):
        import json

        path = tmp_path / "engine.json"
        path.write_text(json.dumps(payload))
        return path

    def test_estimate_with_sharded_config(self, capsys, tmp_path):
        config = self._config_file(tmp_path, {
            "backend": "sharded", "num_hashes": 6, "seed": 1,
            "options": {"num_shards": 3, "partitioner": "rendezvous"},
        })
        exit_code = main(
            ["estimate", "--config", str(config), "--threshold", "0.8",
             "--num-vectors", "200"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend=sharded" in captured.out
        assert "LSH-SS(sharded)" in captured.out
        assert "exact join" in captured.out

    def test_estimate_honours_config_default_estimator(self, capsys, tmp_path):
        """options['estimator'] wins when --estimators is not given."""
        config = self._config_file(tmp_path, {
            "backend": "static", "num_hashes": 6, "options": {"estimator": "ju"},
        })
        exit_code = main(
            ["estimate", "--config", str(config), "--threshold", "0.8",
             "--num-vectors", "200", "--no-exact"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "J_U" in captured.out
        assert "LSH-SS" not in captured.out

    def test_estimate_rejects_explicit_estimators_on_non_static(self, capsys, tmp_path):
        """Asking for estimator flavors a backend cannot serve is an error."""
        config = self._config_file(tmp_path, {
            "backend": "sharded", "num_hashes": 6, "options": {"num_shards": 2},
        })
        exit_code = main(
            ["estimate", "--config", str(config), "--threshold", "0.8",
             "--num-vectors", "200", "--estimators", "lsh-s", "lc"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "single estimator" in captured.err

    def test_estimate_with_streaming_config(self, capsys, tmp_path):
        config = self._config_file(tmp_path, {"backend": "streaming", "num_hashes": 6})
        exit_code = main(
            ["estimate", "--config", str(config), "--threshold", "0.8",
             "--num-vectors", "200", "--no-exact"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LSH-SS(stream)" in captured.out

    def test_estimate_matches_flag_construction(self, capsys, tmp_path):
        """A static config file and the legacy flags serve identical numbers."""
        config = self._config_file(tmp_path, {
            "backend": "static", "num_hashes": 8, "seed": 1,
        })
        common = ["--threshold", "0.8", "--num-vectors", "200", "--seed", "1",
                  "--estimators", "lsh-ss", "--no-exact"]
        assert main(["estimate", "--config", str(config), *common]) == 0
        via_config = capsys.readouterr().out
        assert main(["estimate", "--num-hashes", "8", *common]) == 0
        via_flags = capsys.readouterr().out
        config_rows = [l for l in via_config.splitlines() if l.startswith("LSH-SS")]
        flag_rows = [l for l in via_flags.splitlines() if l.startswith("LSH-SS")]
        assert config_rows == flag_rows != []

    def test_invalid_config_file_is_cli_error(self, capsys, tmp_path):
        bad = tmp_path / "engine.json"
        bad.write_text("{not json")
        exit_code = main(["estimate", "--config", str(bad), "--threshold", "0.8"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not valid JSON" in captured.err

    def test_stream_rejects_static_config(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=10)
        config = self._config_file(tmp_path, {"backend": "static"})
        exit_code = main(["stream", "--events", str(log), "--config", str(config)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "immutable" in captured.err

    def test_stream_with_sharded_config(self, capsys, tmp_path):
        """The stream command serves any mutable backend the config names."""
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        config = self._config_file(tmp_path, {
            "backend": "sharded", "num_hashes": 6, "options": {"num_shards": 2},
        })
        exit_code = main(
            ["stream", "--events", str(log), "--config", str(config),
             "--batch-size", "10", "--mode", "exact"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend=sharded" in captured.out

    def test_shard_rejects_non_sharded_config(self, capsys, tmp_path):
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=10)
        config = self._config_file(tmp_path, {"backend": "streaming", "num_hashes": 6})
        exit_code = main(["shard", "--events", str(log), "--config", str(config)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "sharded" in captured.err

    def test_shard_config_snapshot_rebalance_round_trip(self, capsys, tmp_path):
        """config → shard → snapshot → rebalance: the full engine loop."""
        log = self._write_log(tmp_path / "events.jsonl", num_vectors=30)
        config = self._config_file(tmp_path, {
            "backend": "sharded", "num_hashes": 6, "seed": 3,
            "options": {"num_shards": 2, "partitioner": "rendezvous"},
        })
        snapshot = tmp_path / "engine.pkl"
        assert main(
            ["shard", "--events", str(log), "--config", str(config),
             "--batch-size", "10", "--snapshot", str(snapshot)]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["rebalance", "--snapshot", str(snapshot), "--shards", "3",
             "--threshold", "0.7", "--output", str(tmp_path / "out.pkl")]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "written to" in captured.out
        from repro.engine import JoinEstimationEngine

        engine = JoinEstimationEngine.restore(tmp_path / "out.pkl")
        assert engine.config.num_hashes == 6  # config travelled with the snapshot
        assert engine.backend.index.num_shards == 3
        engine.close()
