"""Tests for the exact join oracle (block-wise sparse products)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.join import exact_join_size, exact_join_sizes, exact_general_join_size
from repro.join.exact import exact_general_join_sizes, join_selectivity
from repro.vectors import VectorCollection, cosine_similarity_matrix


def brute_force_join_size(collection, threshold):
    matrix = cosine_similarity_matrix(collection)
    n = collection.size
    count = 0
    for i in range(n):
        for j in range(i + 1, n):
            if matrix[i, j] >= threshold - 1e-12:
                count += 1
    return count


class TestExactJoinSizes:
    def test_matches_brute_force_on_tiny_collection(self, tiny_collection):
        for threshold in (0.1, 0.5, 0.7, 0.99, 1.0):
            assert exact_join_size(tiny_collection, threshold) == brute_force_join_size(
                tiny_collection, threshold
            )

    def test_matches_brute_force_on_random_collection(self):
        rng = np.random.default_rng(1)
        collection = VectorCollection.from_dense(np.abs(rng.standard_normal((60, 8))))
        for threshold in (0.2, 0.5, 0.8, 0.95):
            assert exact_join_size(collection, threshold) == brute_force_join_size(
                collection, threshold
            )

    def test_monotone_in_threshold(self, small_collection):
        thresholds = [0.1, 0.3, 0.5, 0.7, 0.9]
        sizes = exact_join_sizes(small_collection, thresholds)
        assert np.all(np.diff(sizes) <= 0)

    def test_block_size_independence(self, small_collection):
        a = exact_join_sizes(small_collection, [0.3, 0.8], block_size=32)
        b = exact_join_sizes(small_collection, [0.3, 0.8], block_size=4096)
        np.testing.assert_array_equal(a, b)

    def test_duplicates_counted_once_per_pair(self):
        collection = VectorCollection.from_dense([[1.0, 0.0]] * 4)
        assert exact_join_size(collection, 0.99) == 6

    def test_threshold_validation(self, tiny_collection):
        with pytest.raises(ValidationError):
            exact_join_size(tiny_collection, 0.0)
        with pytest.raises(ValidationError):
            exact_join_size(tiny_collection, 1.5)
        with pytest.raises(ValidationError):
            exact_join_sizes(tiny_collection, [])

    def test_invalid_block_size(self, tiny_collection):
        with pytest.raises(ValidationError):
            exact_join_sizes(tiny_collection, [0.5], block_size=0)

    def test_selectivity(self, tiny_collection):
        selectivity = join_selectivity(tiny_collection, 0.99)
        assert selectivity == pytest.approx(1.0 / tiny_collection.total_pairs)


class TestGeneralJoin:
    def test_matches_brute_force(self, tiny_collection):
        other = VectorCollection.from_dense(
            [[1.0, 0.0, 0.0, 0.0], [0.0, 0.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0]]
        )
        matrix = cosine_similarity_matrix(tiny_collection, other)
        for threshold in (0.3, 0.7, 0.99):
            expected = int(np.count_nonzero(matrix >= threshold - 1e-12))
            assert exact_general_join_size(tiny_collection, other, threshold) == expected

    def test_no_distinctness_constraint(self, tiny_collection):
        # joining a collection with itself counts ordered pairs incl. self-matches
        size = exact_general_join_size(tiny_collection, tiny_collection, 0.999)
        self_join = exact_join_size(tiny_collection, 0.999)
        assert size == 2 * self_join + tiny_collection.size

    def test_dimension_mismatch(self, tiny_collection):
        other = VectorCollection.from_dense([[1.0, 2.0]])
        with pytest.raises(ValidationError):
            exact_general_join_size(tiny_collection, other, 0.5)

    def test_threshold_grid(self, tiny_collection):
        other = tiny_collection
        sizes = exact_general_join_sizes(tiny_collection, other, [0.2, 0.6, 0.95])
        assert np.all(np.diff(sizes) <= 0)
