"""Tests for the RS(pop) and RS(cross) baselines."""

import numpy as np
import pytest

from repro.core import CrossSampling, RandomPairSampling
from repro.core.random_sampling import default_random_sampling_size
from repro.errors import ValidationError
from repro.join import exact_join_size
from repro.vectors import VectorCollection


class TestDefaults:
    def test_default_sample_size_is_1_5n(self):
        assert default_random_sampling_size(1000) == 1500
        assert default_random_sampling_size(1) == 2  # rounded, at least 1


class TestRandomPairSampling:
    def test_estimate_in_feasible_range(self, small_collection):
        estimator = RandomPairSampling(small_collection)
        estimate = estimator.estimate(0.5, random_state=0)
        assert 0.0 <= estimate.value <= small_collection.total_pairs

    def test_unbiasedness_at_low_threshold(self, small_collection, small_histogram):
        true_size = small_histogram.join_size(0.2)
        estimator = RandomPairSampling(small_collection, sample_size=4000)
        estimates = [estimator.estimate(0.2, random_state=seed).value for seed in range(30)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.15)

    def test_zero_when_no_true_pair_sampled(self):
        collection = VectorCollection.from_dense(np.eye(20))
        estimator = RandomPairSampling(collection, sample_size=50)
        assert estimator.estimate(0.9, random_state=0).value == 0.0

    def test_high_threshold_fluctuation(self, small_collection, small_histogram):
        """The paper's motivating failure: at high thresholds RS mostly returns 0
        and occasionally a huge scaled-up value."""
        true_size = small_histogram.join_size(0.9)
        assert true_size > 0
        estimator = RandomPairSampling(small_collection)
        values = np.array(
            [estimator.estimate(0.9, random_state=seed).value for seed in range(40)]
        )
        assert np.count_nonzero(values == 0.0) > 5
        assert values.max() > 2 * true_size

    def test_details_recorded(self, small_collection):
        estimate = RandomPairSampling(small_collection, sample_size=100).estimate(
            0.3, random_state=1
        )
        assert estimate.details["sample_size"] == 100
        assert estimate.details["true_in_sample"] >= 0

    def test_deterministic_given_seed(self, small_collection):
        estimator = RandomPairSampling(small_collection)
        a = estimator.estimate(0.4, random_state=3).value
        b = estimator.estimate(0.4, random_state=3).value
        assert a == b

    def test_invalid_sample_size(self, small_collection):
        with pytest.raises(ValidationError):
            RandomPairSampling(small_collection, sample_size=0)

    def test_name(self, small_collection):
        assert RandomPairSampling(small_collection).name == "RS(pop)"


class TestCrossSampling:
    def test_estimate_in_feasible_range(self, small_collection):
        estimator = CrossSampling(small_collection)
        estimate = estimator.estimate(0.5, random_state=0)
        assert 0.0 <= estimate.value <= small_collection.total_pairs

    def test_roughly_unbiased_at_low_threshold(self, small_collection, small_histogram):
        true_size = small_histogram.join_size(0.1)
        estimator = CrossSampling(small_collection, sample_size=4000)
        estimates = [estimator.estimate(0.1, random_state=seed).value for seed in range(30)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.25)

    def test_details_report_pairs_considered(self, small_collection):
        estimate = CrossSampling(small_collection, sample_size=400).estimate(
            0.3, random_state=2
        )
        assert estimate.details["pairs_considered"] == 190  # C(20, 2)

    def test_exact_when_sample_covers_collection(self, tiny_collection):
        estimator = CrossSampling(tiny_collection, sample_size=10_000)
        estimate = estimator.estimate(0.99, random_state=0)
        assert estimate.value == exact_join_size(tiny_collection, 0.99)

    def test_invalid_sample_size(self, small_collection):
        with pytest.raises(ValidationError):
            CrossSampling(small_collection, sample_size=-5)

    def test_name(self, small_collection):
        assert CrossSampling(small_collection).name == "RS(cross)"
