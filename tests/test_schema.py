"""Tests for the snapshot-schema analyzer (src/repro/analysis/schema).

Per-rule true-positive + pragma-suppressed fixtures for R011/R012/R013,
a hypothesis property that *any* generated writer/reader key-set
mismatch is detected, pins of the real repo's extracted schema for
`MutableLSHIndex`/`ShardedMutableIndex`, runtime-witness round trips,
and the same self-check CI runs: the shipped source tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_paths
from repro.analysis.engine import load_project
from repro.analysis.schema import (
    RecordingMapping,
    SchemaWitness,
    active_witness,
    build_schema_model,
    build_schema_report_parser,
    install_witness,
    run_schema_report_from_args,
    unexplained_observations,
    uninstall_witness,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def lint_source(tmp_path: Path, source: str, *, name: str = "mod.py", select=None):
    """Write one fixture module and lint it with the selected rules."""
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_paths([str(path)], select=select)


def model_of(tmp_path: Path, source: str, *, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    project, errors = load_project([str(path)])
    assert not errors
    return build_schema_model(project)


def rule_ids(report):
    return [finding.rule for finding in report.findings]


PAIRED = """\
from typing import Mapping

class Box:
    def __init__(self, size: int, label: str) -> None:
        self.size = size
        self.label = label

    def to_state(self) -> dict:
        return {{"format": 1, {writes}}}

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        if state.get("format") != 1:
            raise ValueError("bad format")
        return cls({reads})
"""


# ----------------------------------------------------------------------
# R011 — schema parity
# ----------------------------------------------------------------------
class TestSchemaParity:
    def test_written_never_read_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            PAIRED.format(
                writes='"size": self.size, "label": self.label',
                reads='state["size"], "x"',
            ),
            select=["R011"],
        )
        assert rule_ids(report) == ["R011"]
        assert "'label'" in report.findings[0].message
        assert "never read" in report.findings[0].message

    def test_unguarded_read_never_written_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            PAIRED.format(
                writes='"size": self.size, "label": self.label',
                reads='state["size"], state["name"]',
            ),
            select=["R011"],
        )
        messages = [finding.message for finding in report.findings]
        assert rule_ids(report) == ["R011", "R011"]
        assert any("'name'" in message and "KeyError" in message for message in messages)
        # the unread 'label' write is also caught in the same pass
        assert any("'label'" in message for message in messages)

    def test_matched_schema_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            PAIRED.format(
                writes='"size": self.size, "label": self.label',
                reads='state["size"], state["label"]',
            ),
            select=["R011"],
        )
        assert rule_ids(report) == []

    def test_membership_guard_counts_as_read(self, tmp_path):
        source = PAIRED.format(
            writes='"size": self.size, "label": self.label',
            reads='state["size"], state["label"] if "label" in state else "x"',
        )
        report = lint_source(tmp_path, source, select=["R011"])
        assert rule_ids(report) == []

    def test_conditional_write_still_needs_reader(self, tmp_path):
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int) -> None:
        self.size = size
        self.extra = None

    def to_state(self) -> dict:
        state = {"format": 1, "size": self.size}
        if self.extra is not None:
            state["extra"] = self.extra
        return state

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        if state.get("format") != 1:
            raise ValueError("bad format")
        return cls(state["size"])
"""
        report = lint_source(tmp_path, source, select=["R011"])
        assert rule_ids(report) == ["R011"]
        assert "'extra'" in report.findings[0].message

    def test_open_reader_suppresses_written_never_read(self, tmp_path):
        # a reader that consumes the whole mapping explains every key
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int) -> None:
        self.size = size

    def to_state(self) -> dict:
        return {"size": self.size, "anything": 1}

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        box = cls(0)
        for key, value in state.items():
            setattr(box, key, value)
        return box
"""
        report = lint_source(tmp_path, source, select=["R011"])
        assert rule_ids(report) == []

    def test_interprocedural_helper_read_is_seen(self, tmp_path):
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int, label: str) -> None:
        self.size = size
        self.label = label

    def to_state(self) -> dict:
        return {"size": self.size, "label": self.label}

    @staticmethod
    def _unwrap(state: Mapping) -> str:
        return state["label"]

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        return cls(state["size"], cls._unwrap(state))
"""
        report = lint_source(tmp_path, source, select=["R011"])
        assert rule_ids(report) == []

    def test_pragma_suppresses(self, tmp_path):
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int) -> None:
        self.size = size

    def to_state(self) -> dict:
        return {
            "size": self.size,
            "label": "x",  # reprolint: disable=R011 - forward-compat key for the next reader version
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        return cls(state["size"])
"""
        report = lint_source(tmp_path, source, select=["R011"])
        assert rule_ids(report) == []
        assert report.suppressed == 1

    def test_module_function_pair(self, tmp_path):
        source = """\
from typing import Mapping

def widget_state(widget) -> dict:
    return {"kind": "widget", "teeth": widget.teeth}

def widget_from_state(state: Mapping):
    return state["kind"], state["gears"]
"""
        report = lint_source(tmp_path, source, select=["R011"])
        messages = [finding.message for finding in report.findings]
        assert any("'gears'" in message for message in messages)
        assert any("'teeth'" in message for message in messages)


# ----------------------------------------------------------------------
# R012 — default drift
# ----------------------------------------------------------------------
class TestDefaultDrift:
    def test_defaulted_read_of_always_written_key_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            PAIRED.format(
                writes='"size": self.size',
                reads='state.get("size", 0)',
            ),
            select=["R012"],
        )
        assert rule_ids(report) == ["R012"]
        assert "'size'" in report.findings[0].message

    def test_defaulted_read_of_conditional_key_clean(self, tmp_path):
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int) -> None:
        self.size = size
        self.extra = None

    def to_state(self) -> dict:
        state = {"size": self.size}
        if self.extra is not None:
            state["extra"] = self.extra
        return state

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        box = cls(state["size"])
        box.extra = state.get("extra", None)
        return box
"""
        report = lint_source(tmp_path, source, select=["R012"])
        assert rule_ids(report) == []

    def test_single_arg_get_is_validation_not_drift(self, tmp_path):
        # `.get(k)` without a default is the versioning/validation idiom
        report = lint_source(
            tmp_path,
            PAIRED.format(
                writes='"size": self.size',
                reads='state.get("size")',
            ),
            select=["R012"],
        )
        assert rule_ids(report) == []

    def test_pragma_names_the_compat_version(self, tmp_path):
        source = """\
from typing import Mapping

class Box:
    def __init__(self, size: int) -> None:
        self.size = size

    def to_state(self) -> dict:
        return {"size": self.size}

    @classmethod
    def from_state(cls, state: Mapping) -> "Box":
        size = state.get("size", 0)  # reprolint: disable=R012 - snapshots before format 1 lacked the key
        return cls(size)
"""
        report = lint_source(tmp_path, source, select=["R012"])
        assert rule_ids(report) == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R013 — plain-data discipline
# ----------------------------------------------------------------------
class TestPlainData:
    def test_arbitrary_object_value_flagged(self, tmp_path):
        source = """\
import threading

class Box:
    def to_state(self) -> dict:
        return {"lock": threading.Lock()}
"""
        report = lint_source(tmp_path, source, select=["R013"])
        assert rule_ids(report) == ["R013"]
        assert "'lock'" in report.findings[0].message

    def test_annotated_project_class_attribute_flagged(self, tmp_path):
        source = """\
class Gear:
    pass

class Box:
    def __init__(self, gear: Gear) -> None:
        self.gear = gear

    def to_state(self) -> dict:
        return {"gear": self.gear}
"""
        report = lint_source(tmp_path, source, select=["R013"])
        assert rule_ids(report) == ["R013"]

    def test_plain_and_nested_values_clean(self, tmp_path):
        source = """\
class Gear:
    def to_state(self) -> dict:
        return {"teeth": 3}

class Box:
    def __init__(self, size: int, gear: Gear) -> None:
        self.size = size
        self._gear = gear

    def to_state(self) -> dict:
        return {
            "size": int(self.size),
            "sizes": [float(x) for x in (1, 2)],
            "gear": self._gear.to_state(),
            "label": f"box-{self.size}",
        }
"""
        report = lint_source(tmp_path, source, select=["R013"])
        assert rule_ids(report) == []

    def test_unprovable_value_gets_benefit_of_doubt(self, tmp_path):
        source = """\
class Box:
    def to_state(self) -> dict:
        return {"payload": self.payload}
"""
        report = lint_source(tmp_path, source, select=["R013"])
        assert rule_ids(report) == []

    def test_pragma_suppresses(self, tmp_path):
        source = """\
import threading

class Box:
    def to_state(self) -> dict:
        return {"lock": threading.Lock()}  # reprolint: disable=R013 - never crosses a process boundary
"""
        report = lint_source(tmp_path, source, select=["R013"])
        assert rule_ids(report) == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# hypothesis: any writer/reader key-set mismatch is detected
# ----------------------------------------------------------------------
KEYS = st.sets(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    min_size=1,
    max_size=5,
)


@settings(max_examples=40, deadline=None)
@given(written=KEYS, read=KEYS)
def test_any_key_set_mismatch_is_detected(tmp_path_factory, written, read):
    """R011 fires iff the generated writer/reader key-sets differ."""
    tmp_path = tmp_path_factory.mktemp("schema-prop")
    writes = ", ".join(f'"{key}": 1' for key in sorted(written))
    reads = ", ".join(f'state["{key}"]' for key in sorted(read))
    source = (
        "from typing import Mapping\n\n"
        "class Box:\n"
        "    def to_state(self) -> dict:\n"
        f"        return {{{writes}}}\n\n"
        "    @classmethod\n"
        '    def from_state(cls, state: Mapping) -> "Box":\n'
        f"        values = [{reads}]\n"
        "        return cls()\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    report = lint_paths([str(path)], select=["R011"])
    flagged_written = {
        message.split("'")[1]
        for message in (finding.message for finding in report.findings)
        if "never read" in message
    }
    flagged_read = {
        message.split("'")[1]
        for message in (finding.message for finding in report.findings)
        if "never written" in message
    }
    assert flagged_written == written - read
    assert flagged_read == read - written


# ----------------------------------------------------------------------
# pins of the real repo's extracted schema
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def repo_model():
    project, errors = load_project([SRC])
    assert not errors
    return build_schema_model(project)


class TestRepoSchemaPins:
    def test_mutable_lsh_index_schema(self, repo_model):
        writer = repo_model.writers["MutableLSHIndex.to_state"]
        assert not writer.open
        assert set(writer.writes) == {
            "format", "dimension", "num_hashes", "num_tables",
            "next_id", "live_ids", "rows", "families", "tables",
            "estimators",
        }
        assert writer.writes["format"].always
        assert not writer.writes["estimators"].always  # conditional key
        # composition: the row store contributes through a nested state()
        assert writer.writes["rows"].kind == "nested"
        assert writer.writes["rows"].ref == "RowStore.state"

    def test_sharded_mutable_index_schema(self, repo_model):
        writer = repo_model.writers["ShardedMutableIndex.to_state"]
        assert not writer.open
        assert set(writer.writes) >= {
            "format", "kind", "dimension", "num_hashes", "num_tables",
            "num_shards", "shards", "partitioner", "live_ids",
        }
        assert writer.writes["kind"].always

    def test_inheritance_pairing(self, repo_model):
        # ClusterCoordinator inherits to_state from ShardedMutableIndex;
        # its from_state must pair against the inherited writer
        pair_names = {
            (pair.writer.name, pair.reader.name) for pair in repo_model.pairs
        }
        assert (
            "ShardedMutableIndex.to_state",
            "ClusterCoordinator.from_state",
        ) in pair_names

    def test_reservoir_round_trip_is_closed(self, repo_model):
        writer = repo_model.writers["_PairReservoir.state"]
        reader = repo_model.readers["_PairReservoir.from_state"]
        assert not writer.open and not reader.open
        assert set(writer.writes) == reader.read_keys()

    def test_inventory_is_versioned_and_lists_pairs(self, repo_model):
        inventory = repo_model.to_inventory()
        assert inventory["version"] == 1
        assert "MutableLSHIndex.to_state" in inventory["entries"]
        assert ["RowStore.state", "RowStore.from_state"] in inventory["pairs"]


# ----------------------------------------------------------------------
# runtime witness
# ----------------------------------------------------------------------
class TestWitness:
    def test_recording_mapping_records_reads(self):
        witness = SchemaWitness()
        proxy = RecordingMapping({"a": 1, "b": 2}, witness, "Box.from_state")
        assert proxy["a"] == 1
        assert proxy.get("b") == 2
        assert proxy.get("c", 3) == 3
        assert "missing" not in proxy
        assert len(proxy) == 2
        assert dict(proxy) == {"a": 1, "b": 2}  # iteration records nothing
        assert witness.observed() == {
            "Box.from_state": {"a", "b", "c", "missing"}
        }

    def test_install_records_real_round_trip(self, tiny_collection):
        from repro.streaming import MutableLSHIndex

        witness = install_witness()
        try:
            assert active_witness() is witness
            index = MutableLSHIndex(4, num_hashes=4, num_tables=2, random_state=7)
            for row in range(tiny_collection.size):
                index.insert(tiny_collection.matrix.getrow(row))
            state = index.to_state()
            MutableLSHIndex.from_state(state)
            observed = witness.observed()
            assert "format" in observed["MutableLSHIndex.to_state"]
            assert "rows" in observed["MutableLSHIndex.from_state"]
            assert "dimension" in observed["RowStore.state"]
        finally:
            uninstall_witness()
        assert active_witness() is None

    def test_observed_subset_of_static_model(self, tiny_collection):
        from repro.streaming import MutableLSHIndex

        witness = install_witness()
        try:
            index = MutableLSHIndex(4, num_hashes=4, num_tables=2, random_state=7)
            for row in range(tiny_collection.size):
                index.insert(tiny_collection.matrix.getrow(row))
            MutableLSHIndex.from_state(index.to_state())
            observed = {
                entry: sorted(keys)
                for entry, keys in witness.observed().items()
            }
        finally:
            uninstall_witness()
        assert unexplained_observations(observed, [SRC]) == []

    def test_unknown_entry_and_key_are_unexplained(self):
        observed = {
            "NoSuchClass.to_state": ["a"],
            "MutableLSHIndex.to_state": ["format", "not_a_real_key"],
        }
        unexplained = unexplained_observations(observed, [SRC])
        assert ("NoSuchClass.to_state", ["a"]) in unexplained
        assert ("MutableLSHIndex.to_state", ["not_a_real_key"]) in unexplained


# ----------------------------------------------------------------------
# schema-report CLI
# ----------------------------------------------------------------------
class TestSchemaReportCli:
    def run(self, *argv):
        parser = build_schema_report_parser()
        return run_schema_report_from_args(parser.parse_args(list(argv)))

    def test_clean_observed_exits_zero_and_writes_inventory(self, tmp_path, capsys):
        observed_path = tmp_path / "observed.json"
        observed_path.write_text(json.dumps({
            "version": 1,
            "observed": {"RowStore.state": ["dimension", "ids", "matrix"]},
        }))
        inventory_path = tmp_path / "inventory.json"
        code = self.run(
            "--observed", str(observed_path),
            "--src", SRC,
            "--output", str(inventory_path),
        )
        assert code == 0
        inventory = json.loads(inventory_path.read_text())
        assert inventory["version"] == 1
        assert inventory["entries"]["RowStore.state"]["role"] == "writer"
        assert "subset" in capsys.readouterr().out

    def test_unexplained_key_exits_one(self, tmp_path, capsys):
        observed_path = tmp_path / "observed.json"
        observed_path.write_text(json.dumps({
            "version": 1,
            "observed": {"RowStore.state": ["bogus_key"]},
        }))
        code = self.run("--observed", str(observed_path), "--src", SRC)
        assert code == 1
        assert "bogus_key" in capsys.readouterr().out

    def test_unreadable_observed_exits_two(self, tmp_path):
        code = self.run("--observed", str(tmp_path / "missing.json"), "--src", SRC)
        assert code == 2

    def test_json_format(self, tmp_path, capsys):
        code = self.run("--src", SRC, "--format", "json")
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        assert verdict["entries"] > 0


# ----------------------------------------------------------------------
# the same gate CI runs
# ----------------------------------------------------------------------
def test_shipped_source_tree_lints_clean():
    report = lint_paths([SRC])
    assert report.exit_code == 0, report.render_text()
