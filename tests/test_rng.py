"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(42).integers(0, 1_000_000, size=10)
        second = ensure_rng(42).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = ensure_rng(1).integers(0, 1_000_000, size=10)
        second = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            ensure_rng("not-a-seed")


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_spawn_children_are_independent_objects(self):
        children = spawn(ensure_rng(0), 3)
        assert len({id(child) for child in children}) == 3

    def test_spawn_is_reproducible(self):
        first = [child.integers(0, 1000) for child in spawn(ensure_rng(9), 4)]
        second = [child.integers(0, 1000) for child in spawn(ensure_rng(9), 4)]
        assert first == second

    def test_spawn_children_produce_different_streams(self):
        children = spawn(ensure_rng(3), 2)
        a = children[0].integers(0, 2**32, size=8)
        b = children[1].integers(0, 2**32, size=8)
        assert not np.array_equal(a, b)

    def test_spawn_zero(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestDeriveSeed:
    def test_derive_seed_returns_int(self):
        assert isinstance(derive_seed(ensure_rng(0)), int)

    def test_derive_seed_deterministic(self):
        assert derive_seed(ensure_rng(5)) == derive_seed(ensure_rng(5))


class TestGeneratorState:
    def test_round_trip_resumes_mid_stream(self):
        from repro.rng import generator_from_state, generator_state

        rng = ensure_rng(11)
        rng.integers(0, 100, size=7)  # advance past the seed position
        revived = generator_from_state(generator_state(rng))
        np.testing.assert_array_equal(
            revived.integers(0, 2**32, size=16), rng.integers(0, 2**32, size=16)
        )

    def test_state_is_a_copy(self):
        from repro.rng import generator_state

        rng = ensure_rng(0)
        state = generator_state(rng)
        rng.integers(0, 100, size=3)
        assert state == generator_state(ensure_rng(0))  # unchanged by draws

    def test_unknown_bit_generator_rejected(self):
        from repro.rng import generator_from_state

        with pytest.raises(ValueError):
            generator_from_state({"bit_generator": "NotAGenerator"})
