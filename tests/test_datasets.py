"""Tests for the synthetic data substrate (generator + profiles)."""

import numpy as np
import pytest

from repro.datasets import (
    PlantedClusterSpec,
    SyntheticCorpusConfig,
    generate_corpus,
    make_dblp_like,
    make_nyt_like,
    make_pubmed_like,
    profile_summary,
)
from repro.datasets.synthetic import documents_to_collection
from repro.errors import ValidationError
from repro.join import exact_join_size, exact_join_sizes


class TestConfigValidation:
    def test_valid_config_passes(self):
        SyntheticCorpusConfig(num_vectors=10, vocabulary_size=100).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vectors": 1, "vocabulary_size": 100},
            {"num_vectors": 10, "vocabulary_size": 1},
            {"num_vectors": 10, "vocabulary_size": 100, "zipf_exponent": 0.0},
            {"num_vectors": 10, "vocabulary_size": 100, "mean_length": 0.0},
            {"num_vectors": 10, "vocabulary_size": 100, "min_length": 0},
            {"num_vectors": 10, "vocabulary_size": 100, "weighting": "bm25"},
            {"num_vectors": 10, "vocabulary_size": 100, "near_duplicate_fraction": 1.0},
            {"num_vectors": 10, "vocabulary_size": 100, "duplicate_cluster_size": (3, 2)},
            {"num_vectors": 10, "vocabulary_size": 100, "perturbation_levels": ()},
            {"num_vectors": 10, "vocabulary_size": 100, "perturbation_levels": (1.0,)},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValidationError):
            SyntheticCorpusConfig(**kwargs).validate()

    def test_planted_cluster_fractions_must_leave_base(self):
        config = SyntheticCorpusConfig(
            num_vectors=10,
            vocabulary_size=100,
            planted_clusters=(
                PlantedClusterSpec(0.6, (1, 2), (0.1,)),
                PlantedClusterSpec(0.5, (1, 2), (0.1,)),
            ),
        )
        with pytest.raises(ValidationError):
            config.validate()

    def test_cluster_spec_validation(self):
        with pytest.raises(ValidationError):
            PlantedClusterSpec(0.1, (0, 2), (0.1,)).validate()
        with pytest.raises(ValidationError):
            PlantedClusterSpec(0.1, (1, 2), ()).validate()

    def test_legacy_fields_become_single_spec(self):
        config = SyntheticCorpusConfig(
            num_vectors=10,
            vocabulary_size=100,
            near_duplicate_fraction=0.2,
            duplicate_cluster_size=(1, 2),
            perturbation_levels=(0.1,),
        )
        specs = config.cluster_specs()
        assert len(specs) == 1
        assert specs[0].fraction == 0.2


class TestGenerateCorpus:
    def test_corpus_size_matches_config(self):
        config = SyntheticCorpusConfig(num_vectors=120, vocabulary_size=400)
        corpus = generate_corpus(config, random_state=0)
        assert corpus.size == 120
        assert corpus.collection.size == 120

    def test_deterministic_given_seed(self):
        config = SyntheticCorpusConfig(num_vectors=50, vocabulary_size=200)
        a = generate_corpus(config, random_state=7)
        b = generate_corpus(config, random_state=7)
        assert a.documents == b.documents

    def test_different_seeds_differ(self):
        config = SyntheticCorpusConfig(num_vectors=50, vocabulary_size=200)
        a = generate_corpus(config, random_state=1)
        b = generate_corpus(config, random_state=2)
        assert a.documents != b.documents

    def test_minimum_length_respected(self):
        config = SyntheticCorpusConfig(
            num_vectors=80, vocabulary_size=300, mean_length=4, min_length=3
        )
        corpus = generate_corpus(config, random_state=3)
        assert min(len(document) for document in corpus.documents) >= 2
        # binary collection length may shrink by deduplication but stays positive
        assert corpus.collection.nnz_per_row.min() >= 1

    def test_token_ids_within_vocabulary(self):
        config = SyntheticCorpusConfig(num_vectors=40, vocabulary_size=64)
        corpus = generate_corpus(config, random_state=5)
        highest = max(max(document) for document in corpus.documents)
        assert highest < 64
        assert corpus.collection.dimension == 64

    def test_planted_duplicates_create_high_similarity_pairs(self):
        config = SyntheticCorpusConfig(
            num_vectors=200,
            vocabulary_size=2000,
            planted_clusters=(PlantedClusterSpec(0.2, (2, 3), (0.0,)),),
        )
        corpus = generate_corpus(config, random_state=1)
        assert exact_join_size(corpus.collection, 0.999) > 0

    def test_no_planting_means_empty_high_tail(self):
        config = SyntheticCorpusConfig(
            num_vectors=150,
            vocabulary_size=3000,
            zipf_exponent=0.8,
            planted_clusters=(PlantedClusterSpec(0.0, (1, 1), (0.0,)),),
        )
        corpus = generate_corpus(config, random_state=2)
        assert exact_join_size(corpus.collection, 0.95) == 0

    def test_weighting_modes(self):
        documents = [[0, 0, 1], [1, 2], [2, 2, 2]]
        binary = documents_to_collection(documents, 3, "binary")
        counts = documents_to_collection(documents, 3, "counts")
        tfidf = documents_to_collection(documents, 3, "tfidf")
        assert set(binary.matrix.data.tolist()) == {1.0}
        assert counts.row_dict(0)[0] == 2.0
        # token 2 appears in 2 of 3 documents -> lower idf than token 0
        assert tfidf.row_dict(0)[0] > tfidf.row_dict(1)[2]

    def test_invalid_weighting(self):
        with pytest.raises(ValidationError):
            documents_to_collection([[0]], 1, "unknown")


class TestProfiles:
    @pytest.mark.parametrize(
        "factory,weighting",
        [(make_dblp_like, "binary"), (make_nyt_like, "tfidf"), (make_pubmed_like, "tfidf")],
    )
    def test_profiles_generate_requested_size(self, factory, weighting):
        corpus = factory(num_vectors=200, random_state=1)
        assert corpus.collection.size == 200
        assert corpus.config.weighting == weighting

    def test_dblp_like_is_binary_and_short(self):
        corpus = make_dblp_like(num_vectors=300, random_state=0)
        assert set(np.unique(corpus.collection.matrix.data)) == {1.0}
        assert 5 < corpus.collection.nnz_per_row.mean() < 25

    def test_nyt_like_has_longer_vectors(self):
        nyt = make_nyt_like(num_vectors=200, random_state=0)
        dblp = make_dblp_like(num_vectors=200, random_state=0)
        assert nyt.collection.nnz_per_row.mean() > dblp.collection.nnz_per_row.mean()

    def test_join_size_is_skewed_in_threshold(self, small_collection):
        sizes = exact_join_sizes(small_collection, [0.1, 0.5, 0.9])
        assert sizes[0] > 5 * sizes[1] > 0
        assert sizes[1] >= sizes[2] > 0

    def test_profile_summary_keys(self, small_corpus):
        summary = profile_summary(small_corpus)
        assert summary["num_vectors"] == small_corpus.collection.size
        assert summary["avg_features"] > 0
        assert summary["total_pairs"] == small_corpus.collection.total_pairs

    def test_overrides_forwarded(self):
        corpus = make_dblp_like(num_vectors=100, random_state=0, mean_length=25.0)
        assert corpus.config.mean_length == 25.0
