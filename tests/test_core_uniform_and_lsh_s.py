"""Tests for the J_U (uniformity) and LSH-S estimators."""

import numpy as np
import pytest

from repro.core import LSHSEstimator, UniformityEstimator
from repro.core.analysis import transform_threshold, uniformity_estimate
from repro.errors import ValidationError
from repro.lsh import LSHTable, MinHashFamily, SignRandomProjectionFamily
from repro.vectors import VectorCollection


class TestUniformityEstimator:
    def test_matches_closed_form(self, small_table):
        estimator = UniformityEstimator(small_table, collision_model="angular")
        threshold = 0.6
        expected = uniformity_estimate(
            small_table.num_collision_pairs,
            small_table.total_pairs,
            transform_threshold(threshold, "angular"),
            small_table.num_hashes,
        )
        assert estimator.estimate(threshold).value == pytest.approx(expected)

    def test_no_randomness_needed(self, small_table):
        estimator = UniformityEstimator(small_table)
        assert estimator.estimate(0.5).value == estimator.estimate(0.5, random_state=99).value

    def test_bounded_by_total_pairs(self, small_table):
        estimator = UniformityEstimator(small_table)
        for threshold in (0.1, 0.5, 0.9):
            value = estimator.estimate(threshold).value
            assert 0.0 <= value <= small_table.total_pairs

    def test_monotone_decreasing_in_threshold(self, small_table):
        estimator = UniformityEstimator(small_table)
        values = [estimator.estimate(t).value for t in (0.3, 0.5, 0.7, 0.9)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_ideal_model_on_minhash_table(self, binary_collection):
        table = LSHTable(MinHashFamily(8, random_state=0), binary_collection)
        estimator = UniformityEstimator(table, collision_model="ideal")
        assert estimator.estimate(0.8).value >= 0.0

    def test_details(self, small_table):
        details = UniformityEstimator(small_table).estimate(0.5).details
        assert details["num_collision_pairs"] == small_table.num_collision_pairs
        assert 0.0 < details["transformed_threshold"] <= 1.0

    def test_exact_recovery_under_model_assumptions(self):
        """When bucket counts are consistent with the uniformity model the
        estimator recovers the join size exactly (synthetic sanity check)."""
        total_pairs = 10_000
        k = 6
        threshold = 0.7
        true_join = 500
        # N_H generated from the model with the ideal collision probability
        from repro.core.analysis import conditional_collision_probabilities

        conditional = conditional_collision_probabilities(threshold, k)
        collisions = (
            true_join * conditional["P(H|T)"]
            + (total_pairs - true_join) * conditional["P(H|F)"]
        )
        assert uniformity_estimate(collisions, total_pairs, threshold, k) == pytest.approx(
            true_join, rel=1e-9
        )


class TestLSHSEstimator:
    def test_estimate_in_range(self, small_table):
        estimator = LSHSEstimator(small_table, sample_size=800)
        for threshold in (0.2, 0.5, 0.8):
            value = estimator.estimate(threshold, random_state=0).value
            assert 0.0 <= value <= small_table.total_pairs

    def test_details_structure(self, small_table):
        estimate = LSHSEstimator(small_table, sample_size=500).estimate(0.4, random_state=1)
        details = estimate.details
        assert details["sample_size"] == 500
        assert 0.0 <= details["probability_h_given_f"] <= 1.0
        assert 0.0 <= details["probability_h_given_t"] <= 1.0
        assert isinstance(details["used_fallback_h_given_t"], bool)

    def test_fallback_used_when_no_true_pairs_in_sample(self):
        """At a threshold with an empty join the sample has no true pairs and
        the analytic fallback for P(H|T) is used — the failure mode the paper
        reports for LSH-S at high thresholds."""
        collection = VectorCollection.from_dense(np.eye(40))
        table = LSHTable(SignRandomProjectionFamily(10, random_state=1), collection)
        estimate = LSHSEstimator(table, sample_size=100).estimate(0.95, random_state=0)
        assert estimate.details["used_fallback_h_given_t"]

    def test_default_sample_size_is_n(self, small_table, small_collection):
        assert LSHSEstimator(small_table).sample_size == small_collection.size

    def test_invalid_sample_size(self, small_table):
        with pytest.raises(ValidationError):
            LSHSEstimator(small_table, sample_size=0)

    def test_deterministic_given_seed(self, small_table):
        estimator = LSHSEstimator(small_table)
        assert (
            estimator.estimate(0.5, random_state=7).value
            == estimator.estimate(0.5, random_state=7).value
        )

    def test_better_than_uniformity_at_low_threshold(self, small_table, small_histogram):
        """LSH-S weights the conditionals with actual sampled similarities, so
        on skewed data it should beat the raw uniformity assumption at a low
        threshold (where plenty of true pairs are sampled)."""
        threshold = 0.1
        true_size = small_histogram.join_size(threshold)
        uniformity = UniformityEstimator(small_table).estimate(threshold).value
        lsh_s_values = [
            LSHSEstimator(small_table, sample_size=2000).estimate(threshold, random_state=s).value
            for s in range(10)
        ]
        lsh_s_error = abs(np.mean(lsh_s_values) - true_size) / true_size
        uniformity_error = abs(uniformity - true_size) / true_size
        assert lsh_s_error < uniformity_error

    def test_name(self, small_table):
        assert LSHSEstimator(small_table).name == "LSH-S"
